//! Property-based tests for the hypergraph crate's core invariants.
//!
//! Strategy: random hypergraphs (bounded size), then check that the
//! optimized algorithms agree with the naive reference implementations
//! and that definitional invariants hold.

use proptest::prelude::*;

use hypergraph::naive::{exhaustive_min_cover, naive_kcore};
use hypergraph::reduce::{non_maximal_edges, non_maximal_edges_naive};
use hypergraph::validate::check_structure;
use hypergraph::{
    greedy_multicover, greedy_vertex_cover, hypergraph_kcore, is_multicover, is_vertex_cover,
    pricing_vertex_cover, BipartiteView, Hypergraph, HypergraphBuilder, VertexId,
};

/// Random hypergraph: up to `max_v` vertices, up to `max_e` edges of
/// size 0..=max_size (so empty and duplicate edges do occur).
fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

/// Pin-sets of selected edges, restricted to `alive` vertices, as a
/// sorted multiset of sorted vertex lists. Restriction matters: a
/// surviving edge's effective content excludes peeled vertices.
fn edge_contents(
    h: &Hypergraph,
    edges: &[hypergraph::EdgeId],
    alive: &[VertexId],
) -> Vec<Vec<u32>> {
    let alive: std::collections::HashSet<u32> = alive.iter().map(|v| v.0).collect();
    let mut out: Vec<Vec<u32>> = edges
        .iter()
        .map(|&f| {
            h.pins(f)
                .iter()
                .map(|v| v.0)
                .filter(|v| alive.contains(v))
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// Pin-sets of a standalone sub-hypergraph, translated to original ids.
fn sub_contents(core: &hypergraph::KCore) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = core
        .sub
        .edges()
        .map(|f| {
            core.sub
                .pins(f)
                .iter()
                .map(|v| core.vertices[v.index()].0)
                .collect()
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder always produces a structurally valid dual CSR.
    #[test]
    fn builder_structure_valid(h in arb_hypergraph(12, 10, 6)) {
        check_structure(&h).unwrap();
    }

    /// Overlap-based non-maximality detection agrees with subset testing.
    #[test]
    fn maximality_methods_agree(h in arb_hypergraph(10, 12, 5)) {
        prop_assert_eq!(non_maximal_edges(&h), non_maximal_edges_naive(&h));
    }

    /// The incremental k-core matches the naive fixpoint: identical
    /// surviving vertices and identical surviving edge *contents* (ids may
    /// differ only between identical duplicate edges).
    #[test]
    fn kcore_matches_naive((h, k) in arb_hypergraph(10, 10, 5).prop_flat_map(|h| (Just(h), 0u32..5))) {
        let (nv, ne) = naive_kcore(&h, k);
        let fast = hypergraph_kcore(&h, k);
        prop_assert_eq!(&nv, &fast.vertices, "vertex sets differ at k={}", k);
        prop_assert_eq!(
            edge_contents(&h, &ne, &nv),
            edge_contents(&h, &fast.edges, &fast.vertices),
            "edge contents differ at k={}", k
        );
    }

    /// Every k-core output satisfies its definition: structure valid,
    /// reduced, all degrees >= k, and the standalone sub-hypergraph's
    /// contents match the surviving original edges.
    #[test]
    fn kcore_definition_holds((h, k) in arb_hypergraph(12, 12, 6).prop_flat_map(|h| (Just(h), 1u32..5))) {
        let core = hypergraph_kcore(&h, k);
        check_structure(&core.sub).unwrap();
        prop_assert!(non_maximal_edges(&core.sub).is_empty());
        for v in core.sub.vertices() {
            prop_assert!(core.sub.vertex_degree(v) >= k as usize);
        }
        prop_assert_eq!(edge_contents(&h, &core.edges, &core.vertices).len(), core.sub.num_edges());
        prop_assert_eq!(sub_contents(&core), edge_contents(&h, &core.edges, &core.vertices));
    }

    /// k-cores are nested in content: vertices of the (k+1)-core are a
    /// subset of the k-core's vertices.
    #[test]
    fn kcore_vertices_nested(h in arb_hypergraph(12, 12, 5)) {
        let mut prev: Option<Vec<VertexId>> = None;
        for k in 1..5u32 {
            let core = hypergraph_kcore(&h, k);
            if let Some(prev) = &prev {
                for v in &core.vertices {
                    prop_assert!(prev.contains(v), "vertex {:?} in {}-core but not {}-core", v, k, k-1);
                }
            }
            prev = Some(core.vertices);
        }
    }

    /// The one-pass incremental decomposition agrees with the per-k
    /// hash-map oracles on every output: level profile, core numbers,
    /// max core ids, and single-k surviving id sets (including inputs
    /// with empty, nested, and duplicate hyperedges).
    #[test]
    fn decompose_matches_per_k_oracle(h in arb_hypergraph(12, 12, 6)) {
        let d = hypergraph::decompose(&h);
        prop_assert_eq!(&d.profile, &hypergraph::core_profile_per_k(&h));
        prop_assert_eq!(&d.core_numbers, &hypergraph::core_numbers_per_k(&h));
        let k_max = d.profile.last().map(|p| p.0).unwrap_or(0);
        match (&d.max_core, hypergraph::max_core_bsearch(&h)) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.k, b.k);
                prop_assert_eq!(&a.vertices, &b.vertices);
                prop_assert_eq!(&a.edges, &b.edges);
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "max_core liveness disagreement: {:?} vs {:?}",
                a.as_ref().map(|c| c.k), b.map(|c| c.k)),
        }
        for k in 0..=k_max + 1 {
            let fast = hypergraph::csr_kcore(&h, k);
            let oracle = hypergraph_kcore(&h, k);
            prop_assert_eq!(&fast.vertices, &oracle.vertices, "k = {}", k);
            prop_assert_eq!(&fast.edges, &oracle.edges, "k = {}", k);
        }
    }

    /// Greedy cover is valid and within the harmonic bound of the
    /// exhaustive optimum on small instances without empty edges.
    #[test]
    fn greedy_cover_valid_and_bounded(h in arb_hypergraph(10, 8, 4)) {
        prop_assume!(h.edges().all(|f| h.edge_degree(f) > 0));
        let weight = |v: VertexId| 1.0 + (v.0 % 4) as f64;
        let c = greedy_vertex_cover(&h, weight).unwrap();
        prop_assert!(is_vertex_cover(&h, &c.vertices));
        let opt = exhaustive_min_cover(&h, weight).unwrap();
        let opt_w: f64 = opt.iter().map(|&v| weight(v)).sum();
        let hm = hypergraph::cover::harmonic(h.num_edges());
        prop_assert!(c.total_weight <= opt_w * hm.max(1.0) + 1e-9,
            "greedy {} > H_m * opt {}", c.total_weight, opt_w * hm);
    }

    /// Pricing cover is valid; its dual bound never exceeds the true
    /// optimum; its weight is within Δ_F of the dual bound.
    #[test]
    fn pricing_cover_sound(h in arb_hypergraph(10, 8, 4)) {
        prop_assume!(h.edges().all(|f| h.edge_degree(f) > 0));
        let weight = |v: VertexId| 1.0 + (v.0 % 3) as f64;
        let p = pricing_vertex_cover(&h, weight).unwrap();
        prop_assert!(is_vertex_cover(&h, &p.cover.vertices));
        let opt = exhaustive_min_cover(&h, weight).unwrap();
        let opt_w: f64 = opt.iter().map(|&v| weight(v)).sum();
        prop_assert!(p.dual_lower_bound <= opt_w + 1e-9);
        let df = h.max_edge_degree() as f64;
        prop_assert!(p.cover.total_weight <= df * p.dual_lower_bound + 1e-9);
    }

    /// Multicover with requirement min(2, d(f)) is feasible and validates.
    #[test]
    fn multicover_valid(h in arb_hypergraph(10, 8, 5)) {
        let req = |f: hypergraph::EdgeId| (h.edge_degree(f) as u32).min(2);
        let mc = greedy_multicover(&h, |_| 1.0, req).unwrap();
        prop_assert!(is_multicover(&h, &mc.vertices, req));
        // No vertex chosen twice.
        let mut seen = std::collections::HashSet::new();
        for v in &mc.vertices {
            prop_assert!(seen.insert(*v));
        }
    }

    /// Multicover with all requirements 1 equals a plain cover in
    /// validity (not necessarily the same vertices).
    #[test]
    fn multicover_r1_is_cover(h in arb_hypergraph(10, 8, 4)) {
        prop_assume!(h.edges().all(|f| h.edge_degree(f) > 0));
        let mc = greedy_multicover(&h, |_| 1.0, |_| 1).unwrap();
        prop_assert!(is_vertex_cover(&h, &mc.vertices));
    }

    /// Hypergraph BFS distances equal half the bipartite BFS distances.
    #[test]
    fn distances_match_bipartite(h in arb_hypergraph(12, 10, 5)) {
        let bv = BipartiteView::new(&h);
        for s in h.vertices() {
            let hd = hypergraph::hyper_distances(&h, s);
            let bd = graphcore::bfs_distances(&bv.graph, bv.vertex_node(s));
            for v in h.vertices() {
                if hd[v.index()] == hypergraph::path::UNREACHABLE {
                    prop_assert_eq!(bd[v.index()], graphcore::UNREACHABLE);
                } else {
                    prop_assert_eq!(2 * hd[v.index()], bd[v.index()]);
                }
            }
        }
    }

    /// `.hgr` round-trips exactly.
    #[test]
    fn hgr_roundtrip(h in arb_hypergraph(12, 10, 6)) {
        let text = hypergraph::io::write_hgr(&h);
        let h2 = hypergraph::io::read_hgr(&text).unwrap();
        prop_assert_eq!(h.num_vertices(), h2.num_vertices());
        prop_assert_eq!(h.num_edges(), h2.num_edges());
        for f in h.edges() {
            prop_assert_eq!(h.pins(f), h2.pins(f));
        }
    }

    /// Reduce is idempotent and output contains no non-maximal edge.
    #[test]
    fn reduce_idempotent(h in arb_hypergraph(10, 12, 5)) {
        let (r1, _) = hypergraph::reduce(&h);
        prop_assert!(non_maximal_edges(&r1).is_empty());
        let (r2, _) = hypergraph::reduce(&r1);
        prop_assert_eq!(r1.num_edges(), r2.num_edges());
        prop_assert_eq!(r1.num_pins(), r2.num_pins());
    }

    /// Components partition vertices and edges; summaries add up.
    #[test]
    fn components_partition(h in arb_hypergraph(12, 10, 5)) {
        let cc = hypergraph::hypergraph_components(&h);
        let vsum: usize = cc.summary.iter().map(|s| s.num_vertices).sum();
        let esum: usize = cc.summary.iter().map(|s| s.num_edges).sum();
        prop_assert_eq!(vsum, h.num_vertices());
        prop_assert_eq!(esum, h.num_edges());
        // Every edge's label matches its members' labels.
        for f in h.edges() {
            for &v in h.pins(f) {
                prop_assert_eq!(cc.edge_label[f.index()], cc.vertex_label[v.index()]);
            }
        }
    }

    /// 2-uniform hypergraph k-core (k >= 2) has the same vertex set as the
    /// plain-graph k-core of the corresponding simple graph.
    #[test]
    fn two_uniform_matches_graph_kcore(
        (n, edges, k) in (2usize..14).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..30),
            2u32..5,
        ))
    ) {
        // Build a *simple* pair set (drop loops, dedup) so the hypergraph
        // has no duplicate edges and matches the simple graph exactly.
        let mut pairs: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();

        let mut hb = HypergraphBuilder::new(n);
        let mut gb = graphcore::GraphBuilder::new(n);
        for &(a, b) in &pairs {
            hb.add_edge([a, b]);
            gb.add_edge(graphcore::NodeId(a), graphcore::NodeId(b));
        }
        let h = hb.build();
        let g = gb.build();

        let hcore = hypergraph_kcore(&h, k);
        let gdecomp = graphcore::core_decomposition(&g);
        let gvertices: Vec<u32> = gdecomp
            .k_core_nodes(k)
            .into_iter()
            .map(|u| u.0)
            .collect();
        let hvertices: Vec<u32> = hcore.vertices.iter().map(|v| v.0).collect();
        prop_assert_eq!(hvertices, gvertices, "k = {}", k);
    }
}
