//! Property-based and corruption tests for the `.hgb` binary format:
//! any hypergraph must survive `Hypergraph` → `.hgb` → `Hypergraph`
//! bit-for-bit (with and without a baked-in relabeling, through both
//! the owned decoder and the mmap path), and damaged files must fail
//! with structured errors carrying byte offsets — never a panic or a
//! silently wrong graph.

use proptest::prelude::*;

use hypergraph::hgb::{open_hgb, write_hgb, write_hgb_file, HgbOpenMode, HgbOpenOptions};
use hypergraph::{Hypergraph, HypergraphBuilder, Relabeling, StorageKind};

/// Random hypergraph: up to `max_v` vertices, up to `max_e` edges of
/// size 0..=max_size (so empty and duplicate edges do occur).
fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

fn encode(h: &Hypergraph, r: Option<&Relabeling>) -> Vec<u8> {
    let mut buf = Vec::new();
    write_hgb(h, r, &mut buf).unwrap();
    buf
}

fn decode_owned(bytes: &[u8]) -> hypergraph::HgbDataset {
    // Owned decode goes through a temp file so the whole public API is
    // exercised; `verify: true` runs the full structural validation.
    let path = temp_path("owned");
    std::fs::write(&path, bytes).unwrap();
    let ds = open_hgb(
        &path,
        HgbOpenOptions {
            mode: HgbOpenMode::Owned,
            verify: true,
        },
    )
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    ds
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "hgb-prop-{}-{}-{}.hgb",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_identical(a: &Hypergraph, b: &Hypergraph) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.num_pins(), b.num_pins());
    for f in a.edges() {
        assert_eq!(a.pins(f), b.pins(f));
    }
    for v in a.vertices() {
        assert_eq!(a.edges_of(v), b.edges_of(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_owned(h in arb_hypergraph(40, 30, 8)) {
        let ds = decode_owned(&encode(&h, None));
        prop_assert!(ds.relabeling.is_none());
        assert_identical(&h, &ds.hypergraph);
        prop_assert_eq!(ds.max_vertex_degree, h.max_vertex_degree());
        prop_assert_eq!(ds.max_edge_degree, h.max_edge_degree());
    }

    #[test]
    fn roundtrip_with_relabeling(h in arb_hypergraph(30, 25, 6)) {
        let r = Relabeling::bfs_order(&h);
        let g = r.apply(&h);
        let ds = decode_owned(&encode(&g, Some(&r)));
        let r2 = ds.relabeling.expect("relabeling sections survive");
        prop_assert_eq!(&r, &r2);
        assert_identical(&g, &ds.hypergraph);
        // The recovered mapping still translates back to the original:
        // per-vertex degrees unmapped through it match `h`'s.
        let new_degs: Vec<usize> = ds.hypergraph.vertices()
            .map(|v| ds.hypergraph.vertex_degree(v)).collect();
        let unmapped = r2.unmap_vertex_values(&new_degs);
        let original: Vec<usize> = h.vertices().map(|v| h.vertex_degree(v)).collect();
        prop_assert_eq!(unmapped, original);
    }

    #[cfg(unix)]
    #[test]
    fn roundtrip_mmap(h in arb_hypergraph(30, 25, 6)) {
        let path = temp_path("mmap");
        write_hgb_file(&h, None, &path).unwrap();
        let ds = open_hgb(&path, HgbOpenOptions { mode: HgbOpenMode::Mmap, verify: true }).unwrap();
        prop_assert_eq!(ds.hypergraph.storage_kind(), StorageKind::Mapped);
        assert_identical(&h, &ds.hypergraph);
        std::fs::remove_file(&path).unwrap();
    }

    /// Single-byte corruption anywhere in the header region is caught
    /// (magic, version, counts, section table, or the checksum itself).
    #[test]
    fn header_corruption_never_panics(
        h in arb_hypergraph(20, 15, 5),
        byte in 0usize..64,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode(&h, None);
        let target = byte % bytes.len().min(64);
        bytes[target] ^= flip;
        let path = temp_path("corrupt");
        std::fs::write(&path, &bytes).unwrap();
        let result = open_hgb(&path, HgbOpenOptions { mode: HgbOpenMode::Owned, verify: true });
        std::fs::remove_file(&path).unwrap();
        // The flip XORs a nonzero value into checksummed header bytes,
        // so the open must fail (magic/version checks fire first for
        // the leading bytes; the FNV checksum catches the rest).
        prop_assert!(result.is_err(), "corrupting header byte {target} went unnoticed");
    }

    /// Truncation at any point is rejected with a byte offset.
    #[test]
    fn truncation_never_panics(h in arb_hypergraph(20, 15, 5), frac in 0.0f64..1.0) {
        let bytes = encode(&h, None);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let path = temp_path("trunc");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = open_hgb(&path, HgbOpenOptions { mode: HgbOpenMode::Owned, verify: true })
            .expect_err("truncated file must not open");
        std::fs::remove_file(&path).unwrap();
        prop_assert!(err.offset.is_some(), "truncation error lacks a byte offset: {err}");
    }
}

/// Corrupting a pin inside the data sections (past the checksummed
/// header) is caught by `verify: true` structural validation.
#[test]
fn data_corruption_caught_by_verify() {
    let mut b = HypergraphBuilder::new(6);
    b.add_edge([0, 1, 2]);
    b.add_edge([2, 3, 4, 5]);
    let h = b.build();
    let bytes = encode(&h, None);
    // Sections start at the first 64-byte boundary past the header;
    // PIN_LIST is the second section. Stomp its first entry with an
    // out-of-range vertex id.
    let mut corrupted = bytes.clone();
    let pin_list_off = {
        // section table entry 1 (PIN_LIST): id at FIXED+24, offset at +8.
        let fixed = 4 + 4 + 8 * 7;
        u64::from_le_bytes(bytes[fixed + 24 + 8..fixed + 24 + 16].try_into().unwrap()) as usize
    };
    corrupted[pin_list_off..pin_list_off + 4].copy_from_slice(&999u32.to_le_bytes());
    let path = std::env::temp_dir().join(format!("hgb-datacorrupt-{}.hgb", std::process::id()));
    std::fs::write(&path, &corrupted).unwrap();
    let err = open_hgb(
        &path,
        HgbOpenOptions {
            mode: HgbOpenMode::Owned,
            verify: true,
        },
    )
    .expect_err("out-of-range pin must fail verification");
    std::fs::remove_file(&path).unwrap();
    assert!(
        err.message.contains("structural validation failed"),
        "{err}"
    );
}
