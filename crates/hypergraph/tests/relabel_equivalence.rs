//! Relabeling + sparsity-sweep equivalence suite: vertex renumbering
//! (`Relabeling::bfs_order` / `degree_order`) and the sparse/dense
//! frontier-sweep switching inside MS-BFS are pure layout optimizations
//! — every observable result must be *bit-identical* to the scalar
//! oracle on the **unrelabeled** hypergraph, including when a deadline
//! expires mid-sweep.

use proptest::prelude::*;

use hgobs::Deadline;
use hypergraph::{
    msbfs_batch, msbfs_distance_stats, msbfs_distance_stats_with, scalar_hyper_distance_stats,
    Hypergraph, HypergraphBuilder, MsBfsScratch, Relabeling, VertexId, BATCH,
};

fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

/// A chain of pair-edges: `n` vertices, `n-1` hyperedges, diameter `n-1`.
fn chain(n: u32) -> Hypergraph {
    let mut b = HypergraphBuilder::new(n as usize);
    for i in 0..n.saturating_sub(1) {
        b.add_edge([i, i + 1]);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MS-BFS on a relabeled hypergraph == scalar oracle on the
    /// original, bit for bit, and the per-vertex core-number map
    /// translates back exactly. Exercises both relabeling orders.
    #[test]
    fn relabeled_sweeps_match_unrelabeled_oracle(
        (h, by_degree) in (arb_hypergraph(90, 40, 6), any::<bool>())
    ) {
        let r = if by_degree {
            Relabeling::degree_order(&h)
        } else {
            Relabeling::bfs_order(&h)
        };
        let hr = r.apply(&h);

        let oracle = scalar_hyper_distance_stats(&h);
        let relabeled = msbfs_distance_stats(&hr);
        prop_assert_eq!(oracle.diameter, relabeled.diameter);
        prop_assert_eq!(oracle.reachable_pairs, relabeled.reachable_pairs);
        // Exact f64 equality: both engines divide the same u128 level
        // total by the same u64 pair count, and distance multisets are
        // label-invariant.
        prop_assert_eq!(
            oracle.average_path_length.to_bits(),
            relabeled.average_path_length.to_bits()
        );

        // Core numbers are per-vertex: compute on the relabeled graph,
        // unmap into the original numbering, compare to the oracle.
        let oracle_cores = hypergraph::core_numbers_per_k(&h);
        let relabeled_cores = r.unmap_vertex_values(&hypergraph::core_numbers(&hr));
        prop_assert_eq!(oracle_cores, relabeled_cores);
    }
}

/// Geometry that forces the *sparse* drain (two sources far apart on a
/// long chain: the frontier occupies 2 of ~40 summary words) and
/// geometry that forces the *dense* drain (a scaled instance whose
/// mid-sweep frontiers cover most vertices) must both engage — proven
/// by the scratch telemetry — while the public sweep stays bit-identical
/// to the scalar oracle.
#[test]
fn sparse_and_dense_drains_both_engage_and_match_scalar() {
    // Sparse: 2560-vertex chain, sources at 0 and 2500.
    let h = chain(2560);
    let mut scratch = MsBfsScratch::new(&h);
    let batch = [VertexId(0), VertexId(2500)];
    let mut ticks = 0u32;
    msbfs_batch(
        &h,
        &batch,
        &mut scratch,
        &Deadline::none(),
        &mut ticks,
        None,
    )
    .expect("unlimited deadline cannot expire");
    let c = scratch.sweep_counters();
    assert!(c.sparse_passes > 0, "sparse drain never engaged: {c:?}");
    assert!(c.words_skipped > 0, "no all-zero words skipped: {c:?}");

    let oracle = scalar_hyper_distance_stats(&h);
    let swept = msbfs_distance_stats(&h);
    assert_eq!(oracle, swept);
    assert_eq!(
        oracle.average_path_length.to_bits(),
        swept.average_path_length.to_bits()
    );

    // Dense: a random 5-pin blob (deterministic xorshift; the hypergen
    // crate dev-depends on this one, so it can't be used here) where
    // level-2+ frontiers cover most vertices.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 1200u64;
    let mut b = HypergraphBuilder::new(n as usize);
    for _ in 0..900 {
        let pins: Vec<u32> = (0..5).map(|_| (next() % n) as u32).collect();
        b.add_edge(pins);
    }
    let h = b.build();
    let mut scratch = MsBfsScratch::new(&h);
    let batch: Vec<VertexId> = (0..BATCH as u32).map(VertexId).collect();
    let mut ticks = 0u32;
    msbfs_batch(
        &h,
        &batch,
        &mut scratch,
        &Deadline::none(),
        &mut ticks,
        None,
    )
    .expect("unlimited deadline cannot expire");
    let c = scratch.sweep_counters();
    assert!(c.dense_passes > 0, "dense drain never engaged: {c:?}");

    let oracle = scalar_hyper_distance_stats(&h);
    let swept = msbfs_distance_stats(&h);
    assert_eq!(oracle, swept);
    assert_eq!(
        oracle.average_path_length.to_bits(),
        swept.average_path_length.to_bits()
    );
}

/// A deadline expiring mid-sweep on a *relabeled* graph reports partial
/// batch progress (phase `msbfs`, work_done strictly below the total),
/// and an immediate unlimited re-run still matches the unrelabeled
/// scalar oracle bit for bit — expiry must not poison later sweeps.
#[test]
fn relabeled_mid_sweep_expiry_then_clean_rerun() {
    for n in [4_000u32, 8_000, 16_000] {
        let h = chain(n);
        let r = Relabeling::bfs_order(&h);
        let hr = r.apply(&h);
        let total_batches = (n as u64).div_ceil(BATCH as u64);
        let err = match msbfs_distance_stats_with(&hr, &Deadline::after_ms(3)) {
            Err(e) => e,
            Ok(_) => continue,
        };
        assert_eq!(err.phase, "msbfs");
        assert!(err.work_done < total_batches, "{err:?}");

        let oracle = scalar_hyper_distance_stats(&h);
        let rerun = msbfs_distance_stats(&hr);
        assert_eq!(oracle, rerun);
        assert_eq!(
            oracle.average_path_length.to_bits(),
            rerun.average_path_length.to_bits()
        );
        return;
    }
    panic!("even the 16k-vertex chain finished inside 3ms; budget too generous");
}

/// Degenerate inputs survive relabeling: empty graphs, isolated
/// vertices, and empty hyperedges all round-trip.
#[test]
fn relabel_edge_cases() {
    let empty = HypergraphBuilder::new(0).build();
    let r = Relabeling::bfs_order(&empty);
    let e2 = r.apply(&empty);
    assert_eq!(e2.num_vertices(), 0);
    assert_eq!(
        scalar_hyper_distance_stats(&empty),
        msbfs_distance_stats(&e2)
    );

    let mut b = HypergraphBuilder::new(3);
    b.add_edge([] as [u32; 0]);
    b.add_edge([1]);
    let h = b.build();
    let r = Relabeling::degree_order(&h);
    let hr = r.apply(&h);
    assert_eq!(hr.num_vertices(), 3);
    assert_eq!(hr.num_edges(), h.num_edges());
    assert_eq!(scalar_hyper_distance_stats(&h), msbfs_distance_stats(&hr));
}
