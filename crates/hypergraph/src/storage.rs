//! Backing storage for a [`Hypergraph`]'s CSR arrays: owned `Vec`s or
//! a read-only memory-mapped `.hgb` file.
//!
//! The whole kernel stack reaches the CSR through [`Hypergraph::pins`]
//! and [`Hypergraph::edges_of`], which resolve to plain slices here.
//! `Storage::Owned` is the portable default every builder and parser
//! produces; `Storage::Mapped` serves the same slices straight out of
//! an mmap'd [`crate::hgb`] file, so cold load is O(header) and the OS
//! pages the arrays in on demand — a dataset larger than RAM can still
//! answer degree and stats queries.
//!
//! The mmap wrapper is a minimal `unsafe` shim over `mmap(2)`/
//! `munmap(2)` declared directly (the workspace is dependency-light; no
//! libc crate). On non-unix targets, or when `mmap` fails, callers fall
//! back to reading the file into owned memory — see
//! [`crate::hgb::open_hgb`].
//!
//! [`Hypergraph`]: crate::Hypergraph
//! [`Hypergraph::pins`]: crate::Hypergraph::pins
//! [`Hypergraph::edges_of`]: crate::Hypergraph::edges_of

use std::sync::Arc;

use crate::hypergraph::{EdgeId, VertexId};

/// Which backing a hypergraph's CSR lives in. Reported by
/// [`crate::Hypergraph::storage_kind`] and surfaced as
/// `"owned"`/`"mmap"` in `hgserve`'s `/datasets`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// Heap `Vec`s built in-process (builder, parsers, decoded `.hgb`).
    Owned,
    /// Slices into a read-only memory-mapped `.hgb` file.
    Mapped,
}

impl StorageKind {
    /// Stable lowercase name (`"owned"` | `"mmap"`), used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            StorageKind::Owned => "owned",
            StorageKind::Mapped => "mmap",
        }
    }
}

/// A read-only mapped (or loaded) byte region with stable address.
///
/// On unix this is an `mmap(2)` of a whole file, unmapped on drop. The
/// pointer is page-aligned, so the 64-byte-aligned `.hgb` sections stay
/// aligned for the 256-bit-lane bitset kernels.
pub struct MapRegion {
    ptr: *const u8,
    len: usize,
}

// The region is read-only for its whole lifetime and unmapped exactly
// once (owned behind `Arc`), so sharing across threads is sound.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl std::fmt::Debug for MapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MapRegion({} bytes)", self.len)
    }
}

#[cfg(unix)]
mod sys {
    use std::os::unix::io::AsRawFd;

    // Direct syscall wrappers; values are identical across the unix
    // targets this repo builds on (Linux, macOS).
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MAP_FAILED: isize = -1;

    /// Map `file` read-only. `len` must be the file's length and > 0.
    pub(super) fn map_file(file: &std::fs::File, len: usize) -> std::io::Result<*const u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == MAP_FAILED || ptr.is_null() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        unsafe {
            munmap(ptr as *mut core::ffi::c_void, len);
        }
    }
}

impl MapRegion {
    /// Memory-map a whole file read-only. Fails on empty files, on
    /// non-unix targets, and whenever `mmap(2)` itself fails — callers
    /// are expected to fall back to an owned read.
    #[cfg(unix)]
    pub fn map_path(path: &std::path::Path) -> std::io::Result<MapRegion> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file exceeds address space",
            )
        })?;
        let ptr = sys::map_file(&file, len)?;
        Ok(MapRegion { ptr, len })
    }

    /// Non-unix targets have no mmap shim; the owned fallback applies.
    #[cfg(not(unix))]
    pub fn map_path(_path: &std::path::Path) -> std::io::Result<MapRegion> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "mmap unavailable on this target",
        ))
    }

    /// Total mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the region is empty (never constructed; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole region as a byte slice.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Reinterpret `count` little-endian `u32`s starting at `byte_off`.
    ///
    /// # Panics
    /// If the range is out of bounds or `byte_off` is not 4-aligned —
    /// the `.hgb` reader validates both before building a
    /// [`MappedCsr`], so hitting this is a reader bug, not bad input.
    #[inline]
    pub(crate) fn u32s(&self, byte_off: usize, count: usize) -> &[u32] {
        let end = byte_off
            .checked_add(count.checked_mul(4).expect("section length overflow"))
            .expect("section range overflow");
        assert!(end <= self.len, "section out of bounds");
        assert!(byte_off % 4 == 0, "section misaligned");
        unsafe { std::slice::from_raw_parts(self.ptr.add(byte_off) as *const u32, count) }
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

/// Byte offset + element count of one `u32` section inside a region.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SectionRange {
    pub byte_off: usize,
    pub count: usize,
}

/// The four CSR arrays resolved inside one mapped `.hgb` region.
///
/// Only constructed by [`crate::hgb::open_hgb`] after the header and
/// section table have been validated (bounds, alignment, lengths), so
/// the slice casts in the accessors cannot go out of range.
#[derive(Clone, Debug)]
pub(crate) struct MappedCsr {
    pub region: Arc<MapRegion>,
    pub edge_offsets: SectionRange,
    pub pin_list: SectionRange,
    pub vertex_offsets: SectionRange,
    pub adj_list: SectionRange,
}

/// Backing storage of one hypergraph. See the module docs.
#[derive(Clone, Debug)]
pub(crate) enum Storage {
    Owned {
        /// CSR offsets into `pin_list`, length `num_edges + 1`.
        edge_offsets: Vec<u32>,
        /// Concatenated sorted pin lists of all hyperedges.
        pin_list: Vec<VertexId>,
        /// CSR offsets into `adj_list`, length `num_vertices + 1`.
        vertex_offsets: Vec<u32>,
        /// Concatenated sorted incident-hyperedge lists of all vertices.
        adj_list: Vec<EdgeId>,
    },
    Mapped(MappedCsr),
}

// `VertexId`/`EdgeId` are `#[repr(transparent)]` over `u32`, so a
// `&[u32]` section can be reinterpreted as a typed id slice.
#[inline]
fn as_vertex_ids(raw: &[u32]) -> &[VertexId] {
    unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const VertexId, raw.len()) }
}

#[inline]
fn as_edge_ids(raw: &[u32]) -> &[EdgeId] {
    unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const EdgeId, raw.len()) }
}

impl Storage {
    #[inline]
    pub fn edge_offsets(&self) -> &[u32] {
        match self {
            Storage::Owned { edge_offsets, .. } => edge_offsets,
            Storage::Mapped(m) => m.region.u32s(m.edge_offsets.byte_off, m.edge_offsets.count),
        }
    }

    #[inline]
    pub fn pin_list(&self) -> &[VertexId] {
        match self {
            Storage::Owned { pin_list, .. } => pin_list,
            Storage::Mapped(m) => {
                as_vertex_ids(m.region.u32s(m.pin_list.byte_off, m.pin_list.count))
            }
        }
    }

    #[inline]
    pub fn vertex_offsets(&self) -> &[u32] {
        match self {
            Storage::Owned { vertex_offsets, .. } => vertex_offsets,
            Storage::Mapped(m) => m
                .region
                .u32s(m.vertex_offsets.byte_off, m.vertex_offsets.count),
        }
    }

    #[inline]
    pub fn adj_list(&self) -> &[EdgeId] {
        match self {
            Storage::Owned { adj_list, .. } => adj_list,
            Storage::Mapped(m) => as_edge_ids(m.region.u32s(m.adj_list.byte_off, m.adj_list.count)),
        }
    }

    pub fn kind(&self) -> StorageKind {
        match self {
            Storage::Owned { .. } => StorageKind::Owned,
            Storage::Mapped(_) => StorageKind::Mapped,
        }
    }

    /// Process-resident footprint attributable to this storage: the
    /// heap bytes for owned CSRs, or the mapped file length for mmap
    /// (an upper bound — the OS pages mapped regions in lazily and may
    /// evict them under pressure).
    pub fn resident_bytes(&self) -> usize {
        match self {
            Storage::Owned {
                edge_offsets,
                pin_list,
                vertex_offsets,
                adj_list,
            } => {
                (edge_offsets.len() + vertex_offsets.len() + pin_list.len() + adj_list.len())
                    * std::mem::size_of::<u32>()
            }
            Storage::Mapped(m) => m.region.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_types_are_layout_compatible_with_u32() {
        assert_eq!(std::mem::size_of::<VertexId>(), std::mem::size_of::<u32>());
        assert_eq!(
            std::mem::align_of::<VertexId>(),
            std::mem::align_of::<u32>()
        );
        assert_eq!(std::mem::size_of::<EdgeId>(), std::mem::size_of::<u32>());
        let raw = [3u32, 1, 4];
        assert_eq!(
            as_vertex_ids(&raw),
            &[VertexId(3), VertexId(1), VertexId(4)]
        );
        assert_eq!(as_edge_ids(&raw), &[EdgeId(3), EdgeId(1), EdgeId(4)]);
    }

    #[cfg(unix)]
    #[test]
    fn map_region_reads_file_bytes() {
        let path = std::env::temp_dir().join(format!("hg-storage-test-{}.bin", std::process::id()));
        let data: Vec<u8> = (0u32..32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let region = MapRegion::map_path(&path).unwrap();
        assert_eq!(region.len(), 128);
        assert_eq!(region.bytes(), &data[..]);
        let words = region.u32s(16, 4);
        assert_eq!(words, &[4, 5, 6, 7]);
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn mapping_an_empty_file_fails_cleanly() {
        let path =
            std::env::temp_dir().join(format!("hg-storage-empty-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        assert!(MapRegion::map_path(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
