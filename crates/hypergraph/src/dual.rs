//! The dual hypergraph: vertices and hyperedges swap roles.
//!
//! In the protein-complex reading, the dual's vertices are complexes and
//! its hyperedges are proteins (each protein = the set of complexes it
//! belongs to). The complex intersection graph of `H` is exactly the
//! clique expansion of `H*`, which is how the paper's space argument for
//! intersection graphs (a protein in `m` complexes generates `O(m²)`
//! edges) becomes an instance of the clique-expansion argument.

use crate::builder::HypergraphBuilder;
use crate::hypergraph::Hypergraph;

/// Build the dual hypergraph `H*`: `H*.num_vertices() == H.num_edges()`,
/// one hyperedge per original vertex containing the (ids of the)
/// hyperedges incident to it. Degree-0 vertices become empty hyperedges.
pub fn dual(h: &Hypergraph) -> Hypergraph {
    let mut b = HypergraphBuilder::new(h.num_edges());
    b.reserve_pins(h.num_pins());
    for v in h.vertices() {
        b.add_edge(h.edges_of(v).iter().map(|f| f.0));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::{EdgeId, VertexId};
    use crate::projections::{clique_expansion, intersection_graph};

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3]);
        b.build()
    }

    #[test]
    fn shape_swaps() {
        let h = toy();
        let d = dual(&h);
        assert_eq!(d.num_vertices(), h.num_edges());
        assert_eq!(d.num_edges(), h.num_vertices());
        assert_eq!(d.num_pins(), h.num_pins());
    }

    #[test]
    fn incidences_transpose() {
        let h = toy();
        let d = dual(&h);
        for f in h.edges() {
            for &v in h.pins(f) {
                // (v ∈ f) in H  <=>  (f ∈ v) in H*.
                assert!(d.contains(EdgeId(v.0), VertexId(f.0)));
            }
        }
    }

    #[test]
    fn double_dual_is_identity() {
        let h = toy();
        let dd = dual(&dual(&h));
        assert_eq!(dd.num_vertices(), h.num_vertices());
        assert_eq!(dd.num_edges(), h.num_edges());
        for f in h.edges() {
            assert_eq!(dd.pins(f), h.pins(f));
        }
    }

    #[test]
    fn intersection_graph_is_clique_expansion_of_dual() {
        let h = toy();
        let (inter, _) = intersection_graph(&h);
        let clique_of_dual = clique_expansion(&dual(&h));
        assert_eq!(inter.num_nodes(), clique_of_dual.num_nodes());
        assert_eq!(inter.num_edges(), clique_of_dual.num_edges());
        assert!(inter.edges().eq(clique_of_dual.edges()));
    }

    #[test]
    fn isolated_vertex_becomes_empty_dual_edge() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0]);
        let h = b.build();
        let d = dual(&h);
        assert_eq!(d.edge_degree(EdgeId(1)), 0); // vertex 1 was isolated
    }

    #[test]
    fn dual_degrees_swap() {
        let h = toy();
        let d = dual(&h);
        for v in h.vertices() {
            assert_eq!(h.vertex_degree(v), d.edge_degree(EdgeId(v.0)));
        }
        for f in h.edges() {
            assert_eq!(h.edge_degree(f), d.vertex_degree(VertexId(f.0)));
        }
    }
}
