//! Greedy minimum-weight vertex cover of a hypergraph (paper §4, Fig. 5).
//!
//! Given non-negative vertex weights, find a subset `C ⊆ V` touching every
//! hyperedge, of (approximately) minimum total weight. The greedy rule is
//! Johnson–Chvátal–Lovász: repeatedly pick the vertex minimizing current
//! cost `α(v) = w(v) / |adj(v) ∩ F_i|` — its weight spread over the
//! hyperedges it would newly cover — and delete the covered hyperedges.
//! This is an `H_m = O(log m)` approximation, where `H_m` is the m-th
//! harmonic number.
//!
//! The paper uses this to select **bait proteins**: with unit weights it
//! finds ~109 baits for the Cellzome hypergraph; weighting each protein by
//! the *square of its degree* pushes the cover toward low-degree proteins
//! (better baits, because a promiscuous protein does not unambiguously
//! pull down one complex), giving ~233 baits of average degree ~1.14.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Why a cover could not be computed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// Some hyperedge has no vertices, so no vertex set can cover it.
    EmptyEdge(EdgeId),
    /// A vertex weight was negative, NaN, or infinite.
    BadWeight(VertexId),
    /// A multicover requirement exceeds the hyperedge's size
    /// (only produced by [`crate::greedy_multicover`]).
    InfeasibleRequirement(EdgeId),
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::EmptyEdge(e) => write!(f, "hyperedge {e:?} is empty and cannot be covered"),
            CoverError::BadWeight(v) => {
                write!(f, "vertex {v:?} has a negative or non-finite weight")
            }
            CoverError::InfeasibleRequirement(e) => write!(
                f,
                "hyperedge {e:?} requires more cover vertices than it contains"
            ),
        }
    }
}

impl std::error::Error for CoverError {}

/// A computed vertex cover.
#[derive(Clone, Debug)]
pub struct CoverResult {
    /// Chosen vertices, in selection order.
    pub vertices: Vec<VertexId>,
    /// Sum of the weights of the chosen vertices.
    pub total_weight: f64,
    /// Number of greedy iterations (equals `vertices.len()`).
    pub iterations: usize,
}

impl CoverResult {
    /// Mean degree (in the original hypergraph) of the cover's vertices —
    /// the paper's figure of merit for bait quality.
    pub fn average_degree(&self, h: &Hypergraph) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        let sum: usize = self.vertices.iter().map(|&v| h.vertex_degree(v)).sum();
        sum as f64 / self.vertices.len() as f64
    }
}

/// Totally ordered finite f64 for the lazy heap.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
struct FiniteF64(f64);

impl Eq for FiniteF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("finite by construction")
    }
}

/// Greedy `H_m`-approximate minimum-weight vertex cover (Fig. 5).
///
/// `weight(v)` must be finite and non-negative for every vertex. Runs in
/// `O(Σ_v d₂(v) + |E| log |V|)` — each vertex's heap entry is refreshed
/// lazily when its uncovered-adjacency count has changed.
///
/// Ties (equal cost) are broken toward the lowest vertex id, making the
/// result deterministic.
pub fn greedy_vertex_cover(
    h: &Hypergraph,
    weight: impl Fn(VertexId) -> f64,
) -> Result<CoverResult, CoverError> {
    let _span = hgobs::Span::enter("cover.greedy");
    let weights: Vec<f64> = h.vertices().map(&weight).collect();
    for v in h.vertices() {
        let w = weights[v.index()];
        if !w.is_finite() || w < 0.0 {
            return Err(CoverError::BadWeight(v));
        }
    }
    if let Some(f) = h.edges().find(|&f| h.edge_degree(f) == 0) {
        return Err(CoverError::EmptyEdge(f));
    }

    let mut uncovered_adj: Vec<u32> = h.vertices().map(|v| h.vertex_degree(v) as u32).collect();
    let mut covered = vec![false; h.num_edges()];
    let mut remaining = h.num_edges();
    let mut in_cover = vec![false; h.num_vertices()];

    // Lazy min-heap of (cost, id, count-at-push). Entries whose count is
    // stale are re-pushed with the refreshed cost.
    let mut heap: BinaryHeap<Reverse<(FiniteF64, u32, u32)>> = h
        .vertices()
        .filter(|&v| uncovered_adj[v.index()] > 0)
        .map(|v| {
            let c = weights[v.index()] / uncovered_adj[v.index()] as f64;
            Reverse((FiniteF64(c), v.0, uncovered_adj[v.index()]))
        })
        .collect();

    let mut result = CoverResult {
        vertices: Vec::new(),
        total_weight: 0.0,
        iterations: 0,
    };
    let mut heap_refreshes: u64 = 0;
    let mut edges_covered: u64 = 0;

    while remaining > 0 {
        let Reverse((_, vid, count_at_push)) = heap
            .pop()
            .expect("heap exhausted with uncovered edges remaining");
        let v = vid as usize;
        if in_cover[v] || uncovered_adj[v] == 0 {
            continue;
        }
        if uncovered_adj[v] != count_at_push {
            // Stale: cost has risen since push; refresh and retry.
            heap_refreshes += 1;
            let c = weights[v] / uncovered_adj[v] as f64;
            heap.push(Reverse((FiniteF64(c), vid, uncovered_adj[v])));
            continue;
        }

        in_cover[v] = true;
        result.vertices.push(VertexId(vid));
        result.total_weight += weights[v];
        result.iterations += 1;
        for &f in h.edges_of(VertexId(vid)) {
            if covered[f.index()] {
                continue;
            }
            covered[f.index()] = true;
            remaining -= 1;
            edges_covered += 1;
            for &w in h.pins(f) {
                uncovered_adj[w.index()] -= 1;
            }
        }
    }

    hgobs::counter!("cover.picks", result.iterations);
    hgobs::counter!("cover.heap_refreshes", heap_refreshes);
    hgobs::counter!("cover.edges_covered", edges_covered);
    Ok(result)
}

/// `true` iff `cover` touches every hyperedge of `h`.
pub fn is_vertex_cover(h: &Hypergraph, cover: &[VertexId]) -> bool {
    let mut chosen = vec![false; h.num_vertices()];
    for &v in cover {
        chosen[v.index()] = true;
    }
    h.edges()
        .all(|f| h.pins(f).iter().any(|v| chosen[v.index()]))
}

/// The m-th harmonic number `H_m = 1 + 1/2 + … + 1/m` — the greedy
/// algorithm's approximation guarantee for a hypergraph with `m`
/// hyperedges.
pub fn harmonic(m: usize) -> f64 {
    (1..=m).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn star() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([0, 2]);
        b.add_edge([0, 3]);
        b.build()
    }

    #[test]
    fn unit_weights_pick_the_hub() {
        let h = star();
        let c = greedy_vertex_cover(&h, |_| 1.0).unwrap();
        assert_eq!(c.vertices, vec![VertexId(0)]);
        assert_eq!(c.total_weight, 1.0);
        assert!(is_vertex_cover(&h, &c.vertices));
    }

    #[test]
    fn degree_squared_weights_avoid_the_hub() {
        // The paper's trick: w(v) = d(v)² discourages promiscuous baits.
        let h = star();
        let c = greedy_vertex_cover(&h, |v| {
            let d = h.vertex_degree(v) as f64;
            d * d
        })
        .unwrap();
        // hub cost = 9/3 = 3; leaf cost = 1/1. Leaves win.
        assert_eq!(c.vertices.len(), 3);
        assert!(!c.vertices.contains(&VertexId(0)));
        assert!(is_vertex_cover(&h, &c.vertices));
        assert!((c.average_degree(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_rejected() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0]);
        b.add_edge([]);
        let h = b.build();
        assert_eq!(
            greedy_vertex_cover(&h, |_| 1.0),
            Err(CoverError::EmptyEdge(EdgeId(1)))
        );
    }

    // CoverError derives PartialEq; CoverResult doesn't, so compare fields.
    impl PartialEq for CoverResult {
        fn eq(&self, other: &Self) -> bool {
            self.vertices == other.vertices && self.total_weight == other.total_weight
        }
    }

    #[test]
    fn bad_weights_rejected() {
        let h = star();
        assert!(matches!(
            greedy_vertex_cover(&h, |_| -1.0),
            Err(CoverError::BadWeight(_))
        ));
        assert!(matches!(
            greedy_vertex_cover(&h, |_| f64::NAN),
            Err(CoverError::BadWeight(_))
        ));
        assert!(matches!(
            greedy_vertex_cover(&h, |_| f64::INFINITY),
            Err(CoverError::BadWeight(_))
        ));
    }

    #[test]
    fn no_edges_gives_empty_cover() {
        let h = HypergraphBuilder::new(3).build();
        let c = greedy_vertex_cover(&h, |_| 1.0).unwrap();
        assert!(c.vertices.is_empty());
        assert_eq!(c.total_weight, 0.0);
        assert!(is_vertex_cover(&h, &c.vertices));
    }

    #[test]
    fn deterministic_tiebreak_lowest_id() {
        // Two disjoint pairs: within each, both vertices cost the same;
        // the lower id must be chosen.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([2, 3]);
        let h = b.build();
        let c = greedy_vertex_cover(&h, |_| 1.0).unwrap();
        assert_eq!(c.vertices, vec![VertexId(0), VertexId(2)]);
    }

    #[test]
    fn within_harmonic_bound_of_optimum() {
        // Random-ish small instance; exhaustive optimum as the baseline.
        let mut b = HypergraphBuilder::new(8);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([3, 4, 5]);
        b.add_edge([5, 6]);
        b.add_edge([6, 7, 0]);
        b.add_edge([1, 4, 7]);
        let h = b.build();
        let weight = |v: VertexId| 1.0 + (v.0 % 3) as f64;
        let greedy = greedy_vertex_cover(&h, weight).unwrap();
        assert!(is_vertex_cover(&h, &greedy.vertices));
        let opt = crate::naive::exhaustive_min_cover(&h, weight).unwrap();
        let opt_w: f64 = opt.iter().map(|&v| weight(v)).sum();
        let bound = harmonic(h.num_edges());
        assert!(
            greedy.total_weight <= opt_w * bound + 1e-9,
            "greedy {} vs opt {} (H_m = {})",
            greedy.total_weight,
            opt_w,
            bound
        );
    }

    #[test]
    fn zero_weight_vertices_are_free() {
        let h = star();
        // Leaf 1 free: should be picked before anything else, but the hub
        // still covers the rest more cheaply than the other leaves.
        let c = greedy_vertex_cover(&h, |v| if v.0 == 1 { 0.0 } else { 1.0 }).unwrap();
        assert!(c.vertices.contains(&VertexId(1)));
        assert!(is_vertex_cover(&h, &c.vertices));
        assert_eq!(c.total_weight, 1.0); // hub covers the remaining two
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn covers_duplicated_edges_once_each() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        let h = b.build();
        let c = greedy_vertex_cover(&h, |_| 1.0).unwrap();
        assert_eq!(c.vertices, vec![VertexId(0)]);
    }
}
