//! `.hgb` — the binary on-disk CSR hypergraph format.
//!
//! A `.hgb` file is the frozen dual-CSR of a [`Hypergraph`] laid out so
//! it can be memory-mapped and served without parsing:
//!
//! ```text
//! byte 0   magic "HGB1"                 (4 bytes)
//!          version        u32  (= 1)
//!          num_vertices   u64
//!          num_edges      u64
//!          num_pins       u64
//!          flags          u64  (bit 0: relabeling sections present)
//!          max_vertex_deg u64  (precomputed summary statistics,
//!          max_edge_deg   u64   so stats answers are O(1) after open)
//!          section_count  u64
//!          sections       count x { id u64, byte_offset u64, byte_len u64 }
//!          header_fnv1a   u64  (FNV-1a over every header byte above)
//! then the sections, each 64-byte aligned, little-endian u32 arrays:
//!   1 EDGE_OFFSETS    num_edges+1     CSR offsets into PIN_LIST
//!   2 PIN_LIST        num_pins        member vertices per hyperedge
//!   3 VERTEX_OFFSETS  num_vertices+1  CSR offsets into ADJ_LIST
//!   4 ADJ_LIST        num_pins        incident hyperedges per vertex
//!   5 VERTEX_DEGREES  num_vertices    d(v), redundant with offsets but
//!                                     lets degree queries touch one
//!                                     contiguous section
//!   6 EDGE_DEGREES    num_edges       d(f), same rationale
//!   7 REL_V_TO_NEW    num_vertices    (optional) relabeling forward map
//!   8 REL_V_TO_OLD    num_vertices    (optional) relabeling inverse map
//!   9 REL_E_TO_OLD    num_edges       (optional) hyperedge inverse map
//! ```
//!
//! Sections start on 64-byte boundaries, so once the file is mapped
//! (page-aligned) every array is cache-line aligned for the 256-bit
//! lane bitset kernels. The header carries an FNV-1a checksum; the
//! section table is bounds- and alignment-checked against the file
//! length before any array is touched, so [`open_hgb`] is O(header) —
//! it never scans the data sections (pass [`HgbOpenOptions::verify`]
//! to opt into the full O(data) structural validation, which the
//! conversion path and the test suites do).
//!
//! When a relabeling is baked in ([`write_hgb`] with `Some(r)`), the
//! stored CSR is the *relabeled* hypergraph and sections 7–9 carry the
//! id translation, so a server can keep serving external ids while the
//! kernels sweep the cache-local layout.

use std::io::Write;
use std::sync::Arc;

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::relabel::Relabeling;
use crate::storage::{MapRegion, MappedCsr, SectionRange, Storage};

/// File magic, first four bytes of every `.hgb`.
pub const MAGIC: [u8; 4] = *b"HGB1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Every section starts on a multiple of this (cache-line/lane size).
pub const SECTION_ALIGN: usize = 64;

/// Section ids (the `id` field of each section-table entry).
pub mod section {
    pub const EDGE_OFFSETS: u64 = 1;
    pub const PIN_LIST: u64 = 2;
    pub const VERTEX_OFFSETS: u64 = 3;
    pub const ADJ_LIST: u64 = 4;
    pub const VERTEX_DEGREES: u64 = 5;
    pub const EDGE_DEGREES: u64 = 6;
    pub const REL_V_TO_NEW: u64 = 7;
    pub const REL_V_TO_OLD: u64 = 8;
    pub const REL_E_TO_OLD: u64 = 9;
}

/// Flag bit: relabeling sections 7–9 are present.
pub const FLAG_RELABELED: u64 = 1;

/// Structured `.hgb` error: what is wrong and, when attributable to a
/// specific position, the byte offset in the file. Mirrors
/// [`crate::io::HgrError`]'s line numbers for the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HgbError {
    /// Byte offset of the problem in the file; `None` for whole-file
    /// errors (I/O failures, unreadable paths).
    pub offset: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl HgbError {
    fn at(offset: u64, message: impl Into<String>) -> Self {
        HgbError {
            offset: Some(offset),
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        HgbError {
            offset: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HgbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "hgb error at byte {o}: {}", self.message),
            None => write!(f, "hgb error: {}", self.message),
        }
    }
}

impl std::error::Error for HgbError {}

/// FNV-1a over a byte slice (same constants as [`crate::hash::Fnv1a`];
/// restated here so the format spec is self-contained).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn pad_to(len: usize) -> usize {
    len.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Serialize one `u32` array little-endian. On little-endian targets
/// this is a single contiguous write; elsewhere a per-element fallback.
fn write_u32s(w: &mut impl Write, xs: &[u32]) -> std::io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        let bytes = unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 4) };
        w.write_all(bytes)
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut buf = Vec::with_capacity(8192);
        for chunk in xs.chunks(2048) {
            buf.clear();
            for x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        Ok(())
    }
}

/// One planned section: id plus the array to write.
struct Plan<'a> {
    id: u64,
    data: SectionData<'a>,
}

enum SectionData<'a> {
    Raw(&'a [u32]),
    /// Degrees derived from a CSR offsets array (adjacent differences),
    /// computed on the fly so the writer never materializes them.
    Degrees(&'a [u32]),
}

impl SectionData<'_> {
    fn count(&self) -> usize {
        match self {
            SectionData::Raw(xs) => xs.len(),
            SectionData::Degrees(offsets) => offsets.len() - 1,
        }
    }

    fn write(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            SectionData::Raw(xs) => write_u32s(w, xs),
            SectionData::Degrees(offsets) => {
                let mut buf = Vec::with_capacity(4096);
                for pair in offsets.windows(2) {
                    buf.extend_from_slice(&(pair[1] - pair[0]).to_le_bytes());
                    if buf.len() >= 4096 {
                        w.write_all(&buf)?;
                        buf.clear();
                    }
                }
                w.write_all(&buf)
            }
        }
    }
}

fn ids_as_u32(ids: &[VertexId]) -> &[u32] {
    // repr(transparent) — see `storage.rs`.
    unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const u32, ids.len()) }
}

fn eids_as_u32(ids: &[EdgeId]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const u32, ids.len()) }
}

/// Write `h` (and optionally the relabeling that produced it) as a
/// `.hgb` stream. The caller decides buffering; wrap files in a
/// `BufWriter`.
pub fn write_hgb(
    h: &Hypergraph,
    relabeling: Option<&Relabeling>,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let (edge_offsets, pin_list, vertex_offsets, adj_list) = h.csr_slices();
    let mut plans = vec![
        Plan {
            id: section::EDGE_OFFSETS,
            data: SectionData::Raw(edge_offsets),
        },
        Plan {
            id: section::PIN_LIST,
            data: SectionData::Raw(ids_as_u32(pin_list)),
        },
        Plan {
            id: section::VERTEX_OFFSETS,
            data: SectionData::Raw(vertex_offsets),
        },
        Plan {
            id: section::ADJ_LIST,
            data: SectionData::Raw(eids_as_u32(adj_list)),
        },
        Plan {
            id: section::VERTEX_DEGREES,
            data: SectionData::Degrees(vertex_offsets),
        },
        Plan {
            id: section::EDGE_DEGREES,
            data: SectionData::Degrees(edge_offsets),
        },
    ];
    let mut flags = 0u64;
    if let Some(r) = relabeling {
        let (v_to_new, v_to_old, e_to_old) = r.parts();
        assert_eq!(v_to_new.len(), h.num_vertices(), "relabeling size mismatch");
        assert_eq!(e_to_old.len(), h.num_edges(), "relabeling size mismatch");
        flags |= FLAG_RELABELED;
        plans.push(Plan {
            id: section::REL_V_TO_NEW,
            data: SectionData::Raw(v_to_new),
        });
        plans.push(Plan {
            id: section::REL_V_TO_OLD,
            data: SectionData::Raw(v_to_old),
        });
        plans.push(Plan {
            id: section::REL_E_TO_OLD,
            data: SectionData::Raw(e_to_old),
        });
    }

    // Header layout (see module docs); sections start at the first
    // 64-byte boundary past the header.
    let header_len = 4 + 4 + 8 * 7 + plans.len() * 24 + 8;
    let mut header = Vec::with_capacity(header_len);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(h.num_vertices() as u64).to_le_bytes());
    header.extend_from_slice(&(h.num_edges() as u64).to_le_bytes());
    header.extend_from_slice(&(h.num_pins() as u64).to_le_bytes());
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&(h.max_vertex_degree() as u64).to_le_bytes());
    header.extend_from_slice(&(h.max_edge_degree() as u64).to_le_bytes());
    header.extend_from_slice(&(plans.len() as u64).to_le_bytes());
    let mut offset = pad_to(header_len);
    let mut section_offsets = Vec::with_capacity(plans.len());
    for p in &plans {
        let len = p.data.count() * 4;
        header.extend_from_slice(&p.id.to_le_bytes());
        header.extend_from_slice(&(offset as u64).to_le_bytes());
        header.extend_from_slice(&(len as u64).to_le_bytes());
        section_offsets.push(offset);
        offset = pad_to(offset + len);
    }
    header.extend_from_slice(&fnv1a(&header).to_le_bytes());
    debug_assert_eq!(header.len(), header_len);

    w.write_all(&header)?;
    let mut written = header.len();
    const ZEROS: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];
    for (p, &start) in plans.iter().zip(&section_offsets) {
        w.write_all(&ZEROS[..start - written])?;
        p.data.write(w)?;
        written = start + p.data.count() * 4;
    }
    w.flush()
}

/// Write `h` to `path` as `.hgb` (buffered).
pub fn write_hgb_file(
    h: &Hypergraph,
    relabeling: Option<&Relabeling>,
    path: &std::path::Path,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_hgb(h, relabeling, &mut w)
}

/// Accumulates hyperedges and writes a `.hgb` directly — no
/// [`Hypergraph`] and no text form are ever materialized, so emitting a
/// million-vertex generated dataset peaks at the size of the CSR
/// itself. Used by `hypergen`'s streaming emitters (`hg gen ... -o
/// out.hgb`).
///
/// Semantics match [`crate::HypergraphBuilder`]: pins are sorted and
/// deduplicated per edge, duplicate edges are kept, empty edges are
/// allowed.
pub struct HgbStreamWriter {
    num_vertices: usize,
    pins: Vec<u32>,
    offsets: Vec<u32>,
}

impl HgbStreamWriter {
    /// Writer over the vertex set `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex count exceeds u32"
        );
        HgbStreamWriter {
            num_vertices,
            pins: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Pre-reserve capacity for `additional_pins` more incidences.
    pub fn reserve_pins(&mut self, additional_pins: usize) {
        self.pins.reserve(additional_pins);
    }

    /// Number of hyperedges added so far.
    pub fn num_edges(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Add one hyperedge (sorted + deduplicated in place).
    ///
    /// # Panics
    /// If any vertex id is out of range.
    pub fn add_edge(&mut self, vertices: impl IntoIterator<Item = u32>) {
        let start = self.pins.len();
        for v in vertices {
            assert!(
                (v as usize) < self.num_vertices,
                "vertex {v} out of range for {} vertices",
                self.num_vertices
            );
            self.pins.push(v);
        }
        self.pins[start..].sort_unstable();
        let mut write = start;
        for read in start..self.pins.len() {
            if read == start || self.pins[read] != self.pins[write - 1] {
                self.pins[write] = self.pins[read];
                write += 1;
            }
        }
        self.pins.truncate(write);
        assert!(
            self.pins.len() <= u32::MAX as usize,
            "pin count exceeds u32"
        );
        self.offsets.push(self.pins.len() as u32);
    }

    /// Build the vertex-side CSR and stream the complete `.hgb` out.
    pub fn finish(self, w: &mut impl Write) -> std::io::Result<()> {
        // Same counting-scatter as `HypergraphBuilder::build`, then
        // reuse the normal writer over a transient owned hypergraph —
        // the only allocations are the CSR arrays themselves.
        let h = crate::builder::build_from_edge_csr(self.num_vertices, self.offsets, self.pins);
        write_hgb(&h, None, w)
    }

    /// [`HgbStreamWriter::finish`] into a buffered file.
    pub fn finish_file(self, path: &std::path::Path) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.finish(&mut w)
    }
}

/// How [`open_hgb`] should back the returned hypergraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HgbOpenMode {
    /// Memory-map the file (read-only); fall back to [`HgbOpenMode::Owned`]
    /// when mmap is unavailable (non-unix) or fails. The default: cold
    /// load is O(header) and resident memory is paged by the OS.
    Mmap,
    /// Decode into owned `Vec`s (one full read + copy) — the portable
    /// path, also what you want when the file lives on storage slower
    /// than a page fault should hit.
    Owned,
}

/// Options for [`open_hgb`].
#[derive(Clone, Copy, Debug)]
pub struct HgbOpenOptions {
    pub mode: HgbOpenMode,
    /// Run the full O(data) structural validation (offset monotonicity,
    /// pin ranges, CSR duality, relabeling permutations). Off by
    /// default — the point of the format is O(header) opens; the
    /// conversion path and the test suites turn it on.
    pub verify: bool,
}

impl Default for HgbOpenOptions {
    fn default() -> Self {
        HgbOpenOptions {
            mode: HgbOpenMode::Mmap,
            verify: false,
        }
    }
}

/// Everything decoded from a `.hgb` file.
#[derive(Debug)]
pub struct HgbDataset {
    pub hypergraph: Hypergraph,
    /// Present when the file was written with a baked-in relabeling:
    /// the stored CSR is under new ids and this maps back to old ids.
    pub relabeling: Option<Relabeling>,
    /// Summary statistics straight from the header (no array touched).
    pub max_vertex_degree: usize,
    pub max_edge_degree: usize,
}

struct ParsedHeader {
    num_vertices: u64,
    num_edges: u64,
    num_pins: u64,
    flags: u64,
    max_vertex_degree: u64,
    max_edge_degree: u64,
    /// id → (byte_offset, byte_len)
    sections: Vec<(u64, u64, u64)>,
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// Parse and checksum the header; validate the section table against
/// `file_len`. O(header).
fn parse_header(bytes: &[u8], file_len: u64) -> Result<ParsedHeader, HgbError> {
    const FIXED: usize = 4 + 4 + 8 * 7; // magic..section_count
    if bytes.len() < FIXED {
        return Err(HgbError::at(
            bytes.len() as u64,
            format!(
                "truncated header: {} bytes, need at least {FIXED}",
                bytes.len()
            ),
        ));
    }
    if bytes[0..4] != MAGIC {
        return Err(HgbError::at(
            0,
            format!("bad magic {:02x?} (expected \"HGB1\")", &bytes[0..4]),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(HgbError::at(
            4,
            format!("unsupported version {version} (this reader understands {VERSION})"),
        ));
    }
    let num_vertices = read_u64(bytes, 8);
    let num_edges = read_u64(bytes, 16);
    let num_pins = read_u64(bytes, 24);
    let flags = read_u64(bytes, 32);
    let max_vertex_degree = read_u64(bytes, 40);
    let max_edge_degree = read_u64(bytes, 48);
    let section_count = read_u64(bytes, 56);
    if section_count > 64 {
        return Err(HgbError::at(
            56,
            format!("implausible section count {section_count}"),
        ));
    }
    let header_len = FIXED + section_count as usize * 24 + 8;
    if bytes.len() < header_len {
        return Err(HgbError::at(
            bytes.len() as u64,
            format!(
                "truncated header: {} bytes, need {header_len} for {section_count} sections",
                bytes.len()
            ),
        ));
    }
    let checksum_off = header_len - 8;
    let want = read_u64(bytes, checksum_off);
    let got = fnv1a(&bytes[..checksum_off]);
    if want != got {
        return Err(HgbError::at(
            checksum_off as u64,
            format!("header checksum mismatch: stored {want:#018x}, computed {got:#018x}"),
        ));
    }
    let mut sections = Vec::with_capacity(section_count as usize);
    for i in 0..section_count as usize {
        let entry = FIXED + i * 24;
        let id = read_u64(bytes, entry);
        let off = read_u64(bytes, entry + 8);
        let len = read_u64(bytes, entry + 16);
        if off % SECTION_ALIGN as u64 != 0 {
            return Err(HgbError::at(
                entry as u64 + 8,
                format!("section {id} offset {off} not {SECTION_ALIGN}-byte aligned"),
            ));
        }
        if len % 4 != 0 {
            return Err(HgbError::at(
                entry as u64 + 16,
                format!("section {id} length {len} not a multiple of 4"),
            ));
        }
        let end = off.checked_add(len).ok_or_else(|| {
            HgbError::at(entry as u64 + 8, format!("section {id} range overflows"))
        })?;
        if end > file_len {
            return Err(HgbError::at(
                entry as u64 + 8,
                format!(
                    "section {id} [{off}, {end}) exceeds file length {file_len} (truncated file?)"
                ),
            ));
        }
        sections.push((id, off, len));
    }
    Ok(ParsedHeader {
        num_vertices,
        num_edges,
        num_pins,
        flags,
        max_vertex_degree,
        max_edge_degree,
        sections,
    })
}

impl ParsedHeader {
    /// Locate a required section and check its element count.
    fn require(&self, id: u64, want_count: u64) -> Result<SectionRange, HgbError> {
        let &(_, off, len) = self
            .sections
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .ok_or_else(|| HgbError::whole(format!("missing required section {id}")))?;
        if len / 4 != want_count {
            return Err(HgbError::at(
                off,
                format!("section {id} holds {} u32s, expected {want_count}", len / 4),
            ));
        }
        Ok(SectionRange {
            byte_off: off as usize,
            count: want_count as usize,
        })
    }
}

/// Open a `.hgb` file. The default is the mmap path: O(header) work,
/// arrays paged in by the OS on first touch. See [`HgbOpenOptions`].
pub fn open_hgb(path: &std::path::Path, opts: HgbOpenOptions) -> Result<HgbDataset, HgbError> {
    let io_err =
        |e: std::io::Error| HgbError::whole(format!("cannot read {}: {e}", path.display()));
    match opts.mode {
        HgbOpenMode::Mmap => match MapRegion::map_path(path) {
            Ok(region) => open_mapped(Arc::new(region), opts.verify),
            // mmap unavailable (non-unix, weird fs): portable fallback.
            Err(_) => {
                let bytes = std::fs::read(path).map_err(io_err)?;
                open_owned(&bytes, opts.verify)
            }
        },
        HgbOpenMode::Owned => {
            let bytes = std::fs::read(path).map_err(io_err)?;
            open_owned(&bytes, opts.verify)
        }
    }
}

/// Resolve the header + section table of an already-mapped region into
/// a zero-copy [`Hypergraph`].
fn open_mapped(region: Arc<MapRegion>, verify: bool) -> Result<HgbDataset, HgbError> {
    let bytes = region.bytes();
    let header = parse_header(bytes, bytes.len() as u64)?;
    let csr = MappedCsr {
        edge_offsets: header.require(section::EDGE_OFFSETS, header.num_edges + 1)?,
        pin_list: header.require(section::PIN_LIST, header.num_pins)?,
        vertex_offsets: header.require(section::VERTEX_OFFSETS, header.num_vertices + 1)?,
        adj_list: header.require(section::ADJ_LIST, header.num_pins)?,
        region: Arc::clone(&region),
    };
    // Degree sections must exist with the right shape even though the
    // mapped path reads degrees off the offsets arrays.
    header.require(section::VERTEX_DEGREES, header.num_vertices)?;
    header.require(section::EDGE_DEGREES, header.num_edges)?;
    let relabeling = decode_relabeling(&header, |r| region.u32s(r.byte_off, r.count).to_vec())?;
    let h = Hypergraph::from_storage(Storage::Mapped(csr));
    finish_open(h, relabeling, &header, verify)
}

/// Decode a `.hgb` byte buffer into owned `Vec`-backed storage.
fn open_owned(bytes: &[u8], verify: bool) -> Result<HgbDataset, HgbError> {
    let header = parse_header(bytes, bytes.len() as u64)?;
    let take = |r: SectionRange| -> Vec<u32> {
        bytes[r.byte_off..r.byte_off + r.count * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    };
    let edge_offsets = take(header.require(section::EDGE_OFFSETS, header.num_edges + 1)?);
    let pin_list: Vec<VertexId> = take(header.require(section::PIN_LIST, header.num_pins)?)
        .into_iter()
        .map(VertexId)
        .collect();
    let vertex_offsets = take(header.require(section::VERTEX_OFFSETS, header.num_vertices + 1)?);
    let adj_list: Vec<EdgeId> = take(header.require(section::ADJ_LIST, header.num_pins)?)
        .into_iter()
        .map(EdgeId)
        .collect();
    header.require(section::VERTEX_DEGREES, header.num_vertices)?;
    header.require(section::EDGE_DEGREES, header.num_edges)?;
    let relabeling = decode_relabeling(&header, take)?;
    let h = Hypergraph::from_storage(Storage::Owned {
        edge_offsets,
        pin_list,
        vertex_offsets,
        adj_list,
    });
    finish_open(h, relabeling, &header, verify)
}

fn decode_relabeling(
    header: &ParsedHeader,
    mut take: impl FnMut(SectionRange) -> Vec<u32>,
) -> Result<Option<Relabeling>, HgbError> {
    if header.flags & FLAG_RELABELED == 0 {
        return Ok(None);
    }
    let n = header.num_vertices;
    let m = header.num_edges;
    let v_to_new = take(header.require(section::REL_V_TO_NEW, n)?);
    let v_to_old = take(header.require(section::REL_V_TO_OLD, n)?);
    let e_to_old = take(header.require(section::REL_E_TO_OLD, m)?);
    // Bounds + mutual-inverse checks: a corrupted map must not become
    // an out-of-bounds index at query time.
    for (i, &x) in v_to_new.iter().enumerate() {
        if x as u64 >= n || v_to_old.get(x as usize).copied() != Some(i as u32) {
            return Err(HgbError::whole(format!(
                "relabeling sections are not a consistent vertex permutation (old id {i})"
            )));
        }
    }
    for &f in &e_to_old {
        if f as u64 >= m {
            return Err(HgbError::whole(format!(
                "relabeling edge map entry {f} out of range 0..{m}"
            )));
        }
    }
    Ok(Some(Relabeling::from_parts(v_to_new, v_to_old, e_to_old)))
}

fn finish_open(
    h: Hypergraph,
    relabeling: Option<Relabeling>,
    header: &ParsedHeader,
    verify: bool,
) -> Result<HgbDataset, HgbError> {
    if verify {
        // Cheap spot checks first, then the crate's full structural
        // validator (offset monotonicity, sorted pins, CSR duality).
        let (eo, _, vo, _) = h.csr_slices();
        if eo.first() != Some(&0) || vo.first() != Some(&0) {
            return Err(HgbError::whole("CSR offsets do not start at 0"));
        }
        if eo.last().copied() != Some(header.num_pins as u32)
            || vo.last().copied() != Some(header.num_pins as u32)
        {
            return Err(HgbError::whole(format!(
                "CSR offsets do not end at num_pins {}",
                header.num_pins
            )));
        }
        crate::validate::check_structure(&h)
            .map_err(|e| HgbError::whole(format!("structural validation failed: {e}")))?;
        if h.max_vertex_degree() as u64 != header.max_vertex_degree
            || h.max_edge_degree() as u64 != header.max_edge_degree
        {
            return Err(HgbError::whole(
                "header degree summary disagrees with the CSR",
            ));
        }
    }
    Ok(HgbDataset {
        hypergraph: h,
        relabeling,
        max_vertex_degree: header.max_vertex_degree as usize,
        max_edge_degree: header.max_edge_degree as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([4]);
        b.add_edge([]);
        b.build()
    }

    fn encode(h: &Hypergraph, r: Option<&Relabeling>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_hgb(h, r, &mut buf).unwrap();
        buf
    }

    fn assert_same(a: &Hypergraph, b: &Hypergraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_pins(), b.num_pins());
        for f in a.edges() {
            assert_eq!(a.pins(f), b.pins(f));
        }
        for v in a.vertices() {
            assert_eq!(a.edges_of(v), b.edges_of(v));
        }
    }

    #[test]
    fn owned_roundtrip() {
        let h = toy();
        let bytes = encode(&h, None);
        let ds = open_owned(&bytes, true).unwrap();
        assert_same(&h, &ds.hypergraph);
        assert!(ds.relabeling.is_none());
        assert_eq!(ds.max_vertex_degree, h.max_vertex_degree());
        assert_eq!(ds.max_edge_degree, h.max_edge_degree());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_roundtrip_via_file() {
        let h = toy();
        let path = std::env::temp_dir().join(format!("hgb-unit-{}.hgb", std::process::id()));
        write_hgb_file(&h, None, &path).unwrap();
        let ds = open_hgb(
            &path,
            HgbOpenOptions {
                mode: HgbOpenMode::Mmap,
                verify: true,
            },
        )
        .unwrap();
        assert_eq!(
            ds.hypergraph.storage_kind(),
            crate::storage::StorageKind::Mapped
        );
        assert_same(&h, &ds.hypergraph);
        // Mapped resident bytes = the file length.
        assert_eq!(
            ds.hypergraph.resident_bytes(),
            std::fs::metadata(&path).unwrap().len() as usize
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn relabeling_roundtrips() {
        let h = toy();
        let r = Relabeling::bfs_order(&h);
        let g = r.apply(&h);
        let bytes = encode(&g, Some(&r));
        let ds = open_owned(&bytes, true).unwrap();
        let r2 = ds.relabeling.expect("relabeling present");
        assert_eq!(r, r2);
        assert_same(&g, &ds.hypergraph);
    }

    #[test]
    fn sections_are_aligned() {
        let bytes = encode(&toy(), None);
        let header = parse_header(&bytes, bytes.len() as u64).unwrap();
        assert_eq!(header.sections.len(), 6);
        for &(_, off, _) in &header.sections {
            assert_eq!(off % SECTION_ALIGN as u64, 0);
        }
    }

    #[test]
    fn bad_magic_is_reported_at_byte_zero() {
        let mut bytes = encode(&toy(), None);
        bytes[0] = b'X';
        let err = open_owned(&bytes, false).unwrap_err();
        assert_eq!(err.offset, Some(0));
        assert!(err
            .to_string()
            .starts_with("hgb error at byte 0: bad magic"));
    }

    #[test]
    fn corrupted_header_fails_checksum_with_offset() {
        let mut bytes = encode(&toy(), None);
        bytes[16] ^= 0xff; // num_edges field
        let err = open_owned(&bytes, false).unwrap_err();
        assert!(err.message.contains("header checksum mismatch"), "{err}");
        assert!(err.offset.is_some());
    }

    #[test]
    fn truncated_file_points_at_offending_section() {
        let bytes = encode(&toy(), None);
        let cut = &bytes[..bytes.len() - 8];
        let err = open_owned(cut, false).unwrap_err();
        assert!(
            err.message.contains("exceeds file length") || err.message.contains("truncated"),
            "{err}"
        );
        assert!(err.offset.is_some(), "{err}");
    }

    #[test]
    fn truncated_header_is_an_error() {
        let bytes = encode(&toy(), None);
        let err = open_owned(&bytes[..10], false).unwrap_err();
        assert!(err.message.contains("truncated header"), "{err}");
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode(&toy(), None);
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        // Re-seal the checksum so the version check, not the checksum,
        // fires.
        let count = read_u64(&bytes, 56) as usize;
        let checksum_off = 4 + 4 + 8 * 7 + count * 24;
        let sum = fnv1a(&bytes[..checksum_off]);
        bytes[checksum_off..checksum_off + 8].copy_from_slice(&sum.to_le_bytes());
        let err = open_owned(&bytes, false).unwrap_err();
        assert_eq!(err.offset, Some(4));
        assert!(err.message.contains("unsupported version 9"), "{err}");
    }

    #[test]
    fn stream_writer_matches_builder_output() {
        let mut sw = HgbStreamWriter::new(5);
        sw.add_edge([2, 0, 1, 2]); // dup within edge collapses
        sw.add_edge([3, 1, 2]);
        sw.add_edge([4]);
        sw.add_edge([]);
        assert_eq!(sw.num_edges(), 4);
        let mut buf = Vec::new();
        sw.finish(&mut buf).unwrap();
        let via_stream = open_owned(&buf, true).unwrap().hypergraph;
        assert_same(&toy(), &via_stream);
    }

    #[test]
    fn empty_hypergraph_roundtrips() {
        let h = HypergraphBuilder::new(0).build();
        let bytes = encode(&h, None);
        let ds = open_owned(&bytes, true).unwrap();
        assert!(ds.hypergraph.is_empty());
    }
}
