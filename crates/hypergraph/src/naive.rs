//! Naive reference implementations used to cross-validate the optimized
//! algorithms (and as the slow side of the A2/A3 ablations). These favour
//! obviousness over speed; property tests assert agreement with the
//! production implementations on random inputs.

use std::collections::BTreeSet;

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Fixpoint k-core: repeatedly (a) drop non-maximal hyperedges by explicit
/// subset tests (lowest id survives among identical sets), then (b) drop
/// vertices of degree < k, until nothing changes. Returns surviving
/// (vertices, edges) by original id.
pub fn naive_kcore(h: &Hypergraph, k: u32) -> (Vec<VertexId>, Vec<EdgeId>) {
    let mut alive_v: Vec<bool> = vec![true; h.num_vertices()];
    let mut alive_e: Vec<bool> = vec![true; h.num_edges()];

    loop {
        let mut changed = false;

        // Current pin sets restricted to alive vertices.
        let sets: Vec<Option<BTreeSet<u32>>> = h
            .edges()
            .map(|f| {
                if alive_e[f.index()] {
                    Some(
                        h.pins(f)
                            .iter()
                            .filter(|v| alive_v[v.index()])
                            .map(|v| v.0)
                            .collect(),
                    )
                } else {
                    None
                }
            })
            .collect();

        // (a) drop empty and contained edges.
        for f in 0..sets.len() {
            let Some(sf) = &sets[f] else { continue };
            let non_maximal = sf.is_empty()
                || sets.iter().enumerate().any(|(g, sg)| {
                    if g == f {
                        return false;
                    }
                    let Some(sg) = sg else { return false };
                    (sg.len() > sf.len() || (sg.len() == sf.len() && g < f)) && sf.is_subset(sg)
                });
            if non_maximal {
                alive_e[f] = false;
                changed = true;
            }
        }

        // (b) drop low-degree vertices (degree counted over alive edges).
        for v in h.vertices() {
            if !alive_v[v.index()] {
                continue;
            }
            let deg = h.edges_of(v).iter().filter(|f| alive_e[f.index()]).count() as u32;
            if deg < k {
                alive_v[v.index()] = false;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let vs = (0..h.num_vertices())
        .filter(|&v| alive_v[v])
        .map(|v| VertexId(v as u32))
        .collect();
    let es = (0..h.num_edges())
        .filter(|&f| alive_e[f])
        .map(|f| EdgeId(f as u32))
        .collect();
    (vs, es)
}

/// Exhaustive minimum-weight vertex cover by subset enumeration; only for
/// tiny instances (`num_vertices ≤ 20`). Returns `None` when no cover
/// exists (some hyperedge is empty). Ties are broken toward fewer
/// vertices, then lexicographically smallest vertex set.
pub fn exhaustive_min_cover(
    h: &Hypergraph,
    weight: impl Fn(VertexId) -> f64,
) -> Option<Vec<VertexId>> {
    let n = h.num_vertices();
    assert!(n <= 20, "exhaustive cover limited to 20 vertices");
    if h.edges().any(|f| h.edge_degree(f) == 0) {
        return None;
    }

    let mut best: Option<(f64, u32, Vec<VertexId>)> = None;
    for mask in 0u32..(1 << n) {
        let covers_all = h
            .edges()
            .all(|f| h.pins(f).iter().any(|v| mask & (1 << v.0) != 0));
        if !covers_all {
            continue;
        }
        let members: Vec<VertexId> = (0..n as u32)
            .filter(|&v| mask & (1 << v) != 0)
            .map(VertexId)
            .collect();
        let w: f64 = members.iter().map(|&v| weight(v)).sum();
        let count = mask.count_ones();
        let better = match &best {
            None => true,
            Some((bw, bc, bm)) => {
                w < *bw - 1e-12
                    || ((w - *bw).abs() <= 1e-12
                        && (count < *bc || (count == *bc && members < *bm)))
            }
        };
        if better {
            best = Some((w, count, members));
        }
    }
    best.map(|(_, _, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    #[test]
    fn naive_kcore_matches_simple_case() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 3]);
        b.add_edge([1, 2, 4]);
        b.add_edge([0, 2, 5]);
        let h = b.build();
        let (vs, es) = naive_kcore(&h, 2);
        assert_eq!(vs, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(es.len(), 3);
    }

    #[test]
    fn naive_matches_optimized_on_fixed_cases() {
        let cases: Vec<Hypergraph> = vec![
            {
                let mut b = HypergraphBuilder::new(4);
                b.add_edge([0, 1]);
                b.add_edge([1, 2]);
                b.add_edge([2, 3]);
                b.build()
            },
            {
                let mut b = HypergraphBuilder::new(5);
                b.add_edge([0, 1, 2, 3, 4]);
                b.add_edge([0, 1, 2]);
                b.add_edge([0, 1]);
                b.add_edge([3, 4]);
                b.build()
            },
            {
                let mut b = HypergraphBuilder::new(3);
                b.add_edge([0, 1]);
                b.add_edge([0, 1]);
                b.add_edge([1, 2]);
                b.build()
            },
        ];
        for h in &cases {
            for k in 0..4 {
                let (nv, ne) = naive_kcore(h, k);
                let fast = crate::kcore::hypergraph_kcore(h, k);
                assert_eq!(nv, fast.vertices, "k={k}");
                assert_eq!(ne, fast.edges, "k={k}");
            }
        }
    }

    #[test]
    fn exhaustive_cover_finds_optimum() {
        // Star: center 0 in all edges; optimal unweighted cover = {0}.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([0, 2]);
        b.add_edge([0, 3]);
        let h = b.build();
        let best = exhaustive_min_cover(&h, |_| 1.0).unwrap();
        assert_eq!(best, vec![VertexId(0)]);
    }

    #[test]
    fn exhaustive_cover_respects_weights() {
        // Same star but center is very expensive: pick the three leaves.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([0, 2]);
        b.add_edge([0, 3]);
        let h = b.build();
        let best = exhaustive_min_cover(&h, |v| if v.0 == 0 { 10.0 } else { 1.0 }).unwrap();
        assert_eq!(best, vec![VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn exhaustive_cover_none_for_empty_edge() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([]);
        let h = b.build();
        assert!(exhaustive_min_cover(&h, |_| 1.0).is_none());
    }
}
