//! Hypergraph paths, distances, diameter, and average path length.
//!
//! A path in `H` is an alternating sequence of vertices and hyperedges
//! `v_1, f_1, v_2, f_2, …, f_{i-1}, v_i` with each `f_j` containing both
//! `v_j` and `v_{j+1}`, no repeats; its **length is the number of
//! hyperedges** on it. The distance between two vertices is the length of
//! a shortest path, which equals half their distance in the bipartite view
//! `B(H)`. The diameter is the maximum pairwise vertex distance; the
//! paper reports diameter 6 and average path length 2.568 for the yeast
//! hypergraph and reads these as small-world evidence.
//!
//! Every sweep has a `*_with` variant taking an [`hgobs::Deadline`];
//! the plain functions are unbounded wrappers over those.

use std::collections::VecDeque;

use hgobs::{Deadline, DeadlineExceeded};

use crate::hypergraph::{Hypergraph, VertexId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Shortest hypergraph distances (in hyperedges) from `source` to every
/// vertex. Runs a BFS that alternates vertex and hyperedge expansions —
/// equivalent to BFS on `B(H)` but without materializing it. O(|E|).
pub fn hyper_distances(h: &Hypergraph, source: VertexId) -> Vec<u32> {
    match hyper_distances_with(h, source, &Deadline::none()) {
        Ok(dist) => dist,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`hyper_distances`] under a cooperative [`Deadline`], checked every
/// [`hgobs::CHECK_INTERVAL`] settled vertices. On expiry the error's
/// `work_done` is the number of vertices settled before the check fired.
pub fn hyper_distances_with(
    h: &Hypergraph,
    source: VertexId,
    deadline: &Deadline,
) -> Result<Vec<u32>, DeadlineExceeded> {
    let mut tp = deadline.trace().phase("bfs");
    // Upfront check: the amortized tick only fires every CHECK_INTERVAL
    // settled vertices, which a small graph may never reach.
    if deadline.expired() {
        return Err(deadline.exceeded("bfs", 0));
    }
    let mut dist = vec![UNREACHABLE; h.num_vertices()];
    let mut edge_seen = vec![false; h.num_edges()];
    let mut frontier: VecDeque<VertexId> = VecDeque::new();
    let mut ticks = 0u32;
    let mut settled = 0u64;
    dist[source.index()] = 0;
    frontier.push_back(source);
    while let Some(u) = frontier.pop_front() {
        if deadline.tick(&mut ticks) {
            return Err(deadline.exceeded("bfs", settled));
        }
        settled += 1;
        let du = dist[u.index()];
        for &f in h.edges_of(u) {
            if edge_seen[f.index()] {
                continue;
            }
            edge_seen[f.index()] = true;
            for &w in h.pins(f) {
                if dist[w.index()] == UNREACHABLE {
                    dist[w.index()] = du + 1;
                    frontier.push_back(w);
                }
            }
        }
    }
    tp.add_work(settled);
    hgobs::counter!("bfs.sources");
    if hgobs::enabled() {
        record_bfs_shape(&dist);
    }
    Ok(dist)
}

/// Record eccentricity and per-level frontier-size histograms for one BFS.
/// Kept out of line so the common disabled path pays only the `enabled()`
/// check at the call site.
#[cold]
fn record_bfs_shape(dist: &[u32]) {
    let ecc = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0);
    hgobs::hist!("bfs.eccentricity", ecc);
    if ecc == 0 {
        return;
    }
    let mut level_counts = vec![0u64; ecc as usize + 1];
    for &d in dist {
        if d != UNREACHABLE {
            level_counts[d as usize] += 1;
        }
    }
    for &c in &level_counts[1..] {
        hgobs::hist!("bfs.frontier", c);
    }
}

/// Aggregate vertex-pair distance statistics (paper §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperDistanceStats {
    /// Largest finite vertex-pair distance (in hyperedges).
    pub diameter: u32,
    /// Mean finite distance over reachable ordered vertex pairs.
    pub average_path_length: f64,
    /// Number of reachable ordered pairs contributing to the mean.
    pub reachable_pairs: u64,
}

/// Exact statistics from every vertex. Since the batched MS-BFS kernel
/// landed this routes through [`crate::msbfs::msbfs_distance_stats`]
/// (bit-identical results, a fraction of the memory traffic); the
/// per-source sweep survives as [`scalar_hyper_distance_stats`], the
/// oracle the equivalence tests compare against.
pub fn hyper_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    match hyper_distance_stats_with(h, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`hyper_distance_stats`] under a cooperative [`Deadline`]. On expiry
/// the error carries phase `"msbfs"` and counts *batches* of
/// [`crate::msbfs::BATCH`] sources fully completed.
pub fn hyper_distance_stats_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    crate::msbfs::msbfs_distance_stats_with(h, deadline)
}

/// Statistics restricted to BFS sources chosen by the caller (sampling
/// for large hypergraphs; diameter becomes a lower bound). Routed
/// through the batched MS-BFS kernel.
pub fn hyper_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    match hyper_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`hyper_distance_stats_from`] under a cooperative [`Deadline`];
/// deadline contract as in [`hyper_distance_stats_with`].
pub fn hyper_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    crate::msbfs::msbfs_distance_stats_from_with(h, sources, deadline)
}

/// The pre-MS-BFS engine: one scalar BFS per source. Kept as the oracle
/// the batched kernel is tested against, and as the `scalar` engine in
/// `hg bench --kernels`.
pub fn scalar_hyper_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    let sources: Vec<VertexId> = h.vertices().collect();
    scalar_hyper_distance_stats_from(h, &sources)
}

/// [`scalar_hyper_distance_stats`] restricted to caller-chosen sources.
pub fn scalar_hyper_distance_stats_from(
    h: &Hypergraph,
    sources: &[VertexId],
) -> HyperDistanceStats {
    match scalar_hyper_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`scalar_hyper_distance_stats_from`] under a cooperative
/// [`Deadline`], checked every [`hgobs::CHECK_INTERVAL`] settled
/// vertices across the whole sweep. The `bfs.sources` counter reflects
/// only the sources actually completed, on both the success and the
/// expiry path, and the error's `work_done` is that same partial count.
pub fn scalar_hyper_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("bfs.sweep");
    let mut diameter = 0u32;
    let mut total = 0u128;
    let mut pairs = 0u64;
    let mut dist = vec![UNREACHABLE; h.num_vertices()];
    let mut edge_seen = vec![false; h.num_edges()];
    let mut frontier: VecDeque<VertexId> = VecDeque::new();
    let mut ticks = 0u32;
    let mut completed = 0u64;

    let expired = 'sweep: {
        for &s in sources {
            // Per-source boundary check: negligible next to a BFS, and
            // it makes expiry deterministic on graphs too small for the
            // amortized tick to ever fire.
            if deadline.expired() {
                break 'sweep true;
            }
            dist.fill(UNREACHABLE);
            edge_seen.fill(false);
            frontier.clear();
            dist[s.index()] = 0;
            frontier.push_back(s);
            while let Some(u) = frontier.pop_front() {
                if deadline.tick(&mut ticks) {
                    break 'sweep true;
                }
                let du = dist[u.index()];
                for &f in h.edges_of(u) {
                    if edge_seen[f.index()] {
                        continue;
                    }
                    edge_seen[f.index()] = true;
                    for &w in h.pins(f) {
                        if dist[w.index()] == UNREACHABLE {
                            dist[w.index()] = du + 1;
                            frontier.push_back(w);
                        }
                    }
                }
            }
            if hgobs::enabled() {
                record_bfs_shape(&dist);
            }
            for (v, &d) in dist.iter().enumerate() {
                if d != UNREACHABLE && v != s.index() {
                    diameter = diameter.max(d);
                    total += d as u128;
                    pairs += 1;
                }
            }
            completed += 1;
        }
        false
    };
    hgobs::counter!("bfs.sources", completed);
    if expired {
        return Err(deadline.exceeded("bfs.sweep", completed));
    }
    Ok(HyperDistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BipartiteView, HypergraphBuilder};
    use std::time::Duration;

    /// Chain of three overlapping edges: {0,1}, {1,2}, {2,3}.
    fn chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    /// Ring of `n` size-3 edges {i, i+1, i+7} (mod n): connected, large
    /// diameter, cheap to build — a worst-case-ish BFS sweep workload.
    fn big_ring(n: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge([i, (i + 1) % n, (i + 7) % n]);
        }
        b.build()
    }

    #[test]
    fn distances_count_hyperedges() {
        let d = hyper_distances(&chain(), VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_big_edge_gives_distance_one() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2, 3, 4]);
        let h = b.build();
        let d = hyper_distances(&h, VertexId(3));
        assert_eq!(d, vec![1, 1, 1, 0, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        let d = hyper_distances(&h, VertexId(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn stats_on_chain() {
        let s = hyper_distance_stats(&chain());
        assert_eq!(s.diameter, 3);
        // ordered pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 and
        // symmetric: total = 2*(1+2+3+1+2+1) = 20 over 12 pairs.
        assert_eq!(s.reachable_pairs, 12);
        assert!((s.average_path_length - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn matches_half_bipartite_distance() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([3, 4, 5]);
        b.add_edge([0, 5]);
        let h = b.build();
        let bv = BipartiteView::new(&h);
        for s in h.vertices() {
            let hd = hyper_distances(&h, s);
            let bd = graphcore::bfs_distances(&bv.graph, bv.vertex_node(s));
            for v in h.vertices() {
                if hd[v.index()] == UNREACHABLE {
                    assert_eq!(bd[v.index()], graphcore::UNREACHABLE);
                } else {
                    assert_eq!(2 * hd[v.index()], bd[v.index()], "s={s:?} v={v:?}");
                }
            }
        }
    }

    #[test]
    fn sampled_equals_exact_with_all_sources() {
        let h = chain();
        let all: Vec<_> = h.vertices().collect();
        assert_eq!(
            hyper_distance_stats(&h),
            hyper_distance_stats_from(&h, &all)
        );
    }

    #[test]
    fn default_engine_matches_scalar_oracle() {
        for h in [chain(), big_ring(200)] {
            assert_eq!(hyper_distance_stats(&h), scalar_hyper_distance_stats(&h));
        }
    }

    #[test]
    fn empty_hypergraph_stats() {
        let h = HypergraphBuilder::new(0).build();
        let s = hyper_distance_stats(&h);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let h = big_ring(200);
        let none = Deadline::none();
        assert_eq!(
            hyper_distances(&h, VertexId(3)),
            hyper_distances_with(&h, VertexId(3), &none).unwrap()
        );
        assert_eq!(
            hyper_distance_stats(&h),
            hyper_distance_stats_with(&h, &none).unwrap()
        );
    }

    #[test]
    fn pre_cancelled_deadline_stops_default_engine_with_zero_batches() {
        let h = big_ring(3000);
        let dl = Deadline::after(Duration::ZERO);
        assert!(dl.expired());
        let err = hyper_distance_stats_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn pre_cancelled_deadline_stops_scalar_sweep_before_any_source_completes() {
        let h = big_ring(3000);
        let sources: Vec<VertexId> = h.vertices().collect();
        let dl = Deadline::after(Duration::ZERO);
        assert!(dl.expired());
        let err = scalar_hyper_distance_stats_from_with(&h, &sources, &dl).unwrap_err();
        assert_eq!(err.phase, "bfs.sweep");
        // The first tick window (CHECK_INTERVAL settled vertices) spans at
        // most one 3000-vertex source, so no source can have completed.
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn deadline_fires_mid_scalar_sweep_with_partial_source_count() {
        // A full sweep over 3000 sources × 3000 vertices is ~9M settles;
        // walk the budget up from 1ms until one lands mid-sweep. On any
        // machine fast enough to finish the whole sweep inside 1ms the
        // escalation simply ends at Ok and the pre-cancelled test above
        // still covers the expiry path.
        let h = big_ring(3000);
        let sources: Vec<VertexId> = h.vertices().collect();
        for ms in [1u64, 2, 4, 8, 16, 32, 64] {
            match scalar_hyper_distance_stats_from_with(&h, &sources, &Deadline::after_ms(ms)) {
                Err(err) => {
                    assert_eq!(err.phase, "bfs.sweep");
                    assert!(err.work_done < 3000, "{err:?}");
                    assert!(err.elapsed >= Duration::from_millis(ms), "{err:?}");
                    if err.work_done > 0 {
                        return; // observed a genuine mid-sweep stop
                    }
                }
                Ok(_) => return,
            }
        }
    }

    #[test]
    fn single_bfs_deadline_reports_settled_vertices() {
        let h = big_ring(9000);
        let dl = Deadline::after(Duration::ZERO);
        let err = hyper_distances_with(&h, VertexId(0), &dl).unwrap_err();
        assert_eq!(err.phase, "bfs");
        assert!(err.work_done < 9000, "{err:?}");
    }
}
