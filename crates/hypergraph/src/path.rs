//! Hypergraph paths, distances, diameter, and average path length.
//!
//! A path in `H` is an alternating sequence of vertices and hyperedges
//! `v_1, f_1, v_2, f_2, …, f_{i-1}, v_i` with each `f_j` containing both
//! `v_j` and `v_{j+1}`, no repeats; its **length is the number of
//! hyperedges** on it. The distance between two vertices is the length of
//! a shortest path, which equals half their distance in the bipartite view
//! `B(H)`. The diameter is the maximum pairwise vertex distance; the
//! paper reports diameter 6 and average path length 2.568 for the yeast
//! hypergraph and reads these as small-world evidence.

use std::collections::VecDeque;

use crate::hypergraph::{Hypergraph, VertexId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Shortest hypergraph distances (in hyperedges) from `source` to every
/// vertex. Runs a BFS that alternates vertex and hyperedge expansions —
/// equivalent to BFS on `B(H)` but without materializing it. O(|E|).
pub fn hyper_distances(h: &Hypergraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; h.num_vertices()];
    let mut edge_seen = vec![false; h.num_edges()];
    let mut frontier: VecDeque<VertexId> = VecDeque::new();
    dist[source.index()] = 0;
    frontier.push_back(source);
    while let Some(u) = frontier.pop_front() {
        let du = dist[u.index()];
        for &f in h.edges_of(u) {
            if edge_seen[f.index()] {
                continue;
            }
            edge_seen[f.index()] = true;
            for &w in h.pins(f) {
                if dist[w.index()] == UNREACHABLE {
                    dist[w.index()] = du + 1;
                    frontier.push_back(w);
                }
            }
        }
    }
    hgobs::counter!("bfs.sources");
    if hgobs::enabled() {
        record_bfs_shape(&dist);
    }
    dist
}

/// Record eccentricity and per-level frontier-size histograms for one BFS.
/// Kept out of line so the common disabled path pays only the `enabled()`
/// check at the call site.
#[cold]
fn record_bfs_shape(dist: &[u32]) {
    let ecc = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0);
    hgobs::hist!("bfs.eccentricity", ecc);
    if ecc == 0 {
        return;
    }
    let mut level_counts = vec![0u64; ecc as usize + 1];
    for &d in dist {
        if d != UNREACHABLE {
            level_counts[d as usize] += 1;
        }
    }
    for &c in &level_counts[1..] {
        hgobs::hist!("bfs.frontier", c);
    }
}

/// Aggregate vertex-pair distance statistics (paper §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperDistanceStats {
    /// Largest finite vertex-pair distance (in hyperedges).
    pub diameter: u32,
    /// Mean finite distance over reachable ordered vertex pairs.
    pub average_path_length: f64,
    /// Number of reachable ordered pairs contributing to the mean.
    pub reachable_pairs: u64,
}

/// Exact statistics by a BFS from every vertex: O(|V| · |E|).
pub fn hyper_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    let sources: Vec<VertexId> = h.vertices().collect();
    hyper_distance_stats_from(h, &sources)
}

/// Statistics restricted to BFS sources chosen by the caller (sampling
/// for large hypergraphs; diameter becomes a lower bound).
pub fn hyper_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    let _span = hgobs::Span::enter("bfs.sweep");
    hgobs::counter!("bfs.sources", sources.len());
    let mut diameter = 0u32;
    let mut total = 0u128;
    let mut pairs = 0u64;
    let mut dist = vec![UNREACHABLE; h.num_vertices()];
    let mut edge_seen = vec![false; h.num_edges()];
    let mut frontier: VecDeque<VertexId> = VecDeque::new();

    for &s in sources {
        dist.fill(UNREACHABLE);
        edge_seen.fill(false);
        frontier.clear();
        dist[s.index()] = 0;
        frontier.push_back(s);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u.index()];
            for &f in h.edges_of(u) {
                if edge_seen[f.index()] {
                    continue;
                }
                edge_seen[f.index()] = true;
                for &w in h.pins(f) {
                    if dist[w.index()] == UNREACHABLE {
                        dist[w.index()] = du + 1;
                        frontier.push_back(w);
                    }
                }
            }
        }
        if hgobs::enabled() {
            record_bfs_shape(&dist);
        }
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && v != s.index() {
                diameter = diameter.max(d);
                total += d as u128;
                pairs += 1;
            }
        }
    }
    HyperDistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BipartiteView, HypergraphBuilder};

    /// Chain of three overlapping edges: {0,1}, {1,2}, {2,3}.
    fn chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    #[test]
    fn distances_count_hyperedges() {
        let d = hyper_distances(&chain(), VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_big_edge_gives_distance_one() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2, 3, 4]);
        let h = b.build();
        let d = hyper_distances(&h, VertexId(3));
        assert_eq!(d, vec![1, 1, 1, 0, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        let d = hyper_distances(&h, VertexId(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn stats_on_chain() {
        let s = hyper_distance_stats(&chain());
        assert_eq!(s.diameter, 3);
        // ordered pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 and
        // symmetric: total = 2*(1+2+3+1+2+1) = 20 over 12 pairs.
        assert_eq!(s.reachable_pairs, 12);
        assert!((s.average_path_length - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn matches_half_bipartite_distance() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([3, 4, 5]);
        b.add_edge([0, 5]);
        let h = b.build();
        let bv = BipartiteView::new(&h);
        for s in h.vertices() {
            let hd = hyper_distances(&h, s);
            let bd = graphcore::bfs_distances(&bv.graph, bv.vertex_node(s));
            for v in h.vertices() {
                if hd[v.index()] == UNREACHABLE {
                    assert_eq!(bd[v.index()], graphcore::UNREACHABLE);
                } else {
                    assert_eq!(2 * hd[v.index()], bd[v.index()], "s={s:?} v={v:?}");
                }
            }
        }
    }

    #[test]
    fn sampled_equals_exact_with_all_sources() {
        let h = chain();
        let all: Vec<_> = h.vertices().collect();
        assert_eq!(
            hyper_distance_stats(&h),
            hyper_distance_stats_from(&h, &all)
        );
    }

    #[test]
    fn empty_hypergraph_stats() {
        let h = HypergraphBuilder::new(0).build();
        let s = hyper_distance_stats(&h);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
    }
}
