//! Flat CSR storage for pairwise hyperedge overlaps.
//!
//! [`crate::OverlapTable`] keeps one hash map per hyperedge, which is
//! convenient but cache-hostile: the k-core peel spends most of its time
//! probing those maps. [`CsrOverlap`] stores the same symmetric relation
//! as three flat arrays — `offsets` (CSR row starts), `neighbors` (the
//! overlapping hyperedge ids, **sorted** within each row) and `counts`
//! (`|f ∩ g|`) — plus a `mirror` array holding, for every entry `(f, g)`,
//! the flat index of its twin `(g, f)`. A symmetric decrement is then one
//! binary search on the `f` row followed by two O(1) array writes; the
//! peel loop never hashes.
//!
//! Rows are never physically shrunk during peeling. Instead, deleting a
//! hyperedge zeroes the counts of all its entries *and their mirrors*,
//! which establishes the invariant the peeler relies on: a nonzero count
//! implies the neighbor is still alive.

use hgobs::{Deadline, DeadlineExceeded};

use crate::hypergraph::{EdgeId, Hypergraph};

/// Symmetric nonzero pairwise overlaps in CSR form. See the module docs
/// for the layout; construction is `O(Σ_v d(v)²)` pair generation plus a
/// sort, with no hashing anywhere.
#[derive(Clone, Debug)]
pub struct CsrOverlap {
    /// Row starts, `offsets[f]..offsets[f + 1]` indexes edge `f`'s
    /// entries; length `num_edges + 1`.
    pub(crate) offsets: Vec<u32>,
    /// Overlapping hyperedge ids, ascending within each row.
    pub(crate) neighbors: Vec<u32>,
    /// `counts[i] = |f ∩ neighbors[i]|`; zeroed (never removed) when an
    /// endpoint dies during peeling.
    pub(crate) counts: Vec<u32>,
    /// `mirror[i]` is the flat index of the symmetric twin entry.
    pub(crate) mirror: Vec<u32>,
}

impl CsrOverlap {
    /// Build from `h` sequentially. Equivalent to
    /// [`OverlapTable::build`](crate::OverlapTable::build) but hash-free.
    pub fn build(h: &Hypergraph) -> Self {
        match Self::build_with(h, &Deadline::none()) {
            Ok(ov) => ov,
            Err(_) => unreachable!("an unlimited deadline cannot expire"),
        }
    }

    /// [`CsrOverlap::build`] under a cooperative [`Deadline`], checked
    /// every [`hgobs::CHECK_INTERVAL`] vertex-adjacency pairs; the
    /// `overlap.csr.pairs` counter and the error's `work_done` report the
    /// pairs actually generated.
    pub fn build_with(h: &Hypergraph, deadline: &Deadline) -> Result<Self, DeadlineExceeded> {
        let _span = hgobs::Span::enter("overlap.csr.build");
        let mut tp = deadline.trace().phase("overlap.build");
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut generated: u64 = 0;
        let mut ticks = 0u32;
        for v in h.vertices() {
            let adj = h.edges_of(v);
            for (i, &f) in adj.iter().enumerate() {
                for &g in &adj[i + 1..] {
                    if deadline.tick(&mut ticks) {
                        hgobs::counter!("overlap.csr.pairs", generated);
                        return Err(deadline.exceeded("overlap.csr.build", generated));
                    }
                    generated += 1;
                    // Adjacency rows are ascending, so f < g already.
                    pairs.push((f.0, g.0));
                }
            }
        }
        hgobs::counter!("overlap.csr.pairs", generated);
        tp.add_work(generated);
        pairs.sort_unstable();
        // Run-length encode (f, g) repetitions into overlap counts.
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        for &(f, g) in &pairs {
            match triples.last_mut() {
                Some((lf, lg, c)) if *lf == f && *lg == g => *c += 1,
                _ => triples.push((f, g, 1)),
            }
        }
        Ok(Self::from_triples(h.num_edges(), &triples))
    }

    /// Assemble from distinct overlap triples `(f, g, |f ∩ g|)` sorted by
    /// `(f, g)` with `f < g` and positive counts — the format both the
    /// sequential build and `parcore`'s sharded builder produce. Each
    /// triple fills the `(f, g)` and `(g, f)` entries and links them via
    /// `mirror`.
    ///
    /// Rows come out sorted without any per-row sort: for a fixed row `e`,
    /// the mirror entries (from triples `(f, e)` with `f < e`) are
    /// appended in ascending `f` before any forward entry (from triples
    /// `(e, g)` with `g > e`, ascending in `g`), and every mirror neighbor
    /// `f < e` precedes every forward neighbor `g > e`.
    pub fn from_triples(num_edges: usize, triples: &[(u32, u32, u32)]) -> Self {
        debug_assert!(triples
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        debug_assert!(triples.iter().all(|&(f, g, c)| f < g && c > 0));
        let mut offsets = vec![0u32; num_edges + 1];
        for &(f, g, _) in triples {
            offsets[f as usize + 1] += 1;
            offsets[g as usize + 1] += 1;
        }
        for i in 0..num_edges {
            offsets[i + 1] += offsets[i];
        }
        let nnz = offsets[num_edges] as usize;
        let mut neighbors = vec![0u32; nnz];
        let mut counts = vec![0u32; nnz];
        let mut mirror = vec![0u32; nnz];
        let mut cursor: Vec<u32> = offsets[..num_edges].to_vec();
        for &(f, g, c) in triples {
            let i = cursor[f as usize] as usize;
            cursor[f as usize] += 1;
            let j = cursor[g as usize] as usize;
            cursor[g as usize] += 1;
            neighbors[i] = g;
            counts[i] = c;
            mirror[i] = j as u32;
            neighbors[j] = f;
            counts[j] = c;
            mirror[j] = i as u32;
        }
        let ov = CsrOverlap {
            offsets,
            neighbors,
            counts,
            mirror,
        };
        debug_assert!((0..num_edges).all(|f| {
            let (lo, hi) = ov.bounds(f);
            ov.neighbors[lo..hi].windows(2).all(|w| w[0] < w[1])
        }));
        ov
    }

    /// Number of hyperedges (rows).
    pub fn num_edges(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Flat index range of edge `f`'s row.
    #[inline]
    pub(crate) fn bounds(&self, f: usize) -> (usize, usize) {
        (self.offsets[f] as usize, self.offsets[f + 1] as usize)
    }

    /// `|f ∩ g|` (0 when disjoint, identical ids, or a zeroed entry).
    pub fn overlap(&self, f: EdgeId, g: EdgeId) -> u32 {
        if f == g {
            return 0;
        }
        let (lo, hi) = self.bounds(f.index());
        match self.neighbors[lo..hi].binary_search(&g.0) {
            Ok(pos) => self.counts[lo + pos],
            Err(_) => 0,
        }
    }

    /// Degree-2 of hyperedge `f`: number of hyperedges sharing a vertex
    /// with it (as built; entries zeroed during peeling still count
    /// toward the row length).
    pub fn d2_edge(&self, f: EdgeId) -> usize {
        let (lo, hi) = self.bounds(f.index());
        hi - lo
    }

    /// `Δ₂,F`: maximum degree-2 over all hyperedges.
    pub fn max_d2_edge(&self) -> usize {
        (0..self.num_edges())
            .map(|f| {
                let (lo, hi) = self.bounds(f);
                hi - lo
            })
            .max()
            .unwrap_or(0)
    }

    /// Iterate over the hyperedges overlapping `f` (ascending id) with
    /// their current counts, skipping zeroed entries.
    pub fn overlapping(&self, f: EdgeId) -> impl Iterator<Item = (EdgeId, u32)> + '_ {
        let (lo, hi) = self.bounds(f.index());
        (lo..hi).filter_map(move |i| {
            let c = self.counts[i];
            (c > 0).then(|| (EdgeId(self.neighbors[i]), c))
        })
    }

    /// Symmetrically decrement `|f ∩ g|` by one: binary-search `g` in
    /// `f`'s row, then write the twin through `mirror`. Peeling only calls
    /// this for alive pairs sharing the vertex being deleted, so the entry
    /// must exist with a positive count.
    #[inline]
    pub(crate) fn decrement_pair(&mut self, f: usize, g: u32) {
        let (lo, hi) = self.bounds(f);
        let Ok(pos) = self.neighbors[lo..hi].binary_search(&g) else {
            debug_assert!(false, "decrement of absent overlap ({f}, {g})");
            return;
        };
        let i = lo + pos;
        debug_assert!(self.counts[i] > 0, "decrement of zeroed overlap ({f}, {g})");
        let c = self.counts[i] - 1;
        self.counts[i] = c;
        self.counts[self.mirror[i] as usize] = c;
    }

    /// Zero every entry of dead edge `f` and their mirror twins, so that
    /// from now on a nonzero count anywhere implies both endpoints alive.
    pub(crate) fn kill_edge(&mut self, f: usize) {
        let (lo, hi) = self.bounds(f);
        for i in lo..hi {
            if self.counts[i] != 0 {
                self.counts[self.mirror[i] as usize] = 0;
                self.counts[i] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, OverlapTable};

    fn toy() -> Hypergraph {
        // e0={0,1,2}, e1={1,2,3}, e2={3,4}, e3={5}
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3, 4]);
        b.add_edge([5]);
        b.build()
    }

    #[test]
    fn matches_hash_table_on_toy() {
        let h = toy();
        let csr = CsrOverlap::build(&h);
        let hash = OverlapTable::build(&h);
        for f in h.edges() {
            for g in h.edges() {
                assert_eq!(csr.overlap(f, g), hash.overlap(f, g), "({f:?}, {g:?})");
            }
            assert_eq!(csr.d2_edge(f), hash.d2_edge(f), "{f:?}");
        }
        assert_eq!(csr.max_d2_edge(), hash.max_d2_edge());
    }

    #[test]
    fn rows_sorted_and_mirrors_consistent() {
        let h = toy();
        let ov = CsrOverlap::build(&h);
        for f in 0..ov.num_edges() {
            let (lo, hi) = ov.bounds(f);
            assert!(ov.neighbors[lo..hi].windows(2).all(|w| w[0] < w[1]));
            for i in lo..hi {
                let m = ov.mirror[i] as usize;
                assert_eq!(ov.neighbors[m], f as u32);
                assert_eq!(ov.mirror[m] as usize, i);
                assert_eq!(ov.counts[m], ov.counts[i]);
            }
        }
    }

    #[test]
    fn overlapping_iterator_skips_zeroed() {
        let h = toy();
        let mut ov = CsrOverlap::build(&h);
        let from1: Vec<_> = ov.overlapping(EdgeId(1)).collect();
        assert_eq!(from1, vec![(EdgeId(0), 2), (EdgeId(2), 1)]);
        ov.kill_edge(2);
        let from1: Vec<_> = ov.overlapping(EdgeId(1)).collect();
        assert_eq!(from1, vec![(EdgeId(0), 2)]);
        // The twin inside row 2 is zeroed too.
        assert_eq!(ov.overlapping(EdgeId(2)).count(), 0);
    }

    #[test]
    fn decrement_pair_is_symmetric() {
        let h = toy();
        let mut ov = CsrOverlap::build(&h);
        ov.decrement_pair(0, 1);
        assert_eq!(ov.overlap(EdgeId(0), EdgeId(1)), 1);
        assert_eq!(ov.overlap(EdgeId(1), EdgeId(0)), 1);
        ov.decrement_pair(1, 0);
        assert_eq!(ov.overlap(EdgeId(0), EdgeId(1)), 0);
    }

    #[test]
    fn identical_edges_overlap_fully() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1, 2]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        let ov = CsrOverlap::build(&h);
        assert_eq!(ov.overlap(EdgeId(0), EdgeId(1)), 3);
    }

    #[test]
    fn empty_hypergraph() {
        let h = HypergraphBuilder::new(0).build();
        let ov = CsrOverlap::build(&h);
        assert_eq!(ov.num_edges(), 0);
        assert_eq!(ov.max_d2_edge(), 0);
    }

    #[test]
    fn from_triples_round_trips() {
        // Hand-built triples for the toy hypergraph.
        let triples = vec![(0u32, 1u32, 2u32), (1, 2, 1)];
        let ov = CsrOverlap::from_triples(4, &triples);
        assert_eq!(ov.overlap(EdgeId(0), EdgeId(1)), 2);
        assert_eq!(ov.overlap(EdgeId(1), EdgeId(2)), 1);
        assert_eq!(ov.overlap(EdgeId(0), EdgeId(2)), 0);
        assert_eq!(ov.d2_edge(EdgeId(1)), 2);
        assert_eq!(ov.d2_edge(EdgeId(3)), 0);
    }

    #[test]
    fn pre_expired_deadline_reports_build_phase() {
        // The amortized tick only fires past the check interval, so use
        // enough pairwise-overlapping edges to reach it: C(80,2) pairs
        // per shared vertex.
        let dl = Deadline::after(std::time::Duration::ZERO);
        let mut b = HypergraphBuilder::new(2);
        for _ in 0..80 {
            b.add_edge([0, 1]);
        }
        let big = b.build();
        let err = CsrOverlap::build_with(&big, &dl).unwrap_err();
        assert_eq!(err.phase, "overlap.csr.build");
    }
}
