//! Power-law fitting of degree histograms (the paper's Fig. 1).
//!
//! The paper fits `P(d) = c · d^(−γ)` to the protein degree histogram by
//! ordinary least squares on the log–log plot and reports
//! `log c = 3.161`, `γ = 2.528`, `R² = 0.963`. We reproduce exactly that
//! procedure: take every degree `d ≥ 1` with a nonzero frequency, regress
//! `log10 P(d)` on `log10 d`, and report the goodness of fit
//! `R² = 1 − (rᵀr)/(yᵀy)` with `y` in deviations from its mean.

/// Result of a least-squares power-law fit on a log–log histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// `log10 c`, the intercept of the log–log regression.
    pub log10_c: f64,
    /// `γ`, the power-law exponent (the negated slope).
    pub gamma: f64,
    /// Coefficient of determination of the log–log fit.
    pub r_squared: f64,
    /// Number of (degree, frequency) points used.
    pub points: usize,
}

impl PowerLawFit {
    /// Predicted frequency at degree `d` under the fitted law.
    pub fn predict(&self, d: f64) -> f64 {
        10f64.powf(self.log10_c) * d.powf(-self.gamma)
    }
}

/// Fit a power law to a histogram where `hist[d]` is the frequency of
/// degree `d`. Degree 0 and zero-frequency bins are excluded (log of
/// zero). Returns `None` if fewer than two usable points remain, or if
/// all usable degrees are equal (vertical line).
pub fn fit_power_law(hist: &[usize]) -> Option<PowerLawFit> {
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &freq)| freq > 0)
        .map(|(d, &freq)| ((d as f64).log10(), (freq as f64).log10()))
        .collect();
    fit_log_log(&pts)
}

/// Fit on explicit (degree, frequency) pairs; entries with degree < 1 or
/// frequency <= 0 are skipped.
pub fn fit_power_law_points(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(d, p)| d >= 1.0 && p > 0.0)
        .map(|&(d, p)| (d.log10(), p.log10()))
        .collect();
    fit_log_log(&pts)
}

fn fit_log_log(pts: &[(f64, f64)]) -> Option<PowerLawFit> {
    let n = pts.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let mx = sx / nf;
    let my = sy / nf;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    // R² = 1 − Σr² / Σ(y − ȳ)²  (the paper's definition, with y measured
    // in deviations from the mean).
    let ss_res: f64 = pts
        .iter()
        .map(|&(x, y)| {
            let r = y - (intercept + slope * x);
            r * r
        })
        .sum();
    let ss_tot: f64 = pts.iter().map(|&(_, y)| (y - my) * (y - my)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    Some(PowerLawFit {
        log10_c: intercept,
        gamma: -slope,
        r_squared,
        points: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        // P(d) = 1000 d^-2 at d = 1..=10, rounded to integers.
        let hist: Vec<usize> = (0..=10usize)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1000.0 / (d * d) as f64).round() as usize
                }
            })
            .collect();
        let fit = fit_power_law(&hist).unwrap();
        assert!((fit.gamma - 2.0).abs() < 0.05, "gamma = {}", fit.gamma);
        assert!((fit.log10_c - 3.0).abs() < 0.05);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn predict_inverts_fit() {
        let fit = PowerLawFit {
            log10_c: 3.0,
            gamma: 2.0,
            r_squared: 1.0,
            points: 5,
        };
        assert!((fit.predict(1.0) - 1000.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn skips_zero_bins_and_degree_zero() {
        // hist[0] (isolated) and hist[2] = 0 must be ignored.
        let hist = vec![999, 100, 0, 11, 0, 4];
        let fit = fit_power_law(&hist).unwrap();
        assert_eq!(fit.points, 3);
        assert!(fit.gamma > 0.0);
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(fit_power_law(&[5, 10]), None); // only d=1 usable
        assert_eq!(fit_power_law(&[]), None);
        assert_eq!(fit_power_law(&[0, 0, 0]), None);
    }

    #[test]
    fn points_api_matches_histogram_api() {
        let hist = vec![0usize, 100, 25, 11, 6];
        let pts: Vec<(f64, f64)> = (1..=4).map(|d| (d as f64, hist[d] as f64)).collect();
        assert_eq!(fit_power_law(&hist), fit_power_law_points(&pts));
    }

    #[test]
    fn perfectly_flat_histogram_has_gamma_zero() {
        let hist = vec![0usize, 7, 7, 7, 7];
        let fit = fit_power_law(&hist).unwrap();
        assert!(fit.gamma.abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_exponential_fits_worse_than_power_law() {
        // Exponential decay P(d) = 1000 * 0.5^d is convex on log-log; its
        // linear fit R² must be worse than for a true power law.
        let exp_hist: Vec<usize> = (0..=11usize)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1000.0 * 0.5f64.powi(d as i32)).round() as usize
                }
            })
            .collect();
        let pl_hist: Vec<usize> = (0..=11usize)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1000.0 * (d as f64).powf(-2.5)).round().max(1.0) as usize
                }
            })
            .collect();
        let exp_fit = fit_power_law(&exp_hist).unwrap();
        let pl_fit = fit_power_law(&pl_hist).unwrap();
        assert!(pl_fit.r_squared > exp_fit.r_squared);
    }
}
