//! A mutable hypergraph with incremental vertex/edge deletion and edge
//! insertion.
//!
//! The frozen CSR [`crate::Hypergraph`] is right for analysis, but two
//! workflows need mutation: peeling-style algorithms (delete until a
//! fixpoint) and streaming construction (pull-downs arriving one at a
//! time from an ongoing experiment). [`MutableHypergraph`] supports both,
//! with `O(log)` per incidence update (sets are ordered, as in the
//! paper's balanced-tree formulation), and freezes back into a CSR
//! [`crate::Hypergraph`] plus id maps when mutation is done.

use std::collections::BTreeSet;

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Mutable hypergraph: vertices and hyperedges can be deleted (dead ids
/// are never reused), new hyperedges can be appended, and single
/// incidences can be removed.
#[derive(Clone, Debug, Default)]
pub struct MutableHypergraph {
    /// `edges[f] = Some(pins)` while alive; `None` once deleted.
    edges: Vec<Option<BTreeSet<u32>>>,
    /// Alive incident edges per vertex (empty for dead vertices).
    vertex_adj: Vec<BTreeSet<u32>>,
    alive_vertex: Vec<bool>,
    num_alive_vertices: usize,
    num_alive_edges: usize,
    pins: usize,
}

impl MutableHypergraph {
    /// Empty mutable hypergraph with `n` vertices and no hyperedges.
    pub fn new(n: usize) -> Self {
        MutableHypergraph {
            edges: Vec::new(),
            vertex_adj: vec![BTreeSet::new(); n],
            alive_vertex: vec![true; n],
            num_alive_vertices: n,
            num_alive_edges: 0,
            pins: 0,
        }
    }

    /// Thaw a frozen hypergraph.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let mut m = MutableHypergraph::new(h.num_vertices());
        for f in h.edges() {
            m.add_edge(h.pins(f).iter().map(|v| v.0));
        }
        m
    }

    /// Number of alive vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_alive_vertices
    }

    /// Number of alive hyperedges.
    pub fn num_edges(&self) -> usize {
        self.num_alive_edges
    }

    /// Number of alive incidences.
    pub fn num_pins(&self) -> usize {
        self.pins
    }

    /// `true` iff vertex `v` exists and is alive.
    pub fn vertex_alive(&self, v: VertexId) -> bool {
        self.alive_vertex.get(v.index()).copied().unwrap_or(false)
    }

    /// `true` iff hyperedge `f` exists and is alive.
    pub fn edge_alive(&self, f: EdgeId) -> bool {
        matches!(self.edges.get(f.index()), Some(Some(_)))
    }

    /// Degree of an alive vertex (panics on dead/unknown ids).
    pub fn vertex_degree(&self, v: VertexId) -> usize {
        assert!(self.vertex_alive(v), "vertex {v:?} is not alive");
        self.vertex_adj[v.index()].len()
    }

    /// Size of an alive hyperedge (panics on dead/unknown ids).
    pub fn edge_degree(&self, f: EdgeId) -> usize {
        self.pins_of(f).len()
    }

    /// Pins of an alive hyperedge.
    pub fn pins_of(&self, f: EdgeId) -> &BTreeSet<u32> {
        self.edges
            .get(f.index())
            .and_then(|e| e.as_ref())
            .unwrap_or_else(|| panic!("edge {f:?} is not alive"))
    }

    /// Alive edges containing an alive vertex.
    pub fn edges_of(&self, v: VertexId) -> &BTreeSet<u32> {
        assert!(self.vertex_alive(v), "vertex {v:?} is not alive");
        &self.vertex_adj[v.index()]
    }

    /// Add a fresh vertex; returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.vertex_adj.len();
        self.vertex_adj.push(BTreeSet::new());
        self.alive_vertex.push(true);
        self.num_alive_vertices += 1;
        VertexId(id as u32)
    }

    /// Append a hyperedge over alive vertices (duplicates merged);
    /// returns its id.
    ///
    /// # Panics
    /// If any member vertex is dead or out of range.
    pub fn add_edge(&mut self, vertices: impl IntoIterator<Item = u32>) -> EdgeId {
        let id = self.edges.len() as u32;
        let mut set = BTreeSet::new();
        for v in vertices {
            assert!(
                self.vertex_alive(VertexId(v)),
                "vertex {v} is dead or out of range"
            );
            set.insert(v);
        }
        for &v in &set {
            self.vertex_adj[v as usize].insert(id);
        }
        self.pins += set.len();
        self.num_alive_edges += 1;
        self.edges.push(Some(set));
        EdgeId(id)
    }

    /// Delete an alive hyperedge; member vertices stay.
    pub fn delete_edge(&mut self, f: EdgeId) {
        let set = self.edges[f.index()]
            .take()
            .unwrap_or_else(|| panic!("edge {f:?} already deleted"));
        for v in &set {
            self.vertex_adj[*v as usize].remove(&f.0);
        }
        self.pins -= set.len();
        self.num_alive_edges -= 1;
    }

    /// Delete an alive vertex from the hypergraph and from every edge
    /// containing it. Edges emptied by the deletion stay alive (empty) —
    /// deleting them is a policy decision for the caller (the k-core
    /// deletes them as non-maximal, a streaming pipeline might keep
    /// them for provenance).
    pub fn delete_vertex(&mut self, v: VertexId) {
        assert!(self.vertex_alive(v), "vertex {v:?} already deleted");
        let adj = std::mem::take(&mut self.vertex_adj[v.index()]);
        for f in &adj {
            let set = self.edges[*f as usize]
                .as_mut()
                .expect("adjacency points at alive edge");
            set.remove(&v.0);
            self.pins -= 1;
        }
        self.alive_vertex[v.index()] = false;
        self.num_alive_vertices -= 1;
    }

    /// Remove a single incidence: vertex `v` leaves hyperedge `f` (both
    /// must be alive, and `v ∈ f`).
    pub fn remove_pin(&mut self, v: VertexId, f: EdgeId) {
        assert!(self.vertex_alive(v));
        let set = self.edges[f.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("edge {f:?} is not alive"));
        assert!(set.remove(&v.0), "{v:?} is not a member of {f:?}");
        self.vertex_adj[v.index()].remove(&f.0);
        self.pins -= 1;
    }

    /// Iterator over alive vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive_vertex
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(v, _)| VertexId(v as u32))
    }

    /// Iterator over alive hyperedge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(f, _)| EdgeId(f as u32))
    }

    /// Freeze into a compact CSR [`Hypergraph`] over the alive entities.
    ///
    /// Returns `(hypergraph, vertex_map, edge_map)` where `vertex_map[i]`
    /// / `edge_map[j]` give the original ids of the frozen hypergraph's
    /// vertex `i` / edge `j`.
    pub fn freeze(&self) -> (Hypergraph, Vec<VertexId>, Vec<EdgeId>) {
        let vertex_map: Vec<VertexId> = self.vertices().collect();
        let mut new_id = vec![u32::MAX; self.alive_vertex.len()];
        for (i, v) in vertex_map.iter().enumerate() {
            new_id[v.index()] = i as u32;
        }
        let mut b = crate::HypergraphBuilder::new(vertex_map.len());
        let mut edge_map = Vec::with_capacity(self.num_alive_edges);
        for f in self.edges() {
            b.add_edge(self.pins_of(f).iter().map(|&v| new_id[v as usize]));
            edge_map.push(f);
        }
        (b.build(), vertex_map, edge_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> MutableHypergraph {
        let mut m = MutableHypergraph::new(5);
        m.add_edge([0, 1, 2]);
        m.add_edge([2, 3]);
        m.add_edge([3, 4]);
        m
    }

    #[test]
    fn counts_track_mutations() {
        let mut m = toy();
        assert_eq!((m.num_vertices(), m.num_edges(), m.num_pins()), (5, 3, 7));
        m.delete_edge(EdgeId(1));
        assert_eq!((m.num_edges(), m.num_pins()), (2, 5));
        m.delete_vertex(VertexId(0));
        assert_eq!((m.num_vertices(), m.num_pins()), (4, 4));
        assert_eq!(m.edge_degree(EdgeId(0)), 2);
    }

    #[test]
    fn deleting_vertex_updates_edges() {
        let mut m = toy();
        m.delete_vertex(VertexId(2));
        assert_eq!(m.edge_degree(EdgeId(0)), 2);
        assert_eq!(m.edge_degree(EdgeId(1)), 1);
        assert!(!m.vertex_alive(VertexId(2)));
        assert!(m.edge_alive(EdgeId(1)));
    }

    #[test]
    fn emptied_edges_stay_alive() {
        let mut m = MutableHypergraph::new(1);
        let f = m.add_edge([0]);
        m.delete_vertex(VertexId(0));
        assert!(m.edge_alive(f));
        assert_eq!(m.edge_degree(f), 0);
    }

    #[test]
    fn remove_pin_is_surgical() {
        let mut m = toy();
        m.remove_pin(VertexId(2), EdgeId(0));
        assert_eq!(m.edge_degree(EdgeId(0)), 2);
        assert_eq!(m.vertex_degree(VertexId(2)), 1); // still in e1
        assert_eq!(m.num_pins(), 6);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn remove_pin_validates_membership() {
        let mut m = toy();
        m.remove_pin(VertexId(0), EdgeId(1));
    }

    #[test]
    #[should_panic(expected = "already deleted")]
    fn double_delete_edge_panics() {
        let mut m = toy();
        m.delete_edge(EdgeId(0));
        m.delete_edge(EdgeId(0));
    }

    #[test]
    #[should_panic(expected = "dead or out of range")]
    fn add_edge_rejects_dead_vertex() {
        let mut m = toy();
        m.delete_vertex(VertexId(0));
        m.add_edge([0, 1]);
    }

    #[test]
    fn streaming_growth() {
        let mut m = MutableHypergraph::new(0);
        let a = m.add_vertex();
        let b = m.add_vertex();
        let f = m.add_edge([a.0, b.0]);
        assert_eq!(m.num_vertices(), 2);
        assert_eq!(m.edge_degree(f), 2);
        let c = m.add_vertex();
        m.add_edge([b.0, c.0]);
        assert_eq!(m.num_pins(), 4);
    }

    #[test]
    fn freeze_compacts_ids() {
        let mut m = toy();
        m.delete_vertex(VertexId(0));
        m.delete_edge(EdgeId(2));
        let (h, vmap, emap) = m.freeze();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(
            vmap,
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
        );
        assert_eq!(emap, vec![EdgeId(0), EdgeId(1)]);
        crate::validate::check_structure(&h).unwrap();
        // e0 was {0,1,2}, now {1,2} -> frozen pins {0,1} in new ids.
        assert_eq!(h.pins(EdgeId(0)), &[VertexId(0), VertexId(1)]);
    }

    #[test]
    fn thaw_freeze_roundtrip() {
        let mut b = crate::HypergraphBuilder::new(4);
        b.add_edge([0, 1, 3]);
        b.add_edge([1, 2]);
        let h = b.build();
        let m = MutableHypergraph::from_hypergraph(&h);
        let (h2, vmap, emap) = m.freeze();
        assert_eq!(h.num_pins(), h2.num_pins());
        assert_eq!(vmap.len(), 4);
        assert_eq!(emap.len(), 2);
        for f in h.edges() {
            assert_eq!(h.pins(f), h2.pins(f));
        }
    }

    #[test]
    fn manual_peel_matches_kcore_without_reduction() {
        // For a hypergraph with no containment the k-core equals plain
        // degree peeling; replay it on the mutable structure.
        let mut b = crate::HypergraphBuilder::new(6);
        b.add_edge([0, 1, 3]);
        b.add_edge([1, 2, 4]);
        b.add_edge([0, 2, 5]);
        let h = b.build();
        let k = 2;

        let mut m = MutableHypergraph::from_hypergraph(&h);
        loop {
            let doomed: Vec<VertexId> = m.vertices().filter(|&v| m.vertex_degree(v) < k).collect();
            if doomed.is_empty() {
                break;
            }
            for v in doomed {
                m.delete_vertex(v);
            }
            // k-core policy: drop emptied/non-maximal edges; here only
            // emptiness can occur (no containment in this instance).
            let empty: Vec<EdgeId> = m.edges().filter(|&f| m.edge_degree(f) == 0).collect();
            for f in empty {
                m.delete_edge(f);
            }
        }
        let survivors: Vec<VertexId> = m.vertices().collect();
        let core = crate::hypergraph_kcore(&h, k as u32);
        assert_eq!(survivors, core.vertices);
    }
}
