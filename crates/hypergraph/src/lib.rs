//! `hypergraph` — the primary contribution of Ramadan, Tarafdar & Pothen,
//! *A Hypergraph Model for the Yeast Protein Complex Network* (IPPS 2004),
//! as a reusable library.
//!
//! A hypergraph `H = (V, F)` has vertices (proteins) and hyperedges
//! (complexes); a hyperedge is an arbitrary subset of vertices. This crate
//! provides:
//!
//! * the frozen CSR [`Hypergraph`] structure and its [`HypergraphBuilder`];
//! * the bipartite drawing graph `B(H)` ([`bipartite`]) and hypergraph
//!   paths/distances/diameter ([`path`]) where the length of a path is the
//!   *number of hyperedges* on it;
//! * connected components ([`components`]) and degree statistics /
//!   power-law fitting ([`degree`], [`powerlaw`]);
//! * the hypergraph **k-core** ([`kcore`]): the maximal *reduced*
//!   sub-hypergraph in which every vertex lies in at least `k` hyperedges,
//!   with the paper's overlap-counting maximality test;
//! * reduced hypergraphs ([`reduce()`](crate::reduce())) and pairwise overlap tables
//!   ([`overlap`], flat CSR form in [`csr_overlap`]), plus the one-pass
//!   incremental core decomposition ([`decompose()`]) behind `max_core`,
//!   `core_profile` and `core_numbers`;
//! * greedy, dual, and primal-dual **vertex covers** and multicovers
//!   ([`cover`], [`multicover`], [`cover_dual`]) for bait-protein selection;
//! * the lossy graph projections the paper argues against
//!   ([`projections`]): clique expansion, star (bait) expansion, and the
//!   complex intersection graph, with space accounting;
//! * text I/O ([`io`]) and Pajek export of `B(H)` ([`pajek`]).
//!
//! # Quick start
//!
//! ```
//! use hypergraph::{HypergraphBuilder, VertexId};
//!
//! // Three overlapping "complexes" over five "proteins".
//! let mut b = HypergraphBuilder::new(5);
//! b.add_edge([0, 1, 2]);
//! b.add_edge([1, 2, 3]);
//! b.add_edge([2, 3, 4]);
//! let h = b.build();
//!
//! assert_eq!(h.num_vertices(), 5);
//! assert_eq!(h.num_edges(), 3);
//! assert_eq!(h.vertex_degree(VertexId(2)), 3); // protein 2 is in all three
//!
//! // Vertex cover: protein 2 alone covers every complex.
//! let cover = hypergraph::greedy_vertex_cover(&h, |_| 1.0).unwrap();
//! assert_eq!(cover.vertices, vec![VertexId(2)]);
//! ```

pub mod bipartite;
pub mod builder;
pub mod components;
pub mod cover;
pub mod cover_dual;
pub mod csr_overlap;
pub mod decompose;
pub mod degree;
pub mod dual;
pub mod generalized;
pub mod hash;
pub mod hgb;
pub mod hypergraph;
pub mod io;
pub mod kcore;
pub mod msbfs;
pub mod multicover;
pub mod mutable;
pub mod naive;
pub mod overlap;
pub mod pajek;
pub mod path;
pub mod powerlaw;
pub mod projections;
pub mod reduce;
pub mod relabel;
pub mod smallworld;
pub mod storage;
pub mod validate;

pub use bipartite::BipartiteView;
pub use builder::HypergraphBuilder;
pub use components::{hypergraph_components, ComponentSummary, HyperComponents};
pub use cover::{greedy_vertex_cover, is_vertex_cover, CoverError, CoverResult};
pub use cover_dual::{dual_lower_bound, pricing_vertex_cover};
pub use csr_overlap::CsrOverlap;
pub use decompose::{
    csr_kcore, csr_kcore_with, decompose, decompose_from_overlap, decompose_with, Decomposition,
};
pub use degree::{edge_degree_histogram, vertex_degree_histogram};
pub use dual::dual;
pub use generalized::{ks_core, max_ks_core, KsCore};
pub use hgb::{
    open_hgb, write_hgb, write_hgb_file, HgbDataset, HgbError, HgbOpenMode, HgbOpenOptions,
    HgbStreamWriter,
};
pub use hypergraph::{EdgeId, Hypergraph, VertexId};
pub use kcore::{
    core_numbers, core_numbers_per_k, core_numbers_with, core_profile, core_profile_per_k,
    core_profile_with, hypergraph_kcore, hypergraph_kcore_with, max_core, max_core_bsearch,
    max_core_bsearch_with, max_core_linear, max_core_with, KCore,
};
pub use msbfs::{
    msbfs_batch, msbfs_distance_stats, msbfs_distance_stats_from, msbfs_distance_stats_from_with,
    msbfs_distance_stats_with, msbfs_eccentricities, msbfs_eccentricities_with, BatchStats,
    MsBfsScratch, BATCH,
};
pub use multicover::{greedy_multicover, is_multicover};
pub use mutable::MutableHypergraph;
pub use overlap::OverlapTable;
pub use path::{
    hyper_distance_stats, hyper_distance_stats_with, hyper_distances, hyper_distances_with,
    scalar_hyper_distance_stats, scalar_hyper_distance_stats_from,
    scalar_hyper_distance_stats_from_with, HyperDistanceStats,
};
pub use powerlaw::{fit_power_law, PowerLawFit};
pub use projections::{clique_expansion, intersection_graph, star_expansion, SpaceReport};
pub use reduce::{non_maximal_edges, reduce};
pub use relabel::Relabeling;
pub use storage::StorageKind;

pub use smallworld::{
    report_from_distances, small_world_report, small_world_report_sampled,
    small_world_report_sampled_with, small_world_report_with, SmallWorldReport,
};
