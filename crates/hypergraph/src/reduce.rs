//! Reduced hypergraphs: removal of non-maximal hyperedges.
//!
//! A hypergraph is *reduced* when every hyperedge is maximal, i.e. no
//! hyperedge is contained in another. This module provides both the
//! paper's overlap-counting detection (no set comparisons) and, for the
//! A2 ablation and cross-validation, a naive subset-testing detection.
//!
//! Among *identical* hyperedges the lowest id is kept, matching the
//! k-core's tie rule.

use crate::hypergraph::{EdgeId, Hypergraph};
use crate::overlap::OverlapTable;

/// Ids of non-maximal hyperedges, detected via the overlap table:
/// `f` is non-maximal iff it is empty, or `overlap(f, g) == degree(f)`
/// for some `g` with larger degree (or equal degree and smaller id).
///
/// Expected time `O(Σ_v d(v)² + Σ_f d₂(f))`.
pub fn non_maximal_edges(h: &Hypergraph) -> Vec<EdgeId> {
    let ov = OverlapTable::build(h);
    let mut out = Vec::new();
    for f in h.edges() {
        let df = h.edge_degree(f) as u32;
        if df == 0 {
            out.push(f);
            continue;
        }
        let contained = ov.overlapping(f).any(|(g, c)| {
            c == df && {
                let dg = h.edge_degree(g) as u32;
                dg > df || (dg == df && g < f)
            }
        });
        if contained {
            out.push(f);
        }
    }
    out
}

/// Naive O(Σ_f Σ_g min(d(f), d(g))) detection by explicit sorted-subset
/// tests; reference implementation for tests and the A2 ablation.
pub fn non_maximal_edges_naive(h: &Hypergraph) -> Vec<EdgeId> {
    let mut out = Vec::new();
    'outer: for f in h.edges() {
        let pf = h.pins(f);
        if pf.is_empty() {
            out.push(f);
            continue;
        }
        for g in h.edges() {
            if g == f {
                continue;
            }
            let pg = h.pins(g);
            let strictly_larger = pg.len() > pf.len();
            let identical_wins = pg.len() == pf.len() && g < f;
            if (strictly_larger || identical_wins) && is_sorted_subset(pf, pg) {
                out.push(f);
                continue 'outer;
            }
        }
    }
    out
}

/// `true` iff sorted slice `a` is a subset of sorted slice `b`.
fn is_sorted_subset<T: Ord>(a: &[T], b: &[T]) -> bool {
    let mut j = 0;
    for x in a {
        while j < b.len() && b[j] < *x {
            j += 1;
        }
        if j >= b.len() || b[j] != *x {
            return false;
        }
        j += 1;
    }
    true
}

/// The reduced hypergraph: all maximal hyperedges (lowest id kept among
/// identical copies), every vertex retained. Returns the reduced
/// hypergraph and the original ids of surviving hyperedges.
///
/// Note: removing a non-maximal edge cannot make another edge non-maximal
/// (containment in a non-maximal edge implies containment in its maximal
/// superset), so a single detection pass suffices.
pub fn reduce(h: &Hypergraph) -> (Hypergraph, Vec<EdgeId>) {
    let dead = non_maximal_edges(h);
    let mut keep_e = vec![true; h.num_edges()];
    for f in dead {
        keep_e[f.index()] = false;
    }
    let keep_v = vec![true; h.num_vertices()];
    let (sub, _, emap) = h.sub_hypergraph(&keep_v, &keep_e, false);
    (sub, emap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn nested() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2, 3]); // e0 maximal
        b.add_edge([0, 1]); // e1 ⊂ e0
        b.add_edge([2, 3, 4]); // e2 maximal
        b.add_edge([2, 3, 4]); // e3 identical to e2 (higher id dies)
        b.add_edge([]); // e4 empty
        b.build()
    }

    #[test]
    fn detects_containment_duplicates_and_empties() {
        let h = nested();
        let dead = non_maximal_edges(&h);
        assert_eq!(dead, vec![EdgeId(1), EdgeId(3), EdgeId(4)]);
    }

    #[test]
    fn naive_agrees_with_overlap_method() {
        let h = nested();
        assert_eq!(non_maximal_edges(&h), non_maximal_edges_naive(&h));
    }

    #[test]
    fn reduce_produces_reduced_hypergraph() {
        let h = nested();
        let (red, emap) = reduce(&h);
        assert_eq!(emap, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(red.num_edges(), 2);
        assert_eq!(red.num_vertices(), 5);
        assert!(non_maximal_edges(&red).is_empty());
    }

    #[test]
    fn reduce_is_idempotent() {
        let h = nested();
        let (r1, _) = reduce(&h);
        let (r2, emap2) = reduce(&r1);
        assert_eq!(r1.num_edges(), r2.num_edges());
        assert_eq!(emap2.len(), r1.num_edges());
        assert_eq!(r1.num_pins(), r2.num_pins());
    }

    #[test]
    fn already_reduced_untouched() {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        let h = b.build();
        assert!(non_maximal_edges(&h).is_empty());
        let (red, emap) = reduce(&h);
        assert_eq!(red.num_edges(), 3);
        assert_eq!(emap.len(), 3);
    }

    #[test]
    fn sorted_subset_helper() {
        assert!(is_sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_sorted_subset::<u32>(&[], &[1]));
        assert!(is_sorted_subset::<u32>(&[], &[]));
        assert!(!is_sorted_subset(&[1], &[]));
        assert!(is_sorted_subset(&[2, 5, 9], &[1, 2, 3, 5, 8, 9]));
    }

    #[test]
    fn chain_of_containments_single_pass() {
        // e0 ⊂ e1 ⊂ e2: one pass must kill e0 and e1.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0]);
        b.add_edge([0, 1]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        let dead = non_maximal_edges(&h);
        assert_eq!(dead, vec![EdgeId(0), EdgeId(1)]);
        let (red, _) = reduce(&h);
        assert!(non_maximal_edges(&red).is_empty());
    }

    #[test]
    fn three_identical_copies_keep_first() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(non_maximal_edges(&h), vec![EdgeId(1), EdgeId(2)]);
    }
}
