//! Connected components of a hypergraph.
//!
//! Two vertices are connected when a hypergraph path (alternating vertices
//! and hyperedges) joins them; equivalently, when they are connected in the
//! bipartite view `B(H)`. A hyperedge belongs to the component of its
//! member vertices; an *empty* hyperedge forms a component of its own
//! (0 vertices, 1 hyperedge), matching the bipartite-view convention where
//! its node is isolated.

use graphcore::UnionFind;

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Size summary of one connected component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentSummary {
    /// Number of vertices in the component.
    pub num_vertices: usize,
    /// Number of hyperedges in the component.
    pub num_edges: usize,
}

/// Result of the hypergraph connected-components computation.
#[derive(Clone, Debug)]
pub struct HyperComponents {
    /// Component index of each vertex.
    pub vertex_label: Vec<u32>,
    /// Component index of each hyperedge.
    pub edge_label: Vec<u32>,
    /// Per-component sizes.
    pub summary: Vec<ComponentSummary>,
}

impl HyperComponents {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.summary.len()
    }

    /// Index of the component with the most vertices (ties: most edges,
    /// then lowest index). `None` when there are no components.
    pub fn largest(&self) -> Option<usize> {
        (0..self.summary.len()).max_by_key(|&c| {
            (
                self.summary[c].num_vertices,
                self.summary[c].num_edges,
                std::cmp::Reverse(c),
            )
        })
    }

    /// Vertices of component `c`.
    pub fn vertex_members(&self, c: usize) -> Vec<VertexId> {
        self.vertex_label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize == c)
            .map(|(v, _)| VertexId(v as u32))
            .collect()
    }

    /// Hyperedges of component `c`.
    pub fn edge_members(&self, c: usize) -> Vec<EdgeId> {
        self.edge_label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize == c)
            .map(|(f, _)| EdgeId(f as u32))
            .collect()
    }

    /// Extract component `c` as a standalone hypergraph, together with the
    /// original ids of its vertices and edges.
    pub fn extract(&self, h: &Hypergraph, c: usize) -> (Hypergraph, Vec<VertexId>, Vec<EdgeId>) {
        let keep_v: Vec<bool> = self.vertex_label.iter().map(|&l| l as usize == c).collect();
        let keep_e: Vec<bool> = self.edge_label.iter().map(|&l| l as usize == c).collect();
        h.sub_hypergraph(&keep_v, &keep_e, true)
    }
}

/// Connected components via union–find over `|V| + |F|` elements,
/// O(|E| α) time.
pub fn hypergraph_components(h: &Hypergraph) -> HyperComponents {
    let n = h.num_vertices();
    let m = h.num_edges();
    let mut uf = UnionFind::new(n + m);
    for f in h.edges() {
        for &v in h.pins(f) {
            uf.union(n + f.index(), v.index());
        }
    }
    let (labels, count) = uf.labels();

    // Labels from the union-find are dense over V+F jointly, but some may
    // belong only to... every label is used by at least one element, so the
    // count is the component count directly.
    let vertex_label = labels[..n].to_vec();
    let edge_label = labels[n..].to_vec();
    let mut summary = vec![
        ComponentSummary {
            num_vertices: 0,
            num_edges: 0
        };
        count
    ];
    for &l in &vertex_label {
        summary[l as usize].num_vertices += 1;
    }
    for &l in &edge_label {
        summary[l as usize].num_edges += 1;
    }
    HyperComponents {
        vertex_label,
        edge_label,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    #[test]
    fn two_components_plus_isolated_vertex() {
        // {0,1,2} via two edges; {3,4} via one; vertex 5 isolated.
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([3, 4]);
        let h = b.build();
        let cc = hypergraph_components(&h);
        assert_eq!(cc.count(), 3);
        let big = cc.largest().unwrap();
        assert_eq!(
            cc.summary[big],
            ComponentSummary {
                num_vertices: 3,
                num_edges: 2
            }
        );
        assert_eq!(
            cc.vertex_members(big),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(cc.edge_members(big), vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn empty_edge_is_own_component() {
        let mut b = HypergraphBuilder::new(1);
        b.add_edge([]);
        b.add_edge([0]);
        let h = b.build();
        let cc = hypergraph_components(&h);
        assert_eq!(cc.count(), 2);
        let sizes: Vec<_> = cc
            .summary
            .iter()
            .map(|s| (s.num_vertices, s.num_edges))
            .collect();
        assert!(sizes.contains(&(0, 1)));
        assert!(sizes.contains(&(1, 1)));
    }

    #[test]
    fn extract_roundtrip() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([3, 4]);
        let h = b.build();
        let cc = hypergraph_components(&h);
        let big = cc.largest().unwrap();
        let (sub, vmap, emap) = cc.extract(&h, big);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(vmap, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(emap, vec![EdgeId(0)]);
        assert_eq!(sub.edge_degree(EdgeId(0)), 3);
    }

    #[test]
    fn shared_vertex_merges_components() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1]);
        b.add_edge([2, 3]);
        b.add_edge([1, 2]); // bridges the two
        b.add_edge([4]);
        let h = b.build();
        let cc = hypergraph_components(&h);
        assert_eq!(cc.count(), 2);
        let big = cc.largest().unwrap();
        assert_eq!(cc.summary[big].num_vertices, 4);
        assert_eq!(cc.summary[big].num_edges, 3);
    }

    #[test]
    fn matches_bipartite_components() {
        let mut b = HypergraphBuilder::new(7);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([4, 5]);
        let h = b.build();
        let cc = hypergraph_components(&h);
        let bv = crate::BipartiteView::new(&h);
        let gcc = graphcore::connected_components(&bv.graph);
        // Same number of components once isolated B(H) nodes are counted:
        // vertex 6 is isolated in both views.
        assert_eq!(cc.count(), gcc.count);
        // Labels agree as partitions on the vertex side.
        for v in h.vertices() {
            for w in h.vertices() {
                let same_h = cc.vertex_label[v.index()] == cc.vertex_label[w.index()];
                let same_b = gcc.label[v.index()] == gcc.label[w.index()];
                assert_eq!(same_h, same_b);
            }
        }
    }
}
