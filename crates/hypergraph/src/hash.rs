//! Deterministic hashing for the overlap tables.
//!
//! `std`'s default hasher is randomly seeded per process, so `HashMap`
//! iteration order — and with it the short-circuit point of the k-core
//! maximality scan — changes from run to run. That leaves results
//! correct but makes work metrics (e.g. `kcore.overlap_probes`)
//! nondeterministic. FNV-1a is unseeded, so two runs over the same
//! input probe in the same order and report identical counts.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// A `HashMap` with deterministic (unseeded) hashing and therefore
/// deterministic iteration order for a given key set.
pub type DetMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<Fnv1a>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: DetMap<u32, u32> = DetMap::default();
            for k in [7u32, 3, 99, 12, 0, 41] {
                m.insert(k, k * 2);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fnv_known_vector() {
        let mut h = Fnv1a::default();
        h.write(b"a");
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
