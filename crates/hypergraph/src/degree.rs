//! Degree distributions of vertices and hyperedges.

use crate::hypergraph::Hypergraph;

/// Histogram of vertex degrees: `hist[d]` = number of vertices belonging
/// to exactly `d` hyperedges (the x-axis of the paper's Fig. 1).
pub fn vertex_degree_histogram(h: &Hypergraph) -> Vec<usize> {
    let mut hist = vec![0usize; h.max_vertex_degree() + 1];
    for v in h.vertices() {
        hist[h.vertex_degree(v)] += 1;
    }
    hist
}

/// Histogram of hyperedge degrees (complex sizes): `hist[d]` = number of
/// hyperedges containing exactly `d` vertices.
pub fn edge_degree_histogram(h: &Hypergraph) -> Vec<usize> {
    let mut hist = vec![0usize; h.max_edge_degree() + 1];
    for f in h.edges() {
        hist[h.edge_degree(f)] += 1;
    }
    hist
}

/// Vertex degree sequence (one entry per vertex, in id order).
pub fn vertex_degree_sequence(h: &Hypergraph) -> Vec<usize> {
    h.vertices().map(|v| h.vertex_degree(v)).collect()
}

/// Hyperedge degree sequence (one entry per edge, in id order).
pub fn edge_degree_sequence(h: &Hypergraph) -> Vec<usize> {
    h.edges().map(|f| h.edge_degree(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2]);
        b.add_edge([2]);
        b.build()
    }

    #[test]
    fn vertex_histogram() {
        // degrees: v0=1 v1=2 v2=3 v3=0
        assert_eq!(vertex_degree_histogram(&toy()), vec![1, 1, 1, 1]);
    }

    #[test]
    fn edge_histogram() {
        // sizes: 3, 2, 1
        assert_eq!(edge_degree_histogram(&toy()), vec![0, 1, 1, 1]);
    }

    #[test]
    fn sequences() {
        assert_eq!(vertex_degree_sequence(&toy()), vec![1, 2, 3, 0]);
        assert_eq!(edge_degree_sequence(&toy()), vec![3, 2, 1]);
    }

    #[test]
    fn histogram_sums_to_counts() {
        let h = toy();
        assert_eq!(
            vertex_degree_histogram(&h).iter().sum::<usize>(),
            h.num_vertices()
        );
        assert_eq!(
            edge_degree_histogram(&h).iter().sum::<usize>(),
            h.num_edges()
        );
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        assert_eq!(vertex_degree_histogram(&h), vec![0]);
        assert_eq!(edge_degree_histogram(&h), vec![0]);
    }
}
