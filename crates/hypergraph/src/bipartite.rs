//! The bipartite drawing graph `B(H)` of a hypergraph.
//!
//! `B(H) = (X, Y, E)` has one node per hypergraph vertex (the set `X`) and
//! one node per hyperedge (the set `Y`); an edge joins `v ∈ X` to `f ∈ Y`
//! iff `v` belongs to `f`. The paper uses `B(H)` both to draw the
//! hypergraph (Fig. 3, via Pajek) and to define degree-2 quantities
//! ("reachable by a path of length two in `B(H)`").

use graphcore::{Graph, GraphBuilder, NodeId};

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// A materialized bipartite view of a hypergraph.
///
/// Node layout: hypergraph vertex `v` is node `v.0`; hyperedge `f` is node
/// `num_vertices + f.0`.
#[derive(Clone, Debug)]
pub struct BipartiteView {
    /// The bipartite graph itself.
    pub graph: Graph,
    /// Number of hypergraph vertices (size of side `X`).
    pub num_vertices: usize,
    /// Number of hyperedges (size of side `Y`).
    pub num_edges: usize,
}

impl BipartiteView {
    /// Build `B(H)`.
    pub fn new(h: &Hypergraph) -> Self {
        let n = h.num_vertices();
        let m = h.num_edges();
        let mut b = GraphBuilder::new(n + m);
        b.reserve(h.num_pins());
        for f in h.edges() {
            let fnode = NodeId((n + f.index()) as u32);
            for &v in h.pins(f) {
                b.add_edge(NodeId(v.0), fnode);
            }
        }
        BipartiteView {
            graph: b.build(),
            num_vertices: n,
            num_edges: m,
        }
    }

    /// Bipartite node for hypergraph vertex `v`.
    #[inline]
    pub fn vertex_node(&self, v: VertexId) -> NodeId {
        NodeId(v.0)
    }

    /// Bipartite node for hyperedge `f`.
    #[inline]
    pub fn edge_node(&self, f: EdgeId) -> NodeId {
        NodeId((self.num_vertices + f.index()) as u32)
    }

    /// Inverse mapping: which hypergraph entity a bipartite node stands for.
    #[inline]
    pub fn classify(&self, u: NodeId) -> BipartiteNode {
        if (u.index()) < self.num_vertices {
            BipartiteNode::Vertex(VertexId(u.0))
        } else {
            BipartiteNode::Edge(EdgeId((u.index() - self.num_vertices) as u32))
        }
    }
}

/// What a node of `B(H)` represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BipartiteNode {
    /// A hypergraph vertex (protein).
    Vertex(VertexId),
    /// A hyperedge (complex).
    Edge(EdgeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2, 3]);
        b.build()
    }

    #[test]
    fn structure() {
        let h = toy();
        let bv = BipartiteView::new(&h);
        assert_eq!(bv.graph.num_nodes(), 6);
        assert_eq!(bv.graph.num_edges(), h.num_pins());
        // v1 is in both edges.
        let v1 = bv.vertex_node(VertexId(1));
        assert_eq!(bv.graph.degree(v1), 2);
        // e1 has three pins.
        let e1 = bv.edge_node(EdgeId(1));
        assert_eq!(bv.graph.degree(e1), 3);
        assert!(bv.graph.has_edge(v1, e1));
    }

    #[test]
    fn is_bipartite_by_construction() {
        let h = toy();
        let bv = BipartiteView::new(&h);
        for (a, b) in bv.graph.edges() {
            let ca = matches!(bv.classify(a), BipartiteNode::Vertex(_));
            let cb = matches!(bv.classify(b), BipartiteNode::Vertex(_));
            assert_ne!(ca, cb, "edge within one side of the bipartition");
        }
    }

    #[test]
    fn classify_roundtrip() {
        let h = toy();
        let bv = BipartiteView::new(&h);
        assert_eq!(
            bv.classify(bv.vertex_node(VertexId(3))),
            BipartiteNode::Vertex(VertexId(3))
        );
        assert_eq!(
            bv.classify(bv.edge_node(EdgeId(0))),
            BipartiteNode::Edge(EdgeId(0))
        );
    }

    #[test]
    fn empty_hypergraph_view() {
        let h = HypergraphBuilder::new(0).build();
        let bv = BipartiteView::new(&h);
        assert_eq!(bv.graph.num_nodes(), 0);
    }
}
