//! Frozen CSR representation of a hypergraph.

use std::fmt;

use crate::storage::{Storage, StorageKind};

/// Identifier of a vertex (a protein in the paper's application), a dense
/// index in `0..num_vertices`.
///
/// `repr(transparent)` over `u32`: id slices can be served directly out
/// of a memory-mapped `.hgb` section without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of a hyperedge (a protein complex), a dense index in
/// `0..num_edges`. `repr(transparent)` over `u32` like [`VertexId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hypergraph `H = (V, F)` in frozen dual-CSR form.
///
/// Two compressed-sparse-row structures are kept in sync:
///
/// * **pin lists**: for each hyperedge `f`, the sorted vertex set `pins(f)`;
/// * **adjacency lists**: for each vertex `v`, the sorted set `edges_of(v)`
///   of hyperedges containing it.
///
/// In the paper's notation, `|E|` — the total number of (vertex, hyperedge)
/// incidences, i.e. the space needed to represent the hypergraph — is
/// [`Hypergraph::num_pins`].
///
/// Within a hyperedge each vertex appears at most once (the builder
/// deduplicates); identical hyperedges are allowed (the *reduced*
/// hypergraph computation in [`crate::reduce()`] removes them).
/// The CSR arrays live behind a `Storage`: owned `Vec`s for anything
/// built in-process, or slices into a read-only memory-mapped `.hgb`
/// file ([`crate::hgb::open_hgb`]) — every kernel sees the same slice
/// API either way. [`Hypergraph::storage_kind`] reports which backing
/// is active.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    storage: Storage,
}

impl Hypergraph {
    /// Assemble from pre-validated CSR parts (crate-internal; use
    /// [`crate::HypergraphBuilder`]).
    pub(crate) fn from_parts(
        edge_offsets: Vec<u32>,
        pin_list: Vec<VertexId>,
        vertex_offsets: Vec<u32>,
        adj_list: Vec<EdgeId>,
    ) -> Self {
        debug_assert_eq!(pin_list.len(), adj_list.len());
        Hypergraph {
            storage: Storage::Owned {
                edge_offsets,
                pin_list,
                vertex_offsets,
                adj_list,
            },
        }
    }

    /// Wrap an already-validated storage backing (crate-internal; used
    /// by the `.hgb` reader for the mmap path).
    pub(crate) fn from_storage(storage: Storage) -> Self {
        Hypergraph { storage }
    }

    /// The four CSR arrays, for serializers (crate-internal).
    pub(crate) fn csr_slices(&self) -> (&[u32], &[VertexId], &[u32], &[EdgeId]) {
        (
            self.storage.edge_offsets(),
            self.storage.pin_list(),
            self.storage.vertex_offsets(),
            self.storage.adj_list(),
        )
    }

    /// Which backing the CSR lives in: [`StorageKind::Owned`] heap
    /// `Vec`s or a [`StorageKind::Mapped`] read-only `.hgb` mmap.
    pub fn storage_kind(&self) -> StorageKind {
        self.storage.kind()
    }

    /// Process-resident bytes attributable to this hypergraph: heap
    /// bytes when owned; the mapped file length when mmap'd (an upper
    /// bound — pages fault in lazily and can be evicted by the OS).
    pub fn resident_bytes(&self) -> usize {
        self.storage.resident_bytes()
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.storage.vertex_offsets().len() - 1
    }

    /// Number of hyperedges `|F|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.storage.edge_offsets().len() - 1
    }

    /// Total number of incidences `|E| = Σ_v d(v) = Σ_f d(f)` — the
    /// paper's measure of the space needed to represent `H`.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.storage.pin_list().len()
    }

    /// `true` if the hypergraph has no vertices and no hyperedges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0 && self.num_edges() == 0
    }

    /// Sorted member vertices of hyperedge `f`.
    #[inline]
    pub fn pins(&self, f: EdgeId) -> &[VertexId] {
        let offsets = self.storage.edge_offsets();
        let lo = offsets[f.index()] as usize;
        let hi = offsets[f.index() + 1] as usize;
        &self.storage.pin_list()[lo..hi]
    }

    /// Sorted hyperedges containing vertex `v`.
    #[inline]
    pub fn edges_of(&self, v: VertexId) -> &[EdgeId] {
        let offsets = self.storage.vertex_offsets();
        let lo = offsets[v.index()] as usize;
        let hi = offsets[v.index() + 1] as usize;
        &self.storage.adj_list()[lo..hi]
    }

    /// Degree of vertex `v`: the number of hyperedges it belongs to.
    #[inline]
    pub fn vertex_degree(&self, v: VertexId) -> usize {
        self.edges_of(v).len()
    }

    /// Degree (cardinality) of hyperedge `f`: the number of vertices in it.
    #[inline]
    pub fn edge_degree(&self, f: EdgeId) -> usize {
        self.pins(f).len()
    }

    /// `true` iff vertex `v` belongs to hyperedge `f` (binary search).
    pub fn contains(&self, f: EdgeId, v: VertexId) -> bool {
        self.pins(f).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all hyperedge ids.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Maximum vertex degree `Δ_V` (0 if there are no vertices).
    pub fn max_vertex_degree(&self) -> usize {
        self.vertices()
            .map(|v| self.vertex_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Maximum hyperedge degree `Δ_F` (0 if there are no hyperedges).
    pub fn max_edge_degree(&self) -> usize {
        self.edges().map(|f| self.edge_degree(f)).max().unwrap_or(0)
    }

    /// A vertex of maximum degree, if any vertex exists.
    pub fn argmax_vertex_degree(&self) -> Option<VertexId> {
        self.vertices()
            .max_by_key(|&v| (self.vertex_degree(v), std::cmp::Reverse(v.0)))
    }

    /// Bytes of heap storage used by the four CSR arrays — the paper's
    /// "space proportional to the sum of the numbers of proteins" claim,
    /// made concrete. Counting both directions of the dual CSR.
    pub fn storage_bytes(&self) -> usize {
        (self.storage.edge_offsets().len() + self.storage.vertex_offsets().len())
            * std::mem::size_of::<u32>()
            + std::mem::size_of_val(self.storage.pin_list())
            + std::mem::size_of_val(self.storage.adj_list())
    }

    /// Extract the sub-hypergraph induced by keep-flags over vertices and
    /// edges: each kept hyperedge is restricted to its kept vertices.
    ///
    /// Returns the sub-hypergraph plus the original ids of its vertices and
    /// edges (`vertex_map[i]` = original id of new vertex `i`, similarly
    /// `edge_map`). Kept hyperedges that become empty are preserved as
    /// empty hyperedges only if `keep_empty` is true; otherwise dropped.
    pub fn sub_hypergraph(
        &self,
        keep_vertex: &[bool],
        keep_edge: &[bool],
        keep_empty: bool,
    ) -> (Hypergraph, Vec<VertexId>, Vec<EdgeId>) {
        assert_eq!(keep_vertex.len(), self.num_vertices());
        assert_eq!(keep_edge.len(), self.num_edges());

        let mut vertex_map = Vec::new();
        let mut new_vid = vec![u32::MAX; self.num_vertices()];
        for v in self.vertices() {
            if keep_vertex[v.index()] {
                new_vid[v.index()] = vertex_map.len() as u32;
                vertex_map.push(v);
            }
        }

        let mut builder = crate::HypergraphBuilder::new(vertex_map.len());
        let mut edge_map = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for f in self.edges() {
            if !keep_edge[f.index()] {
                continue;
            }
            scratch.clear();
            scratch.extend(
                self.pins(f)
                    .iter()
                    .filter(|v| keep_vertex[v.index()])
                    .map(|v| new_vid[v.index()]),
            );
            if scratch.is_empty() && !keep_empty {
                continue;
            }
            builder.add_edge(scratch.iter().copied());
            edge_map.push(f);
        }
        (builder.build(), vertex_map, edge_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // e0 = {0,1,2}, e1 = {1,2,3}, e2 = {4}
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([4]);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let h = toy();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_pins(), 7);
        assert!(!h.is_empty());
    }

    #[test]
    fn degrees() {
        let h = toy();
        assert_eq!(h.vertex_degree(VertexId(1)), 2);
        assert_eq!(h.vertex_degree(VertexId(0)), 1);
        assert_eq!(h.edge_degree(EdgeId(0)), 3);
        assert_eq!(h.edge_degree(EdgeId(2)), 1);
        assert_eq!(h.max_vertex_degree(), 2);
        assert_eq!(h.max_edge_degree(), 3);
    }

    #[test]
    fn pins_and_adjacency_sorted_and_consistent() {
        let h = toy();
        assert_eq!(h.pins(EdgeId(1)), &[VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(h.edges_of(VertexId(2)), &[EdgeId(0), EdgeId(1)]);
        for f in h.edges() {
            for &v in h.pins(f) {
                assert!(h.edges_of(v).contains(&f));
            }
        }
        for v in h.vertices() {
            for &f in h.edges_of(v) {
                assert!(h.contains(f, v));
            }
        }
    }

    #[test]
    fn contains_checks() {
        let h = toy();
        assert!(h.contains(EdgeId(0), VertexId(2)));
        assert!(!h.contains(EdgeId(0), VertexId(3)));
    }

    #[test]
    fn argmax_vertex_degree_prefers_lowest_id_on_tie() {
        let h = toy();
        // vertices 1 and 2 both have degree 2; tie broken to lowest id.
        assert_eq!(h.argmax_vertex_degree(), Some(VertexId(1)));
    }

    #[test]
    fn empty_hypergraph() {
        let h = HypergraphBuilder::new(0).build();
        assert!(h.is_empty());
        assert_eq!(h.max_vertex_degree(), 0);
        assert_eq!(h.max_edge_degree(), 0);
        assert_eq!(h.argmax_vertex_degree(), None);
    }

    #[test]
    fn sub_hypergraph_restricts() {
        let h = toy();
        // Keep vertices {1,2,3} and edges {e0,e1}: e0 -> {1,2}, e1 -> {1,2,3}.
        let keep_v = [false, true, true, true, false];
        let keep_e = [true, true, false];
        let (sub, vmap, emap) = h.sub_hypergraph(&keep_v, &keep_e, false);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(vmap, vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(emap, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(sub.edge_degree(EdgeId(0)), 2);
        assert_eq!(sub.edge_degree(EdgeId(1)), 3);
    }

    #[test]
    fn sub_hypergraph_drops_or_keeps_empty_edges() {
        let h = toy();
        let keep_v = [true, true, true, true, false]; // drop vertex 4
        let keep_e = [true, true, true];
        let (sub, _, emap) = h.sub_hypergraph(&keep_v, &keep_e, false);
        assert_eq!(sub.num_edges(), 2); // e2 became empty and was dropped
        assert_eq!(emap, vec![EdgeId(0), EdgeId(1)]);

        let (sub, _, emap) = h.sub_hypergraph(&keep_v, &keep_e, true);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.edge_degree(EdgeId(2)), 0);
        assert_eq!(emap.len(), 3);
    }

    #[test]
    fn storage_is_linear_in_pins() {
        let h = toy();
        // (4 + 6) offsets * 4 bytes + 7 pins * 4 + 7 adj * 4
        assert_eq!(h.storage_bytes(), 10 * 4 + 7 * 4 + 7 * 4);
    }
}
