//! Batched multi-source BFS (MS-BFS) over the alternating vertex /
//! hyperedge expansion.
//!
//! The all-pairs sweeps behind the paper's diameter-6 / APL-2.568 claim
//! run one BFS per source, so every source pays the full CSR scan on its
//! own. MS-BFS batches up to [`BATCH`] sources into one traversal: each
//! vertex and each hyperedge carries a `u64` "seen" mask (bit `i` set
//! once source `i` has reached it) and a frontier mask for the current
//! level. One pass over the CSR arrays then advances all 64 frontiers at
//! once — the adjacency and pin lists are streamed once per *batch*
//! instead of once per *source*, cutting memory traffic by up to 64× on
//! exactly the kernels hgserve exposes under deadlines.
//!
//! Distances are never materialized as an n×n matrix: when a vertex is
//! newly reached at level `d` by `c` sources, the running
//! [`HyperDistanceStats`] accumulators absorb `c` pairs of distance `d`
//! on the spot. The per-source eccentricity variant
//! ([`msbfs_eccentricities`]) folds the same level information into a
//! max-per-source-bit instead.
//!
//! Results are bit-identical to the scalar oracle
//! ([`crate::path::scalar_hyper_distance_stats_from_with`]): both count
//! BFS levels of the bipartite expansion, and the accumulators are
//! integers, so even the `f64` average is reproduced exactly.
//!
//! Every sweep has a `*_with` variant taking an [`hgobs::Deadline`] with
//! the same amortized-tick contract as the scalar sweeps; expiry surfaces
//! phase `"msbfs"` and the number of *batches* fully completed.

use hgobs::{Deadline, DeadlineExceeded};

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::path::HyperDistanceStats;

/// Sources advanced per traversal: the width of the `u64` masks. One
/// machine word per vertex/hyperedge keeps the scratch at 24 bytes per
/// vertex and 16 per hyperedge — small enough to stay cache-resident for
/// the Cellzome-scale inputs while amortizing the CSR scan 64 ways.
pub const BATCH: usize = 64;

/// Reusable per-traversal mask buffers. One allocation per worker, reset
/// in O(|V| + |F|) per batch — the same cost the scalar sweep pays per
/// *source*.
pub struct MsBfsScratch {
    /// Per-vertex: bit `i` set once source `i` has reached the vertex.
    seen: Vec<u64>,
    /// Per-vertex: sources whose frontier contains the vertex this level.
    frontier: Vec<u64>,
    /// Per-vertex: sources that newly reach the vertex at the next level.
    next: Vec<u64>,
    /// Per-hyperedge: sources that have already traversed the hyperedge.
    edge_seen: Vec<u64>,
    /// Per-hyperedge: sources whose frontier entered the hyperedge this
    /// level. Cleared as the hyperedge is expanded.
    edge_frontier: Vec<u64>,
}

impl MsBfsScratch {
    /// Allocate scratch sized for `h`.
    pub fn new(h: &Hypergraph) -> Self {
        MsBfsScratch {
            seen: vec![0; h.num_vertices()],
            frontier: vec![0; h.num_vertices()],
            next: vec![0; h.num_vertices()],
            edge_seen: vec![0; h.num_edges()],
            edge_frontier: vec![0; h.num_edges()],
        }
    }

    /// Bytes held by the mask buffers (three `u64`s per vertex, two per
    /// hyperedge); what one parallel worker costs to equip.
    pub fn bytes(&self) -> usize {
        (self.seen.len() + self.frontier.len() + self.next.len())
            .saturating_add(self.edge_seen.len() + self.edge_frontier.len())
            * std::mem::size_of::<u64>()
    }

    fn reset(&mut self) {
        self.seen.fill(0);
        self.frontier.fill(0);
        // `next` and `edge_frontier` are restored to all-zero by the
        // traversal itself (promote pass / expansion pass), but a fresh
        // scratch must not rely on a previous batch having completed.
        self.next.fill(0);
        self.edge_seen.fill(0);
        self.edge_frontier.fill(0);
    }
}

/// Distance-statistic partials of one batch, mergeable across batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Largest finite distance discovered by this batch.
    pub diameter: u32,
    /// Sum of finite distances over the batch's (source, vertex) pairs.
    pub total: u128,
    /// Number of reachable ordered pairs discovered by this batch.
    pub pairs: u64,
}

impl BatchStats {
    /// Fold another batch's partials into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.diameter = self.diameter.max(other.diameter);
        self.total += other.total;
        self.pairs += other.pairs;
    }
}

/// Advance one batch of at most [`BATCH`] sources to fixpoint,
/// accumulating pair statistics (and, when `ecc` is given, per-source
/// eccentricities into `ecc[i]` for batch slot `i`). Returns `None` when
/// the deadline fires mid-traversal; `ticks` is the caller's amortized
/// tick counter, shared across batches so the clock is read every
/// [`hgobs::CHECK_INTERVAL`] scanned vertices regardless of batch size.
///
/// # Panics
/// If `batch.len() > BATCH` or `ecc` is shorter than `batch`.
pub fn msbfs_batch(
    h: &Hypergraph,
    batch: &[VertexId],
    scratch: &mut MsBfsScratch,
    deadline: &Deadline,
    ticks: &mut u32,
    mut ecc: Option<&mut [u32]>,
) -> Option<BatchStats> {
    assert!(batch.len() <= BATCH, "batch wider than the u64 masks");
    scratch.reset();
    for (i, &s) in batch.iter().enumerate() {
        let bit = 1u64 << i;
        scratch.seen[s.index()] |= bit;
        scratch.frontier[s.index()] |= bit;
    }
    if let Some(e) = ecc.as_deref_mut() {
        e[..batch.len()].fill(0);
    }

    let n = h.num_vertices();
    let mut stats = BatchStats::default();
    let mut level = 0u32;
    let mut active = !batch.is_empty();
    while active {
        level += 1;
        // Vertex → hyperedge expansion: every frontier source enters each
        // incident hyperedge it has not traversed yet.
        for v in 0..n {
            if deadline.tick(ticks) {
                return None;
            }
            let fv = scratch.frontier[v];
            if fv == 0 {
                continue;
            }
            for &f in h.edges_of(VertexId(v as u32)) {
                let add = fv & !scratch.edge_seen[f.index()];
                if add != 0 {
                    scratch.edge_seen[f.index()] |= add;
                    scratch.edge_frontier[f.index()] |= add;
                }
            }
        }
        // Hyperedge → vertex expansion: entered hyperedges hand their
        // source masks to unseen pins; the edge frontier is consumed.
        for f in 0..h.num_edges() {
            let ff = scratch.edge_frontier[f];
            if ff == 0 {
                continue;
            }
            scratch.edge_frontier[f] = 0;
            for &w in h.pins(EdgeId(f as u32)) {
                let add = ff & !scratch.seen[w.index()];
                if add != 0 {
                    scratch.seen[w.index()] |= add;
                    scratch.next[w.index()] |= add;
                }
            }
        }
        // Settle the level: absorb newly reached (source, vertex) pairs
        // into the accumulators and promote `next` to the new frontier.
        active = false;
        let mut level_bits = 0u64;
        for v in 0..n {
            let nv = scratch.next[v];
            scratch.frontier[v] = nv;
            scratch.next[v] = 0;
            if nv != 0 {
                active = true;
                level_bits |= nv;
                let c = nv.count_ones() as u64;
                stats.pairs += c;
                stats.total += c as u128 * level as u128;
            }
        }
        if active {
            stats.diameter = level;
            if let Some(e) = ecc.as_deref_mut() {
                let mut bits = level_bits;
                while bits != 0 {
                    e[bits.trailing_zeros() as usize] = level;
                    bits &= bits - 1;
                }
            }
        }
    }
    Some(stats)
}

/// Exact distance statistics by MS-BFS from every vertex. Bit-identical
/// to [`crate::path::scalar_hyper_distance_stats`], ~an order of
/// magnitude less memory traffic.
pub fn msbfs_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    match msbfs_distance_stats_with(h, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats`] under a cooperative [`Deadline`]. The
/// error's `work_done` counts batches (of up to [`BATCH`] sources)
/// fully completed.
pub fn msbfs_distance_stats_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let sources: Vec<VertexId> = h.vertices().collect();
    msbfs_distance_stats_from_with(h, &sources, deadline)
}

/// Distance statistics restricted to caller-chosen BFS sources
/// (sampling; the diameter becomes a lower bound).
pub fn msbfs_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    match msbfs_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats_from`] under a cooperative [`Deadline`],
/// checked both at batch boundaries (deterministic on small inputs) and
/// every [`hgobs::CHECK_INTERVAL`] scanned vertices inside a batch. On
/// expiry the error carries phase `"msbfs"` and the number of batches
/// completed; the `msbfs.batches` and `bfs.sources` counters reflect
/// that same partial progress on both the success and expiry paths.
pub fn msbfs_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("msbfs.sweep");
    let mut scratch = MsBfsScratch::new(h);
    let mut ticks = 0u32;
    let mut acc = BatchStats::default();
    let mut batches = 0u64;
    let mut completed_sources = 0u64;
    let trace = deadline.trace();
    let expired = 'sweep: {
        for batch in sources.chunks(BATCH) {
            // The phase guard opens before the boundary check so a trace
            // of an expired request still shows the batch that noticed.
            let mut tp = trace.phase("msbfs.batch");
            // Batch-boundary check: inputs smaller than CHECK_INTERVAL
            // vertices might never reach the amortized tick.
            if deadline.expired() {
                break 'sweep true;
            }
            match msbfs_batch(h, batch, &mut scratch, deadline, &mut ticks, None) {
                Some(b) => acc.merge(&b),
                None => break 'sweep true,
            }
            tp.add_work(batch.len() as u64);
            batches += 1;
            completed_sources += batch.len() as u64;
        }
        false
    };
    hgobs::counter!("msbfs.batches", batches);
    hgobs::counter!("bfs.sources", completed_sources);
    if expired {
        return Err(deadline.exceeded("msbfs", batches));
    }
    Ok(stats_from_acc(acc))
}

/// Per-source eccentricities (max finite distance; 0 for an isolated
/// source) for every vertex in `sources`, by batched MS-BFS.
pub fn msbfs_eccentricities(h: &Hypergraph, sources: &[VertexId]) -> Vec<u32> {
    match msbfs_eccentricities_with(h, sources, &Deadline::none()) {
        Ok(ecc) => ecc,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_eccentricities`] under a cooperative [`Deadline`]; same
/// phase/work contract as [`msbfs_distance_stats_from_with`].
pub fn msbfs_eccentricities_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<Vec<u32>, DeadlineExceeded> {
    let _span = hgobs::Span::enter("msbfs.ecc");
    let mut scratch = MsBfsScratch::new(h);
    let mut ticks = 0u32;
    let mut ecc = vec![0u32; sources.len()];
    let mut batches = 0u64;
    for (b, batch) in sources.chunks(BATCH).enumerate() {
        let mut tp = deadline.trace().phase("msbfs.batch");
        let out = &mut ecc[b * BATCH..b * BATCH + batch.len()];
        if deadline.expired()
            || msbfs_batch(h, batch, &mut scratch, deadline, &mut ticks, Some(out)).is_none()
        {
            hgobs::counter!("msbfs.batches", batches);
            return Err(deadline.exceeded("msbfs", batches));
        }
        tp.add_work(batch.len() as u64);
        batches += 1;
    }
    hgobs::counter!("msbfs.batches", batches);
    Ok(ecc)
}

/// Final statistics from merged batch partials.
pub fn stats_from_acc(acc: BatchStats) -> HyperDistanceStats {
    HyperDistanceStats {
        diameter: acc.diameter,
        average_path_length: if acc.pairs == 0 {
            0.0
        } else {
            acc.total as f64 / acc.pairs as f64
        },
        reachable_pairs: acc.pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{
        hyper_distances, scalar_hyper_distance_stats, scalar_hyper_distance_stats_from,
    };
    use crate::HypergraphBuilder;
    use std::time::Duration;

    fn chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    /// Ring of `n` size-3 edges {i, i+1, i+7} (mod n) — more sources
    /// than one batch, non-trivial diameter.
    fn big_ring(n: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge([i, (i + 1) % n, (i + 7) % n]);
        }
        b.build()
    }

    #[test]
    fn matches_scalar_on_chain() {
        let h = chain();
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));
    }

    #[test]
    fn matches_scalar_across_batch_boundary() {
        // 200 sources = 4 batches (64+64+64+8).
        let h = big_ring(200);
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));
    }

    #[test]
    fn subset_of_sources_matches_scalar() {
        let h = big_ring(100);
        let some: Vec<VertexId> = (0..70).map(VertexId).collect();
        assert_eq!(
            msbfs_distance_stats_from(&h, &some),
            scalar_hyper_distance_stats_from(&h, &some)
        );
    }

    #[test]
    fn duplicate_sources_count_like_scalar() {
        let h = chain();
        let dup = [VertexId(0), VertexId(0), VertexId(2)];
        assert_eq!(
            msbfs_distance_stats_from(&h, &dup),
            scalar_hyper_distance_stats_from(&h, &dup)
        );
    }

    #[test]
    fn disconnected_empty_and_single_vertex() {
        // Disconnected: two components plus an isolated vertex.
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1]);
        b.add_edge([2, 3]);
        let h = b.build();
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));

        let empty = HypergraphBuilder::new(0).build();
        let s = msbfs_distance_stats(&empty);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);

        let single = HypergraphBuilder::new(1).build();
        assert_eq!(
            msbfs_distance_stats(&single),
            scalar_hyper_distance_stats(&single)
        );
    }

    #[test]
    fn eccentricities_match_per_source_bfs() {
        let h = big_ring(150);
        let sources: Vec<VertexId> = h.vertices().collect();
        let ecc = msbfs_eccentricities(&h, &sources);
        for (i, &s) in sources.iter().enumerate() {
            let expect = hyper_distances(&h, s)
                .into_iter()
                .filter(|&d| d != crate::path::UNREACHABLE)
                .max()
                .unwrap_or(0);
            assert_eq!(ecc[i], expect, "source {s:?}");
        }
    }

    #[test]
    fn eccentricity_of_isolated_vertex_is_zero() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(msbfs_eccentricities(&h, &[VertexId(2)]), vec![0]);
    }

    #[test]
    fn pre_expired_deadline_reports_zero_batches() {
        let h = big_ring(300);
        let dl = Deadline::after(Duration::ZERO);
        let err = msbfs_distance_stats_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs");
        assert_eq!(err.work_done, 0, "{err:?}");
        let err = msbfs_eccentricities_with(&h, &[VertexId(0)], &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs");
    }

    #[test]
    fn expired_sweep_still_records_partial_trace_events() {
        // A request that times out mid-kernel must still surface the
        // batches it attempted: the phase guard opens before the
        // boundary expiry check and records on drop, so the trace shows
        // where the budget went even on the 504 path.
        let h = big_ring(300);
        let trace = hgobs::TraceCtx::new(42);
        let dl = Deadline::after(Duration::ZERO).with_trace(trace.clone());
        assert!(msbfs_distance_stats_with(&h, &dl).is_err());
        let events = trace.events();
        assert!(!events.is_empty(), "partial trace must not be empty");
        assert!(
            events.iter().all(|e| e.phase == "msbfs.batch"),
            "{events:?}"
        );
        // The aborted batch completed no sources.
        assert_eq!(events.iter().map(|e| e.work).sum::<u64>(), 0);
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let h = big_ring(130);
        assert_eq!(
            msbfs_distance_stats(&h),
            msbfs_distance_stats_with(&h, &Deadline::none()).unwrap()
        );
    }

    #[test]
    fn deadline_can_fire_mid_sweep_with_partial_batch_count() {
        // 6000 vertices = 94 batches; walk the budget up until a stop
        // lands mid-sweep (or the box finishes inside the budget, which
        // the pre-expired test covers).
        let h = big_ring(6000);
        for ms in [1u64, 2, 4, 8, 16, 32, 64] {
            match msbfs_distance_stats_with(&h, &Deadline::after_ms(ms)) {
                Err(err) => {
                    assert_eq!(err.phase, "msbfs");
                    assert!(err.work_done < 94, "{err:?}");
                    if err.work_done > 0 {
                        return;
                    }
                }
                Ok(_) => return,
            }
        }
    }
}
