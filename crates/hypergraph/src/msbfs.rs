//! Batched multi-source BFS (MS-BFS) over the alternating vertex /
//! hyperedge expansion.
//!
//! The all-pairs sweeps behind the paper's diameter-6 / APL-2.568 claim
//! run one BFS per source, so every source pays the full CSR scan on its
//! own. MS-BFS batches up to [`BATCH`] sources into one traversal: each
//! vertex and each hyperedge carries a `u64` "seen" mask (bit `i` set
//! once source `i` has reached it) and a frontier mask for the current
//! level. One pass over the CSR arrays then advances all 64 frontiers at
//! once — the adjacency and pin lists are streamed once per *batch*
//! instead of once per *source*, cutting memory traffic by up to 64× on
//! exactly the kernels hgserve exposes under deadlines.
//!
//! # Memory layout of one level
//!
//! Each level is two *consuming* passes, with no settle pass in between:
//!
//! 1. **vertex → hyperedge**: every frontier vertex hands its mask to
//!    the incident hyperedges it has not traversed yet, zeroing its own
//!    frontier word as it is expanded;
//! 2. **hyperedge → vertex**: every entered hyperedge hands its mask to
//!    its unseen pins, writing the *next* frontier directly into the
//!    (now empty) vertex frontier and absorbing the newly reached
//!    (source, vertex) pairs into the accumulators on the spot.
//!
//! Both passes are driven by word-level summary bitmaps
//! ([`graphcore::bitset`]): bit `v` of the summary is set exactly when
//! frontier word `v` is nonzero, so a level only ever touches its active
//! words. A flat watermark scan ([`graphcore::bitset::scan_active`])
//! picks the strategy per level — sparse levels walk summary bits and
//! skip all-zero stretches outright, dense levels scan the watermark
//! range flat — and the skipped-word / pass-mode tallies surface as
//! `msbfs.sweep.*` counters (see [`MsBfsScratch::flush_counters`]).
//!
//! Distances are never materialized as an n×n matrix: when a vertex is
//! newly reached at level `d` by `c` sources, the running
//! [`HyperDistanceStats`] accumulators absorb `c` pairs of distance `d`
//! on the spot. The per-source eccentricity variant
//! ([`msbfs_eccentricities`]) folds the same level information into a
//! max-per-source-bit instead.
//!
//! Results are bit-identical to the scalar oracle
//! ([`crate::path::scalar_hyper_distance_stats_from_with`]): both count
//! BFS levels of the bipartite expansion, and the accumulators are
//! integers (`u64` pair counts, `u128` distance total), so the sum is
//! independent of accumulation order and even the `f64` average is
//! reproduced exactly.
//!
//! Every sweep has a `*_with` variant taking an [`hgobs::Deadline`] with
//! the same amortized-tick contract as the scalar sweeps; expiry surfaces
//! phase `"msbfs"` and the number of *batches* fully completed.

use graphcore::bitset;
use hgobs::{Deadline, DeadlineExceeded};

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::path::HyperDistanceStats;

/// Sources advanced per traversal: the bit width of a
/// [`bitset::Mask`]. One 64-byte lane per vertex/hyperedge means a
/// random expansion probe still costs a single cache line while
/// amortizing the CSR scan — and every probe's memory latency — across
/// 256 sources at once.
pub const BATCH: usize = bitset::LANE_BITS;

/// Reusable per-traversal mask buffers. One allocation per worker; a
/// batch that ran to completion leaves every frontier mask and summary
/// zero (both passes consume what they read), so the next batch only
/// re-zeroes the `seen` halves of the lanes instead of the whole
/// scratch.
pub struct MsBfsScratch {
    /// Per-vertex interleaved (seen, frontier) masks: one random cache
    /// line per expansion probe instead of two.
    vlanes: Vec<bitset::Lane>,
    /// Per-hyperedge interleaved (traversed, entered-this-level) masks.
    elanes: Vec<bitset::Lane>,
    /// Summary of the vertex frontier: bit `v` set ⟺ `vlanes[v].front != 0`.
    vsum: Vec<u64>,
    /// Summary of the hyperedge frontier, same invariant.
    esum: Vec<u64>,
    /// Bit `v` set while `vlanes[v].seen` is still missing some source
    /// of the current batch — the pull direction's worklist.
    vunsat: Vec<u64>,
    /// Same for hyperedges.
    eunsat: Vec<u64>,
    /// `true` while the mask invariants above hold (every batch so far
    /// ran to completion); a deadline abort mid-pass clears it, forcing
    /// the next batch to re-zero everything.
    clean: bool,
    counters: bitset::DrainStats,
}

impl MsBfsScratch {
    /// Allocate scratch sized for `h`.
    pub fn new(h: &Hypergraph) -> Self {
        MsBfsScratch {
            vlanes: vec![bitset::Lane::ZERO; h.num_vertices()],
            elanes: vec![bitset::Lane::ZERO; h.num_edges()],
            vsum: vec![0; bitset::words_for(h.num_vertices())],
            esum: vec![0; bitset::words_for(h.num_edges())],
            vunsat: vec![0; bitset::words_for(h.num_vertices())],
            eunsat: vec![0; bitset::words_for(h.num_edges())],
            clean: true,
            counters: bitset::DrainStats::default(),
        }
    }

    /// Bytes held by the mask buffers (one 64-byte lane per vertex and
    /// per hyperedge, plus the 1/64-size summaries); what one parallel
    /// worker costs to equip.
    pub fn bytes(&self) -> usize {
        (self.vlanes.len() + self.elanes.len()) * std::mem::size_of::<bitset::Lane>()
            + (self.vsum.len() + self.esum.len() + self.vunsat.len() + self.eunsat.len())
                * std::mem::size_of::<u64>()
    }

    /// `true` when this scratch was sized for a hypergraph of `h`'s
    /// dimensions and can run batches over it.
    pub fn fits(&self, h: &Hypergraph) -> bool {
        self.vlanes.len() == h.num_vertices() && self.elanes.len() == h.num_edges()
    }

    /// Flush the accumulated sparsity telemetry into the global
    /// counters: `msbfs.sweep.sparse_passes`, `msbfs.sweep.dense_passes`
    /// and `msbfs.sweep.words_skipped` (all-zero summary words skipped
    /// without touching their 64 mask words). The sweep entry points
    /// call this once per sweep; callers driving [`msbfs_batch`]
    /// directly may call it whenever a scrape boundary makes sense.
    pub fn flush_counters(&mut self) {
        let c = std::mem::take(&mut self.counters);
        if c.sparse_passes != 0 {
            hgobs::counter!("msbfs.sweep.sparse_passes", c.sparse_passes);
        }
        if c.dense_passes != 0 {
            hgobs::counter!("msbfs.sweep.dense_passes", c.dense_passes);
        }
        if c.words_skipped != 0 {
            hgobs::counter!("msbfs.sweep.words_skipped", c.words_skipped);
        }
        if c.pull_passes != 0 {
            hgobs::counter!("msbfs.sweep.pull_passes", c.pull_passes);
        }
    }

    /// The sparsity telemetry accumulated since the last
    /// [`flush_counters`](Self::flush_counters) — lets tests and callers
    /// driving [`msbfs_batch`] directly verify which sweep strategies
    /// (sparse bit walk, dense flat scan, pull direction) engaged
    /// without going through the global metrics registry.
    pub fn sweep_counters(&self) -> &bitset::DrainStats {
        &self.counters
    }

    /// Ready the masks for a fresh batch. A clean scratch — freshly
    /// allocated, or left by a completed batch — has all-zero frontier
    /// masks and summaries already; only the `seen` halves carry state.
    fn prepare(&mut self) {
        self.vlanes.fill(bitset::Lane::ZERO);
        self.elanes.fill(bitset::Lane::ZERO);
        if !self.clean {
            self.vsum.fill(0);
            self.esum.fill(0);
        }
        self.clean = false;
    }
}

/// Distance-statistic partials of one batch, mergeable across batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Largest finite distance discovered by this batch.
    pub diameter: u32,
    /// Sum of finite distances over the batch's (source, vertex) pairs.
    pub total: u128,
    /// Number of reachable ordered pairs discovered by this batch.
    pub pairs: u64,
}

impl BatchStats {
    /// Fold another batch's partials into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.diameter = self.diameter.max(other.diameter);
        self.total += other.total;
        self.pairs += other.pairs;
    }
}

/// Advance one batch of at most [`BATCH`] sources to fixpoint,
/// accumulating pair statistics (and, when `ecc` is given, per-source
/// eccentricities into `ecc[i]` for batch slot `i`). Returns `None` when
/// the deadline fires mid-traversal; `ticks` is the caller's amortized
/// tick counter, shared across batches so the clock is read every
/// [`hgobs::CHECK_INTERVAL`] expanded vertices/hyperedges regardless of
/// batch size.
///
/// Each level runs its two expansions in whichever direction is
/// cheaper, decided from flat popcount sweeps of the summaries:
///
/// * **push** — drain the frontier, writing masks into the neighbors'
///   lanes (best while the frontier is small);
/// * **pull** — walk the *unsaturated* entries (those still missing a
///   source, tracked in a summary of their own) and gather their
///   neighbors' frontier masks with pure loads, skipping saturated
///   entries outright (best on the late dense levels, where push would
///   probe mostly-saturated lanes for nothing).
///
/// Both directions produce the same per-level set of newly reached
/// (source, vertex) pairs, and the integer accumulators make the
/// statistics independent of discovery order, so the result is
/// bit-identical either way.
///
/// # Panics
/// If `batch.len() > BATCH` or `ecc` is shorter than `batch`.
pub fn msbfs_batch(
    h: &Hypergraph,
    batch: &[VertexId],
    scratch: &mut MsBfsScratch,
    deadline: &Deadline,
    ticks: &mut u32,
    mut ecc: Option<&mut [u32]>,
) -> Option<BatchStats> {
    assert!(batch.len() <= BATCH, "batch wider than the u64 masks");
    if let Some(e) = ecc.as_deref_mut() {
        e[..batch.len()].fill(0);
    }
    if batch.is_empty() {
        return Some(BatchStats::default());
    }
    scratch.prepare();
    let n = h.num_vertices();
    let m = h.num_edges();
    let MsBfsScratch {
        vlanes,
        elanes,
        vsum,
        esum,
        vunsat,
        eunsat,
        clean,
        counters,
    } = scratch;
    // All sources present ⟺ lane saturated; nothing left to deliver.
    let full = bitset::mask_full(batch.len());
    bitset::fill_all(vunsat, n);
    bitset::fill_all(eunsat, m);
    for (i, &s) in batch.iter().enumerate() {
        let lane = &mut vlanes[s.index()];
        lane.seen[i >> 6] |= 1u64 << (i & 63);
        lane.front[i >> 6] |= 1u64 << (i & 63);
        bitset::mark(vsum, s.index());
    }

    let mut stats = BatchStats::default();
    let mut level = 0u32;
    loop {
        let vscan = bitset::scan_active(vsum);
        if vscan.2 == 0 {
            break;
        }
        level += 1;

        // ---- Pass 1: vertex frontier → hyperedge frontier ----
        // Push cost ≈ frontier vertices × avg degree; pull cost ≈
        // unsaturated hyperedges × avg size. Equalized denominators:
        // compare frontier_bits/n against unsat_bits/m.
        let vactive_bits = bitset::count_bits(vsum);
        let eunsat_bits = bitset::count_bits(eunsat);
        if eunsat_bits * n as u64 >= vactive_bits * m as u64 {
            // Push. The loop body is branchless on purpose: `add` is
            // often zero mid-sweep and an `if add != 0` there
            // mispredicts randomly, flushing the pipeline and
            // serializing the independent cache probes this loop lives
            // or dies by. ORing a zero `add`, shifting a zero summary
            // bit and clearing an already-clear unsat bit are no-ops
            // that cost nothing but keep the loads in flight.
            let ok = bitset::drain_level(vsum, vlanes, vscan, counters, |v, fv| {
                if deadline.tick(ticks) {
                    return false;
                }
                for &f in h.edges_of(VertexId(v as u32)) {
                    let fi = f.index();
                    let lane = &mut elanes[fi];
                    let add = lane.fresh(&fv);
                    lane.absorb(&add);
                    esum[fi >> 6] |= ((!bitset::mask_is_zero(&add)) as u64) << (fi & 63);
                    eunsat[fi >> 6] &= !((lane.saturated(&full) as u64) << (fi & 63));
                }
                true
            });
            if !ok {
                return None;
            }
        } else {
            // Pull: gather the pins' frontier masks of every hyperedge
            // that can still accept a source; saturated hyperedges are
            // skipped without a probe. Reads leave the frontier intact,
            // so it is drained (cheaply, no expansion) afterwards.
            counters.pull_passes += 1;
            for w in 0..eunsat.len() {
                let mut bits = eunsat[w];
                let mut still = bits;
                while bits != 0 {
                    let fi = (w << 6) | bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if deadline.tick(ticks) {
                        return None;
                    }
                    let mut gather = bitset::MASK_ZERO;
                    for &p in h.pins(EdgeId(fi as u32)) {
                        bitset::mask_or_into(&mut gather, &vlanes[p.index()].front);
                    }
                    let lane = &mut elanes[fi];
                    let add = lane.fresh(&gather);
                    lane.absorb(&add);
                    esum[w] |= ((!bitset::mask_is_zero(&add)) as u64) << (fi & 63);
                    still &= !((lane.saturated(&full) as u64) << (fi & 63));
                }
                eunsat[w] = still;
            }
            // Consume the vertex frontier the pull left behind.
            if !bitset::drain_level(vsum, vlanes, vscan, counters, |_, _| true) {
                unreachable!("clearing drain never aborts");
            }
        }

        // ---- Pass 2: hyperedge frontier → next vertex frontier ----
        let escan = bitset::scan_active(esum);
        let mut level_pairs = 0u64;
        let mut level_bits = bitset::MASK_ZERO;
        if escan.2 != 0 {
            let eactive_bits = bitset::count_bits(esum);
            let vunsat_bits = bitset::count_bits(vunsat);
            if vunsat_bits * m as u64 >= eactive_bits * n as u64 {
                // Push, branchless as above. `seen` is updated as masks
                // land, so summing `popcount(add)` counts each newly
                // reached (source, vertex) pair exactly once no matter
                // how many hyperedges deliver it.
                let ok = bitset::drain_level(esum, elanes, escan, counters, |f, ff| {
                    if deadline.tick(ticks) {
                        return false;
                    }
                    for &w in h.pins(EdgeId(f as u32)) {
                        let wi = w.index();
                        let lane = &mut vlanes[wi];
                        let add = lane.fresh(&ff);
                        lane.absorb(&add);
                        vsum[wi >> 6] |= ((!bitset::mask_is_zero(&add)) as u64) << (wi & 63);
                        vunsat[wi >> 6] &= !((lane.saturated(&full) as u64) << (wi & 63));
                        bitset::mask_or_into(&mut level_bits, &add);
                        level_pairs += bitset::mask_count(&add);
                    }
                    true
                });
                if !ok {
                    return None;
                }
            } else {
                // Pull over unsaturated vertices; the union of incident
                // hyperedge frontiers is the same mask push would have
                // delivered piecewise.
                counters.pull_passes += 1;
                for w in 0..vunsat.len() {
                    let mut bits = vunsat[w];
                    let mut still = bits;
                    while bits != 0 {
                        let wi = (w << 6) | bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if deadline.tick(ticks) {
                            return None;
                        }
                        let mut gather = bitset::MASK_ZERO;
                        for &f in h.edges_of(VertexId(wi as u32)) {
                            bitset::mask_or_into(&mut gather, &elanes[f.index()].front);
                        }
                        let lane = &mut vlanes[wi];
                        let add = lane.fresh(&gather);
                        lane.absorb(&add);
                        vsum[w] |= ((!bitset::mask_is_zero(&add)) as u64) << (wi & 63);
                        still &= !((lane.saturated(&full) as u64) << (wi & 63));
                        bitset::mask_or_into(&mut level_bits, &add);
                        level_pairs += bitset::mask_count(&add);
                    }
                    vunsat[w] = still;
                }
                // Consume the hyperedge frontier the pull read from.
                if !bitset::drain_level(esum, elanes, escan, counters, |_, _| true) {
                    unreachable!("clearing drain never aborts");
                }
            }
        }
        if level_pairs != 0 {
            stats.diameter = level;
            stats.pairs += level_pairs;
            stats.total += level_pairs as u128 * level as u128;
            if let Some(e) = ecc.as_deref_mut() {
                for (w, &word) in level_bits.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        e[(w << 6) | bits.trailing_zeros() as usize] = level;
                        bits &= bits - 1;
                    }
                }
            }
        }
    }
    // Both passes consumed everything they read, so the frontier masks
    // and summaries are all-zero again: the next batch may skip them.
    *clean = true;
    Some(stats)
}

/// Exact distance statistics by MS-BFS from every vertex. Bit-identical
/// to [`crate::path::scalar_hyper_distance_stats`], ~an order of
/// magnitude less memory traffic.
pub fn msbfs_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    match msbfs_distance_stats_with(h, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats`] under a cooperative [`Deadline`]. The
/// error's `work_done` counts batches (of up to [`BATCH`] sources)
/// fully completed.
pub fn msbfs_distance_stats_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let sources: Vec<VertexId> = h.vertices().collect();
    msbfs_distance_stats_from_with(h, &sources, deadline)
}

/// Distance statistics restricted to caller-chosen BFS sources
/// (sampling; the diameter becomes a lower bound).
pub fn msbfs_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    match msbfs_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats_from`] under a cooperative [`Deadline`],
/// checked both at batch boundaries (deterministic on small inputs) and
/// every [`hgobs::CHECK_INTERVAL`] expanded vertices inside a batch. On
/// expiry the error carries phase `"msbfs"` and the number of batches
/// completed; the `msbfs.batches` and `bfs.sources` counters reflect
/// that same partial progress on both the success and expiry paths.
pub fn msbfs_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("msbfs.sweep");
    let mut scratch = MsBfsScratch::new(h);
    let mut ticks = 0u32;
    let mut acc = BatchStats::default();
    let mut batches = 0u64;
    let mut completed_sources = 0u64;
    let trace = deadline.trace();
    let expired = 'sweep: {
        for batch in sources.chunks(BATCH) {
            // The phase guard opens before the boundary check so a trace
            // of an expired request still shows the batch that noticed.
            let mut tp = trace.phase("msbfs.batch");
            // Batch-boundary check: inputs smaller than CHECK_INTERVAL
            // vertices might never reach the amortized tick.
            if deadline.expired() {
                break 'sweep true;
            }
            match msbfs_batch(h, batch, &mut scratch, deadline, &mut ticks, None) {
                Some(b) => acc.merge(&b),
                None => break 'sweep true,
            }
            tp.add_work(batch.len() as u64);
            batches += 1;
            completed_sources += batch.len() as u64;
        }
        false
    };
    scratch.flush_counters();
    hgobs::counter!("msbfs.batches", batches);
    hgobs::counter!("bfs.sources", completed_sources);
    if expired {
        return Err(deadline.exceeded("msbfs", batches));
    }
    Ok(stats_from_acc(acc))
}

/// Per-source eccentricities (max finite distance; 0 for an isolated
/// source) for every vertex in `sources`, by batched MS-BFS.
pub fn msbfs_eccentricities(h: &Hypergraph, sources: &[VertexId]) -> Vec<u32> {
    match msbfs_eccentricities_with(h, sources, &Deadline::none()) {
        Ok(ecc) => ecc,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_eccentricities`] under a cooperative [`Deadline`]; same
/// phase/work contract as [`msbfs_distance_stats_from_with`].
pub fn msbfs_eccentricities_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<Vec<u32>, DeadlineExceeded> {
    let _span = hgobs::Span::enter("msbfs.ecc");
    let mut scratch = MsBfsScratch::new(h);
    let mut ticks = 0u32;
    let mut ecc = vec![0u32; sources.len()];
    let mut batches = 0u64;
    for (b, batch) in sources.chunks(BATCH).enumerate() {
        let mut tp = deadline.trace().phase("msbfs.batch");
        let out = &mut ecc[b * BATCH..b * BATCH + batch.len()];
        if deadline.expired()
            || msbfs_batch(h, batch, &mut scratch, deadline, &mut ticks, Some(out)).is_none()
        {
            scratch.flush_counters();
            hgobs::counter!("msbfs.batches", batches);
            return Err(deadline.exceeded("msbfs", batches));
        }
        tp.add_work(batch.len() as u64);
        batches += 1;
    }
    scratch.flush_counters();
    hgobs::counter!("msbfs.batches", batches);
    Ok(ecc)
}

/// Final statistics from merged batch partials.
pub fn stats_from_acc(acc: BatchStats) -> HyperDistanceStats {
    HyperDistanceStats {
        diameter: acc.diameter,
        average_path_length: if acc.pairs == 0 {
            0.0
        } else {
            acc.total as f64 / acc.pairs as f64
        },
        reachable_pairs: acc.pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{
        hyper_distances, scalar_hyper_distance_stats, scalar_hyper_distance_stats_from,
    };
    use crate::HypergraphBuilder;
    use std::time::Duration;

    fn chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    /// Ring of `n` size-3 edges {i, i+1, i+7} (mod n) — more sources
    /// than one batch, non-trivial diameter.
    fn big_ring(n: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge([i, (i + 1) % n, (i + 7) % n]);
        }
        b.build()
    }

    #[test]
    fn matches_scalar_on_chain() {
        let h = chain();
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));
    }

    #[test]
    fn matches_scalar_across_batch_boundary() {
        // 600 sources = 3 batches (256+256+88).
        let h = big_ring(600);
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));
    }

    #[test]
    fn subset_of_sources_matches_scalar() {
        let h = big_ring(100);
        let some: Vec<VertexId> = (0..70).map(VertexId).collect();
        assert_eq!(
            msbfs_distance_stats_from(&h, &some),
            scalar_hyper_distance_stats_from(&h, &some)
        );
    }

    #[test]
    fn duplicate_sources_count_like_scalar() {
        let h = chain();
        let dup = [VertexId(0), VertexId(0), VertexId(2)];
        assert_eq!(
            msbfs_distance_stats_from(&h, &dup),
            scalar_hyper_distance_stats_from(&h, &dup)
        );
    }

    #[test]
    fn disconnected_empty_and_single_vertex() {
        // Disconnected: two components plus an isolated vertex.
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1]);
        b.add_edge([2, 3]);
        let h = b.build();
        assert_eq!(msbfs_distance_stats(&h), scalar_hyper_distance_stats(&h));

        let empty = HypergraphBuilder::new(0).build();
        let s = msbfs_distance_stats(&empty);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);

        let single = HypergraphBuilder::new(1).build();
        assert_eq!(
            msbfs_distance_stats(&single),
            scalar_hyper_distance_stats(&single)
        );
    }

    #[test]
    fn dirty_scratch_after_abort_still_matches_scalar() {
        // A deadline abort mid-pass leaves the masks half-consumed; the
        // clean flag must force the next batch to re-zero everything.
        let h = big_ring(600);
        let mut scratch = MsBfsScratch::new(&h);
        let mut ticks = 0u32;
        let sources: Vec<VertexId> = h.vertices().collect();
        let gone = Deadline::after(Duration::ZERO);
        let mut aborted = false;
        for batch in sources.chunks(BATCH) {
            aborted |= msbfs_batch(&h, batch, &mut scratch, &gone, &mut ticks, None).is_none();
        }
        assert!(aborted, "zero budget must abort at least one batch");
        // Reuse the same (possibly poisoned) scratch for a full sweep.
        let mut acc = BatchStats::default();
        for batch in sources.chunks(BATCH) {
            let b = msbfs_batch(&h, batch, &mut scratch, &Deadline::none(), &mut ticks, None)
                .expect("unlimited deadline");
            acc.merge(&b);
        }
        assert_eq!(stats_from_acc(acc), scalar_hyper_distance_stats(&h));
    }

    #[test]
    fn scratch_reuse_across_batches_is_clean() {
        // Back-to-back batches on one scratch must not leak frontier
        // state: identical to a fresh-scratch-per-batch run.
        let h = big_ring(600);
        let sources: Vec<VertexId> = h.vertices().collect();
        let mut shared = MsBfsScratch::new(&h);
        let mut ticks = 0u32;
        let mut with_shared = BatchStats::default();
        let mut with_fresh = BatchStats::default();
        for batch in sources.chunks(BATCH) {
            let b =
                msbfs_batch(&h, batch, &mut shared, &Deadline::none(), &mut ticks, None).unwrap();
            with_shared.merge(&b);
            let mut fresh = MsBfsScratch::new(&h);
            let b =
                msbfs_batch(&h, batch, &mut fresh, &Deadline::none(), &mut ticks, None).unwrap();
            with_fresh.merge(&b);
        }
        assert_eq!(with_shared, with_fresh);
    }

    #[test]
    fn eccentricities_match_per_source_bfs() {
        let h = big_ring(150);
        let sources: Vec<VertexId> = h.vertices().collect();
        let ecc = msbfs_eccentricities(&h, &sources);
        for (i, &s) in sources.iter().enumerate() {
            let expect = hyper_distances(&h, s)
                .into_iter()
                .filter(|&d| d != crate::path::UNREACHABLE)
                .max()
                .unwrap_or(0);
            assert_eq!(ecc[i], expect, "source {s:?}");
        }
    }

    #[test]
    fn eccentricity_of_isolated_vertex_is_zero() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(msbfs_eccentricities(&h, &[VertexId(2)]), vec![0]);
    }

    #[test]
    fn pre_expired_deadline_reports_zero_batches() {
        let h = big_ring(300);
        let dl = Deadline::after(Duration::ZERO);
        let err = msbfs_distance_stats_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs");
        assert_eq!(err.work_done, 0, "{err:?}");
        let err = msbfs_eccentricities_with(&h, &[VertexId(0)], &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs");
    }

    #[test]
    fn expired_sweep_still_records_partial_trace_events() {
        // A request that times out mid-kernel must still surface the
        // batches it attempted: the phase guard opens before the
        // boundary expiry check and records on drop, so the trace shows
        // where the budget went even on the 504 path.
        let h = big_ring(300);
        let trace = hgobs::TraceCtx::new(42);
        let dl = Deadline::after(Duration::ZERO).with_trace(trace.clone());
        assert!(msbfs_distance_stats_with(&h, &dl).is_err());
        let events = trace.events();
        assert!(!events.is_empty(), "partial trace must not be empty");
        assert!(
            events.iter().all(|e| e.phase == "msbfs.batch"),
            "{events:?}"
        );
        // The aborted batch completed no sources.
        assert_eq!(events.iter().map(|e| e.work).sum::<u64>(), 0);
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let h = big_ring(130);
        assert_eq!(
            msbfs_distance_stats(&h),
            msbfs_distance_stats_with(&h, &Deadline::none()).unwrap()
        );
    }

    #[test]
    fn deadline_can_fire_mid_sweep_with_partial_batch_count() {
        // Enough vertices for many batches; walk the budget up until a
        // stop lands mid-sweep (or the box finishes inside the budget,
        // which the pre-expired test covers).
        let h = big_ring(6000);
        let nb = 6000u64.div_ceil(BATCH as u64);
        for ms in [1u64, 2, 4, 8, 16, 32, 64] {
            match msbfs_distance_stats_with(&h, &Deadline::after_ms(ms)) {
                Err(err) => {
                    assert_eq!(err.phase, "msbfs");
                    assert!(err.work_done < nb, "{err:?}");
                    if err.work_done > 0 {
                        return;
                    }
                }
                Ok(_) => return,
            }
        }
    }
}
