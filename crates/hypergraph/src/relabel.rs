//! Cache-local vertex/hyperedge renumbering.
//!
//! The hot bitset kernels ([`crate::msbfs`], [`mod@crate::decompose`]) are
//! bound by random probes into per-vertex and per-hyperedge mask
//! arrays: every pin of an expanded hyperedge lands on its own cache
//! line when vertex ids are scattered. Renumbering vertices (and
//! hyperedges) in BFS discovery order places ids that are traversed
//! together next to each other, so one hyperedge's pins — and one
//! vertex's incident hyperedges — share cache lines instead of each
//! paying a miss. Degree order is the cheaper variant that still
//! clusters the high-traffic hubs.
//!
//! A [`Relabeling`] is a pure permutation: [`Relabeling::apply`]
//! rebuilds the CSR under the new ids, and the inverse maps translate
//! kernel outputs (core numbers, cover sets, per-source distances) back
//! to the original ids. Distance *statistics* (diameter, APL, reachable
//! pairs) are label-invariant, and since the MS-BFS accumulators are
//! integers the relabeled sweep reproduces them bit-for-bit — the
//! proptest suite pins this down against the unrelabeled scalar oracle.
//!
//! `hgserve` applies a relabeling at dataset load behind the
//! `--relabel` CLI flag, translating ids at the response boundary;
//! `hg bench --kernels` does the same by default (`--no-relabel` to
//! opt out) so the published kernel numbers include the layout win.

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::HypergraphBuilder;

/// A vertex/hyperedge renumbering: forward and inverse permutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    /// `vertex_to_new[old] = new`.
    vertex_to_new: Vec<u32>,
    /// `vertex_to_old[new] = old`.
    vertex_to_old: Vec<u32>,
    /// `edge_to_old[new] = old`.
    edge_to_old: Vec<u32>,
}

impl Relabeling {
    /// The identity relabeling for `h` (useful as a fallback).
    pub fn identity(h: &Hypergraph) -> Self {
        Relabeling {
            vertex_to_new: (0..h.num_vertices() as u32).collect(),
            vertex_to_old: (0..h.num_vertices() as u32).collect(),
            edge_to_old: (0..h.num_edges() as u32).collect(),
        }
    }

    /// BFS discovery order: start a traversal at the highest-degree
    /// vertex of each component, numbering vertices as they are first
    /// reached and hyperedges as they are first entered. Pins that are
    /// discovered together end up with adjacent ids, which is exactly
    /// the access pattern of the MS-BFS expansion and the k-core peel.
    /// Isolated vertices are appended at the end in old-id order.
    pub fn bfs_order(h: &Hypergraph) -> Self {
        let n = h.num_vertices();
        let m = h.num_edges();
        let mut vertex_to_new = vec![u32::MAX; n];
        let mut vertex_to_old = Vec::with_capacity(n);
        let mut edge_seen = vec![false; m];
        let mut edge_to_old = Vec::with_capacity(m);

        // Component seeds, highest degree first (ties: lower old id).
        let mut seeds: Vec<u32> = (0..n as u32).collect();
        seeds.sort_by_key(|&v| (std::cmp::Reverse(h.vertex_degree(VertexId(v))), v));

        let mut queue = std::collections::VecDeque::new();
        for s in seeds {
            if vertex_to_new[s as usize] != u32::MAX || h.vertex_degree(VertexId(s)) == 0 {
                continue;
            }
            vertex_to_new[s as usize] = vertex_to_old.len() as u32;
            vertex_to_old.push(s);
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &f in h.edges_of(VertexId(v)) {
                    if edge_seen[f.index()] {
                        continue;
                    }
                    edge_seen[f.index()] = true;
                    edge_to_old.push(f.index() as u32);
                    for &w in h.pins(f) {
                        if vertex_to_new[w.index()] == u32::MAX {
                            vertex_to_new[w.index()] = vertex_to_old.len() as u32;
                            vertex_to_old.push(w.index() as u32);
                            queue.push_back(w.index() as u32);
                        }
                    }
                }
            }
        }
        // Isolated vertices and (degenerate) empty hyperedges keep
        // their relative order at the tail.
        for v in 0..n as u32 {
            if vertex_to_new[v as usize] == u32::MAX {
                vertex_to_new[v as usize] = vertex_to_old.len() as u32;
                vertex_to_old.push(v);
            }
        }
        for f in 0..m as u32 {
            if !edge_seen[f as usize] {
                edge_to_old.push(f);
            }
        }
        Relabeling {
            vertex_to_new,
            vertex_to_old,
            edge_to_old,
        }
    }

    /// Descending-degree order (ties: lower old id), hyperedge order
    /// untouched. Cheaper to compute than [`Relabeling::bfs_order`] and
    /// still clusters the hubs most probes land on.
    pub fn degree_order(h: &Hypergraph) -> Self {
        let mut vertex_to_old: Vec<u32> = (0..h.num_vertices() as u32).collect();
        vertex_to_old.sort_by_key(|&v| (std::cmp::Reverse(h.vertex_degree(VertexId(v))), v));
        let mut vertex_to_new = vec![0u32; h.num_vertices()];
        for (new, &old) in vertex_to_old.iter().enumerate() {
            vertex_to_new[old as usize] = new as u32;
        }
        Relabeling {
            vertex_to_new,
            vertex_to_old,
            edge_to_old: (0..h.num_edges() as u32).collect(),
        }
    }

    /// Rebuild `h`'s CSR under this relabeling. The result is the same
    /// hypergraph up to renaming: every distance statistic, degree
    /// histogram, core profile, … is preserved (per-vertex outputs come
    /// back under new ids — translate with [`Relabeling::original_vertex`]).
    pub fn apply(&self, h: &Hypergraph) -> Hypergraph {
        let mut b = HypergraphBuilder::new(h.num_vertices());
        b.reserve_pins(h.num_pins());
        for &old_f in &self.edge_to_old {
            b.add_edge(
                h.pins(EdgeId(old_f))
                    .iter()
                    .map(|&w| self.vertex_to_new[w.index()]),
            );
        }
        b.build()
    }

    /// The raw permutation arrays `(vertex_to_new, vertex_to_old,
    /// edge_to_old)` — for the `.hgb` serializer.
    pub(crate) fn parts(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.vertex_to_new, &self.vertex_to_old, &self.edge_to_old)
    }

    /// Reassemble from raw permutation arrays (the `.hgb` reader
    /// validates bounds and mutual inverses before calling this).
    pub(crate) fn from_parts(
        vertex_to_new: Vec<u32>,
        vertex_to_old: Vec<u32>,
        edge_to_old: Vec<u32>,
    ) -> Self {
        Relabeling {
            vertex_to_new,
            vertex_to_old,
            edge_to_old,
        }
    }

    /// The old id of relabeled vertex `v`.
    #[inline]
    pub fn original_vertex(&self, v: VertexId) -> VertexId {
        VertexId(self.vertex_to_old[v.index()])
    }

    /// The new id of original vertex `v`.
    #[inline]
    pub fn new_vertex(&self, v: VertexId) -> VertexId {
        VertexId(self.vertex_to_new[v.index()])
    }

    /// The old id of relabeled hyperedge `f`.
    #[inline]
    pub fn original_edge(&self, f: EdgeId) -> EdgeId {
        EdgeId(self.edge_to_old[f.index()])
    }

    /// Translate a per-new-vertex array (core numbers, distances, …)
    /// back into old-id indexing.
    pub fn unmap_vertex_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.vertex_to_old.len());
        let mut out = Vec::with_capacity(values.len());
        for old in 0..values.len() {
            out.push(values[self.vertex_to_new[old] as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msbfs::msbfs_distance_stats;
    use crate::path::scalar_hyper_distance_stats;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(9);
        b.add_edge([3, 7]);
        b.add_edge([7, 1, 5]);
        b.add_edge([1, 5]);
        b.add_edge([0, 2]); // second component
                            // vertices 4, 6, 8 isolated
        b.build()
    }

    fn is_permutation(p: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&x| {
                let ok = (x as usize) < n && !seen[x as usize];
                if ok {
                    seen[x as usize] = true;
                }
                ok
            })
    }

    #[test]
    fn bfs_order_is_a_permutation_with_consistent_inverse() {
        let h = sample();
        let r = Relabeling::bfs_order(&h);
        assert!(is_permutation(&r.vertex_to_new, 9));
        assert!(is_permutation(&r.vertex_to_old, 9));
        assert!(is_permutation(&r.edge_to_old, 4));
        for v in h.vertices() {
            assert_eq!(r.original_vertex(r.new_vertex(v)), v);
        }
    }

    #[test]
    fn bfs_order_starts_at_the_max_degree_vertex() {
        let h = sample();
        let r = Relabeling::bfs_order(&h);
        // Vertices 7, 1 and 5 have degree 2; 7 wins the seed by ties
        // going to... degree 2 each, lowest id 1. Vertex 1 is new id 0.
        assert_eq!(r.new_vertex(VertexId(1)), VertexId(0));
    }

    #[test]
    fn isolated_vertices_go_last() {
        let h = sample();
        let r = Relabeling::bfs_order(&h);
        for iso in [4u32, 6, 8] {
            assert!(r.new_vertex(VertexId(iso)).index() >= 6, "{iso}");
        }
    }

    #[test]
    fn apply_preserves_shape_and_distance_stats() {
        let h = sample();
        for r in [
            Relabeling::bfs_order(&h),
            Relabeling::degree_order(&h),
            Relabeling::identity(&h),
        ] {
            let g = r.apply(&h);
            assert_eq!(g.num_vertices(), h.num_vertices());
            assert_eq!(g.num_edges(), h.num_edges());
            assert_eq!(g.num_pins(), h.num_pins());
            // Label-invariant statistics are preserved bit-for-bit.
            assert_eq!(
                scalar_hyper_distance_stats(&g),
                scalar_hyper_distance_stats(&h)
            );
            assert_eq!(msbfs_distance_stats(&g), msbfs_distance_stats(&h));
            // Per-edge sizes survive as a multiset.
            let mut a: Vec<usize> = h.edges().map(|f| h.pins(f).len()).collect();
            let mut b: Vec<usize> = g.edges().map(|f| g.pins(f).len()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unmap_vertex_values_round_trips() {
        let h = sample();
        let r = Relabeling::bfs_order(&h);
        let g = r.apply(&h);
        // Degree of each relabeled vertex, mapped back, must equal the
        // original per-vertex degrees.
        let new_degrees: Vec<usize> = g.vertices().map(|v| g.vertex_degree(v)).collect();
        let unmapped = r.unmap_vertex_values(&new_degrees);
        let original: Vec<usize> = h.vertices().map(|v| h.vertex_degree(v)).collect();
        assert_eq!(unmapped, original);
    }

    #[test]
    fn identity_apply_is_identical() {
        let h = sample();
        let r = Relabeling::identity(&h);
        let g = r.apply(&h);
        for f in h.edges() {
            assert_eq!(h.pins(f), g.pins(f));
        }
    }
}
