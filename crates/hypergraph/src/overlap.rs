//! Pairwise hyperedge overlaps and degree-2 quantities.
//!
//! The paper's k-core algorithm avoids comparing vertex sets by keeping,
//! for every hyperedge, its *overlaps* — the number of vertices it shares
//! with each intersecting hyperedge. A hyperedge `f` is contained in `g`
//! exactly when its current degree equals its current overlap with `g`.
//!
//! The *degree-2* of a hyperedge `f`, `d₂(f)`, is the number of hyperedges
//! with which it shares a vertex (the hyperedges reachable from `f` by a
//! length-two path in `B(H)`); `Δ₂,F` is the maximum over all hyperedges.
//! These drive the complexity bound `O(|E|(Δ₂,F + Δ_V ln Δ₂,F))`.

use hgobs::{Deadline, DeadlineExceeded};

use crate::hash::DetMap;
use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Symmetric table of nonzero pairwise hyperedge overlaps.
#[derive(Clone, Debug)]
pub struct OverlapTable {
    /// `table[f]` maps `g` (raw id) to `|f ∩ g|`, for every `g ≠ f` with a
    /// nonzero overlap. Symmetric: `g ∈ table[f] ⇔ f ∈ table[g]`.
    /// Deterministic hashing keeps scan order — and the work counters
    /// derived from it — identical across runs.
    table: Vec<DetMap<u32, u32>>,
}

impl OverlapTable {
    /// Compute all nonzero pairwise overlaps by scanning each vertex's
    /// adjacency list: `O(Σ_v d(v)²)` expected time with hash maps
    /// (the paper uses balanced trees for a worst-case log factor).
    pub fn build(h: &Hypergraph) -> Self {
        match Self::build_with(h, &Deadline::none()) {
            Ok(table) => table,
            Err(_) => unreachable!("an unlimited deadline cannot expire"),
        }
    }

    /// [`OverlapTable::build`] under a cooperative [`Deadline`], checked
    /// every [`hgobs::CHECK_INTERVAL`] vertex-adjacency pairs. The
    /// `overlap.pairs` counter and the error's `work_done` both report
    /// the pairs actually processed.
    pub fn build_with(h: &Hypergraph, deadline: &Deadline) -> Result<Self, DeadlineExceeded> {
        let _span = hgobs::Span::enter("overlap.build");
        let mut pairs: u64 = 0;
        let mut ticks = 0u32;
        let mut table: Vec<DetMap<u32, u32>> = vec![DetMap::default(); h.num_edges()];
        for v in h.vertices() {
            let adj = h.edges_of(v);
            for (i, &f) in adj.iter().enumerate() {
                for &g in &adj[i + 1..] {
                    if deadline.tick(&mut ticks) {
                        hgobs::counter!("overlap.pairs", pairs);
                        return Err(deadline.exceeded("overlap.build", pairs));
                    }
                    pairs += 1;
                    *table[f.index()].entry(g.0).or_insert(0) += 1;
                    *table[g.index()].entry(f.0).or_insert(0) += 1;
                }
            }
        }
        hgobs::counter!("overlap.pairs", pairs);
        Ok(OverlapTable { table })
    }

    /// `|f ∩ g|` (0 when disjoint).
    pub fn overlap(&self, f: EdgeId, g: EdgeId) -> u32 {
        if f == g {
            return 0;
        }
        self.table[f.index()].get(&g.0).copied().unwrap_or(0)
    }

    /// Degree-2 of hyperedge `f`: number of hyperedges sharing a vertex
    /// with it.
    pub fn d2_edge(&self, f: EdgeId) -> usize {
        self.table[f.index()].len()
    }

    /// `Δ₂,F`: maximum degree-2 over all hyperedges.
    pub fn max_d2_edge(&self) -> usize {
        self.table.iter().map(|m| m.len()).max().unwrap_or(0)
    }

    /// Iterate over the hyperedges overlapping `f` with their overlap
    /// counts.
    pub fn overlapping(&self, f: EdgeId) -> impl Iterator<Item = (EdgeId, u32)> + '_ {
        self.table[f.index()].iter().map(|(&g, &c)| (EdgeId(g), c))
    }

    /// Consume into the raw per-edge overlap maps (used by the k-core
    /// peeling, which mutates them in place as vertices are deleted).
    pub(crate) fn into_maps(self) -> Vec<DetMap<u32, u32>> {
        self.table
    }
}

/// Degree-2 of a vertex `v`: the number of distinct vertices other than
/// `v` across all hyperedges containing `v` (vertices reachable by a
/// length-two path in `B(H)`). Drives the greedy cover bound
/// `O(Σ_v d₂(v)) ≤ O(Δ_F |E|)`.
pub fn d2_vertex(h: &Hypergraph, v: VertexId) -> usize {
    let mut stamp = vec![u32::MAX; h.num_vertices()];
    d2_vertex_stamped(h, v, &mut stamp)
}

/// [`d2_vertex`] against a caller-owned stamp array (`stamp.len() ==
/// num_vertices`, entries never equal to a live vertex id on entry —
/// `u32::MAX` works since ids are indices). Marks neighbors with `v`'s
/// own id, so one allocation serves every vertex in a sweep without any
/// clearing between rounds.
fn d2_vertex_stamped(h: &Hypergraph, v: VertexId, stamp: &mut [u32]) -> usize {
    let mut count = 0usize;
    for &f in h.edges_of(v) {
        for &w in h.pins(f) {
            if w != v && stamp[w.index()] != v.0 {
                stamp[w.index()] = v.0;
                count += 1;
            }
        }
    }
    count
}

/// Maximum vertex degree-2 over all vertices. One shared stamp array
/// replaces the per-vertex collect+sort+dedup the naive driver would do:
/// `O(|V| + Σ_v Σ_{f ∋ v} |f|)` total, no sorting.
pub fn max_d2_vertex(h: &Hypergraph) -> usize {
    let mut stamp = vec![u32::MAX; h.num_vertices()];
    h.vertices()
        .map(|v| d2_vertex_stamped(h, v, &mut stamp))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // e0={0,1,2}, e1={1,2,3}, e2={3,4}, e3={5}
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3, 4]);
        b.add_edge([5]);
        b.build()
    }

    #[test]
    fn pairwise_overlaps() {
        let t = OverlapTable::build(&toy());
        assert_eq!(t.overlap(EdgeId(0), EdgeId(1)), 2);
        assert_eq!(t.overlap(EdgeId(1), EdgeId(0)), 2);
        assert_eq!(t.overlap(EdgeId(1), EdgeId(2)), 1);
        assert_eq!(t.overlap(EdgeId(0), EdgeId(2)), 0);
        assert_eq!(t.overlap(EdgeId(0), EdgeId(0)), 0);
        assert_eq!(t.overlap(EdgeId(3), EdgeId(0)), 0);
    }

    #[test]
    fn degree2_edges() {
        let t = OverlapTable::build(&toy());
        assert_eq!(t.d2_edge(EdgeId(0)), 1);
        assert_eq!(t.d2_edge(EdgeId(1)), 2);
        assert_eq!(t.d2_edge(EdgeId(3)), 0);
        assert_eq!(t.max_d2_edge(), 2);
    }

    #[test]
    fn degree2_vertices() {
        let h = toy();
        // v1 is in e0, e1 -> reaches {0,2,3}
        assert_eq!(d2_vertex(&h, VertexId(1)), 3);
        // v3 is in e1, e2 -> reaches {1,2,4}
        assert_eq!(d2_vertex(&h, VertexId(3)), 3);
        assert_eq!(d2_vertex(&h, VertexId(5)), 0);
        assert_eq!(max_d2_vertex(&h), 3);
    }

    #[test]
    fn overlapping_iterator_symmetric() {
        let t = OverlapTable::build(&toy());
        let from0: Vec<_> = t.overlapping(EdgeId(0)).collect();
        assert_eq!(from0, vec![(EdgeId(1), 2)]);
        let mut from1: Vec<_> = t.overlapping(EdgeId(1)).collect();
        from1.sort_by_key(|p| p.0);
        assert_eq!(from1, vec![(EdgeId(0), 2), (EdgeId(2), 1)]);
    }

    #[test]
    fn identical_edges_overlap_fully() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1, 2]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        let t = OverlapTable::build(&h);
        assert_eq!(t.overlap(EdgeId(0), EdgeId(1)), 3);
    }

    #[test]
    fn empty_table() {
        let h = HypergraphBuilder::new(0).build();
        let t = OverlapTable::build(&h);
        assert_eq!(t.max_d2_edge(), 0);
    }
}
