//! Structural invariant checks, used by tests and debug assertions.

use crate::hypergraph::{Hypergraph, VertexId};

/// A violated structural invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureError(pub String);

impl std::fmt::Display for StructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hypergraph structure violation: {}", self.0)
    }
}

impl std::error::Error for StructureError {}

/// Verify the dual-CSR invariants of a [`Hypergraph`]:
///
/// * pin lists sorted, duplicate-free, in vertex range;
/// * adjacency lists sorted, duplicate-free, in edge range;
/// * the two directions describe the same incidence relation;
/// * `num_pins` consistent with both directions.
pub fn check_structure(h: &Hypergraph) -> Result<(), StructureError> {
    let n = h.num_vertices();

    let mut pin_total = 0usize;
    for f in h.edges() {
        let pins = h.pins(f);
        pin_total += pins.len();
        if !pins.windows(2).all(|w| w[0] < w[1]) {
            return Err(StructureError(format!(
                "pins of {f:?} unsorted or duplicated"
            )));
        }
        if let Some(v) = pins.iter().find(|v| v.index() >= n) {
            return Err(StructureError(format!("pin {v:?} of {f:?} out of range")));
        }
        for &v in pins {
            if !h.edges_of(v).contains(&f) {
                return Err(StructureError(format!(
                    "incidence ({v:?}, {f:?}) missing from adjacency side"
                )));
            }
        }
    }
    if pin_total != h.num_pins() {
        return Err(StructureError(format!(
            "pin count mismatch: edges sum to {pin_total}, num_pins() = {}",
            h.num_pins()
        )));
    }

    let mut adj_total = 0usize;
    for v in h.vertices() {
        let adj = h.edges_of(v);
        adj_total += adj.len();
        if !adj.windows(2).all(|w| w[0] < w[1]) {
            return Err(StructureError(format!(
                "adjacency of {v:?} unsorted or duplicated"
            )));
        }
        for &f in adj {
            if f.index() >= h.num_edges() {
                return Err(StructureError(format!("edge {f:?} of {v:?} out of range")));
            }
            if !h.contains(f, v) {
                return Err(StructureError(format!(
                    "incidence ({v:?}, {f:?}) missing from pin side"
                )));
            }
        }
    }
    if adj_total != h.num_pins() {
        return Err(StructureError(format!(
            "adjacency count mismatch: vertices sum to {adj_total}, num_pins() = {}",
            h.num_pins()
        )));
    }
    Ok(())
}

/// Verify the k-core invariant on a standalone core hypergraph: every
/// vertex has degree ≥ k and the hypergraph is reduced.
pub fn check_kcore_invariant(core: &Hypergraph, k: u32) -> Result<(), StructureError> {
    check_structure(core)?;
    if let Some(v) = core
        .vertices()
        .find(|&v| (core.vertex_degree(v) as u32) < k)
    {
        return Err(StructureError(format!(
            "vertex {v:?} has degree {} < k = {k} in claimed k-core",
            core.vertex_degree(VertexId(v.0))
        )));
    }
    let dead = crate::reduce::non_maximal_edges(core);
    if !dead.is_empty() {
        return Err(StructureError(format!(
            "claimed k-core is not reduced: non-maximal edges {dead:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    #[test]
    fn valid_hypergraph_passes() {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        check_structure(&b.build()).unwrap();
    }

    #[test]
    fn empty_passes() {
        check_structure(&HypergraphBuilder::new(0).build()).unwrap();
    }

    #[test]
    fn kcore_invariant_detects_low_degree() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        let h = b.build();
        assert!(check_kcore_invariant(&h, 1).is_ok());
        assert!(check_kcore_invariant(&h, 2).is_err());
    }

    #[test]
    fn kcore_invariant_detects_unreduced() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1, 2]);
        b.add_edge([0, 1]);
        b.add_edge([0, 2]);
        b.add_edge([1, 2]);
        let h = b.build();
        // every vertex has degree >= 1 but containment exists
        assert!(check_kcore_invariant(&h, 1).is_err());
    }
}
