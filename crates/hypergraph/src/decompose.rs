//! One-pass incremental k-core decomposition over the CSR overlap engine.
//!
//! Hypergraph k-cores are nested (property-tested in this crate): the
//! (k+1)-core is a sub-hypergraph of the k-core, and peeling is
//! confluent — any order of deleting sub-threshold vertices reaches the
//! same fixpoint. So the peeler state that survives the k-peel is a
//! valid starting point for k+1: instead of rebuilding the `O(Σ_v d(v)²)`
//! overlap table for every `k` (what the per-k drivers in
//! [`crate::kcore`] do), [`decompose`] builds it **once**, runs the
//! reduce sweep once, and then sweeps `k = 1, 2, …` re-seeding the queue
//! from the survivors, recording each level's sizes and stamping core
//! numbers as it goes. `core_profile`, `core_numbers` and `max_core` all
//! fall out of the single sweep.
//!
//! The peeling rules are identical to the hash-map [`crate::kcore`]
//! peeler (the property-test oracle): a hyperedge dies as soon as it is
//! contained in an alive hyperedge of higher id-breaking rank, and ties
//! between identical hyperedges keep the lowest id. The surviving
//! vertex/edge id sets match the oracle's for every `k`.

use hgobs::{Deadline, DeadlineExceeded};

use crate::csr_overlap::CsrOverlap;
use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::kcore::KCore;

/// Everything one incremental sweep produces.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// `(k, vertices, edges)` for every non-empty k-core, `k = 1..=k_max`
    /// (same shape as [`crate::core_profile`]).
    pub profile: Vec<(u32, usize, usize)>,
    /// Per-vertex core numbers: the largest `k` whose k-core contains the
    /// vertex, 0 outside even the 1-core.
    pub core_numbers: Vec<u32>,
    /// The deepest non-empty core, or `None` when even the 1-core is
    /// empty.
    pub max_core: Option<KCore>,
}

/// Peeling state over a [`CsrOverlap`]; flat arrays only, no hashing.
struct CsrPeeler<'h> {
    h: &'h Hypergraph,
    ov: CsrOverlap,
    alive_v: Vec<bool>,
    alive_e: Vec<bool>,
    deg_v: Vec<u32>,
    deg_e: Vec<u32>,
    edges_alive: usize,
    queue: Vec<u32>,
    queued: Vec<bool>,
    k: u32,
    /// Scratch for the alive edges through a vertex being deleted,
    /// reused across deletions to avoid per-vertex allocation.
    scratch: Vec<u32>,
    vertices_peeled: u64,
    edges_deleted: u64,
    nonmax_checks: u64,
    overlap_probes: u64,
}

impl<'h> CsrPeeler<'h> {
    fn new(h: &'h Hypergraph, ov: CsrOverlap) -> Self {
        debug_assert_eq!(ov.num_edges(), h.num_edges());
        CsrPeeler {
            h,
            ov,
            alive_v: vec![true; h.num_vertices()],
            alive_e: vec![true; h.num_edges()],
            deg_v: h.vertices().map(|v| h.vertex_degree(v) as u32).collect(),
            deg_e: h.edges().map(|f| h.edge_degree(f) as u32).collect(),
            edges_alive: h.num_edges(),
            queue: Vec::new(),
            queued: vec![false; h.num_vertices()],
            k: 0,
            scratch: Vec::new(),
            vertices_peeled: 0,
            edges_deleted: 0,
            nonmax_checks: 0,
            overlap_probes: 0,
        }
    }

    /// `true` iff alive `f` is currently contained in some alive `g ≠ f`
    /// (identical sets: the higher id is the contained one), or is empty.
    /// Zeroed entries are dead neighbors — skipped without a liveness
    /// lookup thanks to the [`CsrOverlap`] kill invariant.
    fn is_non_maximal(&mut self, f: usize) -> bool {
        self.nonmax_checks += 1;
        let df = self.deg_e[f];
        if df == 0 {
            return true;
        }
        let (lo, hi) = self.ov.bounds(f);
        for i in lo..hi {
            let c = self.ov.counts[i];
            if c == 0 {
                continue;
            }
            self.overlap_probes += 1;
            if c == df {
                let g = self.ov.neighbors[i] as usize;
                let dg = self.deg_e[g];
                if dg > df || (dg == df && g < f) {
                    return true;
                }
            }
        }
        false
    }

    /// Delete hyperedge `f`: zero its overlap entries both ways,
    /// decrement member vertex degrees, queue vertices falling below `k`.
    fn delete_edge(&mut self, f: usize) {
        debug_assert!(self.alive_e[f]);
        self.alive_e[f] = false;
        self.edges_alive -= 1;
        self.edges_deleted += 1;
        self.ov.kill_edge(f);
        for &w in self.h.pins(EdgeId(f as u32)) {
            let w = w.index();
            if self.alive_v[w] {
                self.deg_v[w] -= 1;
                if self.deg_v[w] < self.k && !self.queued[w] {
                    self.queued[w] = true;
                    self.queue.push(w as u32);
                }
            }
        }
    }

    /// Delete vertex `v` from every alive hyperedge containing it,
    /// updating overlaps, then delete hyperedges that stop being maximal.
    fn delete_vertex(&mut self, v: usize) {
        debug_assert!(self.alive_v[v]);
        self.alive_v[v] = false;
        self.vertices_peeled += 1;

        let mut alive_edges = std::mem::take(&mut self.scratch);
        alive_edges.clear();
        alive_edges.extend(
            self.h
                .edges_of(VertexId(v as u32))
                .iter()
                .map(|f| f.0)
                .filter(|&f| self.alive_e[f as usize]),
        );

        // All pairs of alive edges through v lose one shared vertex.
        for (i, &f) in alive_edges.iter().enumerate() {
            for &g in &alive_edges[i + 1..] {
                self.ov.decrement_pair(f as usize, g);
            }
        }
        // Each alive edge containing v loses one member.
        for &f in &alive_edges {
            self.deg_e[f as usize] -= 1;
        }
        // Only these degree-decremented edges can newly be non-maximal.
        for &f in &alive_edges {
            let f = f as usize;
            if self.alive_e[f] && self.is_non_maximal(f) {
                self.delete_edge(f);
            }
        }
        self.scratch = alive_edges;
    }

    /// Initial sweep: make the hypergraph reduced before peeling. One
    /// clock read at entry catches pre-expired deadlines with zero work;
    /// inside the loop the amortized [`Deadline::tick`] reads the clock
    /// only every [`hgobs::CHECK_INTERVAL`] edges, so the per-edge cost
    /// is a counter increment instead of a syscall-backed clock read.
    fn reduce_sweep(
        &mut self,
        deadline: &Deadline,
        ticks: &mut u32,
        phase: &'static str,
    ) -> Result<(), DeadlineExceeded> {
        if deadline.expired() {
            return Err(deadline.exceeded(phase, self.edges_deleted));
        }
        for f in 0..self.h.num_edges() {
            if deadline.tick(ticks) {
                return Err(deadline.exceeded(phase, self.edges_deleted));
            }
            if self.alive_e[f] && self.is_non_maximal(f) {
                self.delete_edge(f);
            }
        }
        Ok(())
    }

    #[inline]
    fn enqueue_if_below(&mut self, v: usize) {
        if self.deg_v[v] < self.k && !self.queued[v] {
            self.queued[v] = true;
            self.queue.push(v as u32);
        }
    }

    /// Run peeling to fixpoint. On expiry the error's `work_done` is the
    /// total number of vertices peeled so far (across levels, for the
    /// incremental sweep). Same check structure as
    /// [`CsrPeeler::reduce_sweep`]: one clock read at entry, amortized
    /// ticks per peeled vertex — the caller-owned counter carries across
    /// levels, so a cascade of tiny levels still reads the clock only
    /// every [`hgobs::CHECK_INTERVAL`] vertices overall.
    fn run(
        &mut self,
        deadline: &Deadline,
        ticks: &mut u32,
        phase: &'static str,
    ) -> Result<(), DeadlineExceeded> {
        if deadline.expired() {
            return Err(deadline.exceeded(phase, self.vertices_peeled));
        }
        while let Some(v) = self.queue.pop() {
            if deadline.tick(ticks) {
                return Err(deadline.exceeded(phase, self.vertices_peeled));
            }
            let v = v as usize;
            self.queued[v] = false;
            if self.alive_v[v] {
                self.delete_vertex(v);
            }
        }
        Ok(())
    }

    /// Flush the accumulated counters to the sink (no-op when disabled).
    fn flush_metrics(&self) {
        hgobs::counter!("kcore.csr.vertices_peeled", self.vertices_peeled);
        hgobs::counter!("kcore.csr.edges_deleted", self.edges_deleted);
        hgobs::counter!("kcore.csr.nonmax_checks", self.nonmax_checks);
        hgobs::counter!("kcore.csr.overlap_probes", self.overlap_probes);
    }

    fn extract(&self, k: u32) -> KCore {
        let (sub, vmap, emap) = self.h.sub_hypergraph(&self.alive_v, &self.alive_e, false);
        KCore {
            k,
            vertices: vmap,
            edges: emap,
            sub,
        }
    }
}

/// Compute the full k-core decomposition in one overlap build plus one
/// monotone peel sweep. See the module docs for why the incremental
/// restart at each level is sound.
pub fn decompose(h: &Hypergraph) -> Decomposition {
    match decompose_with(h, &Deadline::none()) {
        Ok(d) => d,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`decompose`] under a cooperative [`Deadline`] (phase
/// `kcore.decompose` for the sweep; the overlap build reports its own
/// phase). The error's `work_done` is edges deleted during the reduce
/// sweep or total vertices peeled during levelling; partial work counters
/// are flushed even on expiry.
pub fn decompose_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Decomposition, DeadlineExceeded> {
    let ov = CsrOverlap::build_with(h, deadline)?;
    decompose_from_overlap(h, ov, deadline)
}

/// [`decompose_with`] starting from an already-built overlap table —
/// `ov` must be freshly built from `h` (this is how `parcore` plugs its
/// sharded parallel builder in front of the sequential sweep).
pub fn decompose_from_overlap(
    h: &Hypergraph,
    ov: CsrOverlap,
    deadline: &Deadline,
) -> Result<Decomposition, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.decompose");
    let trace = deadline.trace();
    let mut p = CsrPeeler::new(h, ov);
    let mut ticks = 0u32;
    let mut profile: Vec<(u32, usize, usize)> = Vec::new();
    let mut core_numbers = vec![0u32; h.num_vertices()];
    let mut snapshot: Option<(Vec<bool>, Vec<bool>)> = None;
    let swept = (|| {
        {
            let mut tp = trace.phase("kcore.reduce");
            p.reduce_sweep(deadline, &mut ticks, "kcore.decompose")?;
            tp.add_work(p.edges_deleted);
        }
        // Survivor list, compacted at each level so seeding k+1 costs
        // O(|k-core|) rather than O(|V|).
        let mut alive_list: Vec<u32> = (0..h.num_vertices() as u32).collect();
        let mut k = 1u32;
        loop {
            hgobs::counter!("kcore.rounds");
            // One trace event per peel level, work = vertices peeled at
            // this level (recorded on drop even when the deadline fires
            // mid-level, so partial traces show where the time went).
            let mut tp = trace.phase("kcore.peel");
            let peeled_before = p.vertices_peeled;
            p.k = k;
            alive_list.retain(|&v| p.alive_v[v as usize]);
            for &v in &alive_list {
                p.enqueue_if_below(v as usize);
            }
            p.run(deadline, &mut ticks, "kcore.decompose")?;
            tp.add_work(p.vertices_peeled - peeled_before);
            alive_list.retain(|&v| p.alive_v[v as usize]);
            if alive_list.is_empty() {
                return Ok(());
            }
            profile.push((k, alive_list.len(), p.edges_alive));
            for &v in &alive_list {
                core_numbers[v as usize] = k;
            }
            snapshot = Some((p.alive_v.clone(), p.alive_e.clone()));
            k += 1;
        }
    })();
    p.flush_metrics();
    swept?;
    let max_core = snapshot.map(|(alive_v, alive_e)| {
        let k_max = profile
            .last()
            .expect("snapshot implies a non-empty level")
            .0;
        let (sub, vmap, emap) = h.sub_hypergraph(&alive_v, &alive_e, false);
        KCore {
            k: k_max,
            vertices: vmap,
            edges: emap,
            sub,
        }
    });
    Ok(Decomposition {
        profile,
        core_numbers,
        max_core,
    })
}

/// Single-`k` core via the CSR engine — same result as
/// [`crate::hypergraph_kcore`] (the hash-map oracle), minus the hashing.
pub fn csr_kcore(h: &Hypergraph, k: u32) -> KCore {
    match csr_kcore_with(h, k, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`csr_kcore`] under a cooperative [`Deadline`], checked during the
/// overlap build (per pair), the reduce sweep (per edge, phase
/// `kcore.csr.reduce`) and the peel (per vertex, phase `kcore.csr.peel`).
pub fn csr_kcore_with(
    h: &Hypergraph,
    k: u32,
    deadline: &Deadline,
) -> Result<KCore, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.csr");
    hgobs::counter!("kcore.rounds");
    let ov = CsrOverlap::build_with(h, deadline)?;
    let trace = deadline.trace();
    let mut p = CsrPeeler::new(h, ov);
    let mut ticks = 0u32;
    p.k = k;
    let peeled = (|| {
        {
            let mut tp = trace.phase("kcore.reduce");
            p.reduce_sweep(deadline, &mut ticks, "kcore.csr.reduce")?;
            tp.add_work(p.edges_deleted);
        }
        let mut tp = trace.phase("kcore.peel");
        for v in 0..h.num_vertices() {
            if p.alive_v[v] {
                p.enqueue_if_below(v);
            }
        }
        let out = p.run(deadline, &mut ticks, "kcore.csr.peel");
        tp.add_work(p.vertices_peeled);
        out
    })();
    p.flush_metrics();
    peeled?;
    Ok(p.extract(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::{core_numbers_per_k, core_profile_per_k, hypergraph_kcore, max_core_linear};
    use crate::HypergraphBuilder;

    fn triangle_like() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 3]);
        b.add_edge([1, 2, 4]);
        b.add_edge([0, 2, 5]);
        b.build()
    }

    fn assert_matches_oracle(h: &Hypergraph) {
        let d = decompose(h);
        assert_eq!(d.profile, core_profile_per_k(h), "profile");
        assert_eq!(d.core_numbers, core_numbers_per_k(h), "core numbers");
        match (d.max_core, max_core_linear(h)) {
            (Some(a), Some(b)) => {
                assert_eq!(a.k, b.k);
                assert_eq!(a.vertices, b.vertices);
                assert_eq!(a.edges, b.edges);
            }
            (None, None) => {}
            (a, b) => panic!(
                "max_core disagreement: incremental {:?}, oracle {:?}",
                a.map(|c| c.k),
                b.map(|c| c.k)
            ),
        }
        for k in 0..=4u32 {
            let a = csr_kcore(h, k);
            let b = hypergraph_kcore(h, k);
            assert_eq!(a.vertices, b.vertices, "k = {k}");
            assert_eq!(a.edges, b.edges, "k = {k}");
        }
    }

    #[test]
    fn matches_oracle_on_small_cases() {
        assert_matches_oracle(&triangle_like());

        // Fan: four copies of {0,1,2} plus distinct tails.
        let mut b = HypergraphBuilder::new(7);
        for t in 3..7u32 {
            b.add_edge([0, 1, 2, t]);
        }
        assert_matches_oracle(&b.build());

        // Nested + duplicate edges.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2, 3]);
        b.add_edge([0, 1, 2]);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2]);
        b.add_edge([]);
        assert_matches_oracle(&b.build());

        // Ring of triples: a 2-core (every vertex in 3 edges, overlaps 2).
        let mut b = HypergraphBuilder::new(8);
        for s in 0..8u32 {
            b.add_edge([s, (s + 1) % 8, (s + 2) % 8]);
        }
        assert_matches_oracle(&b.build());

        // Empty and isolated-vertex cases.
        assert_matches_oracle(&HypergraphBuilder::new(0).build());
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        assert_matches_oracle(&b.build());
    }

    #[test]
    fn decompose_profile_is_strictly_levelled() {
        let h = triangle_like();
        let d = decompose(&h);
        assert_eq!(d.profile, vec![(1, 6, 3), (2, 3, 3)]);
        assert_eq!(d.core_numbers, vec![2, 2, 2, 1, 1, 1]);
        let mc = d.max_core.unwrap();
        assert_eq!(mc.k, 2);
        assert_eq!(mc.vertices, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn traced_decompose_records_reduce_and_peel_phases() {
        let h = triangle_like();
        let trace = hgobs::TraceCtx::new(11);
        let dl = hgobs::Deadline::none().with_trace(trace.clone());
        let d = decompose_with(&h, &dl).unwrap();
        let events = trace.events();
        assert_eq!(
            events.iter().filter(|e| e.phase == "kcore.reduce").count(),
            1,
            "{events:?}"
        );
        // One peel event per level: every profile level plus the final
        // sweep that empties the structure.
        let peels: Vec<_> = events.iter().filter(|e| e.phase == "kcore.peel").collect();
        assert_eq!(peels.len(), d.profile.len() + 1, "{events:?}");
        // Every vertex is peeled exactly once across the levels.
        assert_eq!(peels.iter().map(|e| e.work).sum::<u64>(), 6);
    }

    #[test]
    fn csr_kcore_k0_keeps_isolated_vertices() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(csr_kcore(&h, 0).vertices.len(), 3);
        assert_eq!(csr_kcore(&h, 1).vertices.len(), 2);
    }

    #[test]
    fn pre_expired_deadline_stops_decompose_with_zero_work() {
        // Disjoint pairs: no overlap pairs at all, so the build cannot
        // tick; the reduce sweep's per-edge check fires first.
        let mut b = HypergraphBuilder::new(64);
        for i in 0..32u32 {
            b.add_edge([2 * i, 2 * i + 1]);
        }
        let h = b.build();
        let dl = Deadline::after(std::time::Duration::ZERO);
        let err = decompose_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "kcore.decompose");
        assert_eq!(err.work_done, 0, "{err:?}");
        assert!(csr_kcore_with(&h, 2, &dl).is_err());
    }

    #[test]
    fn deadline_fires_mid_decompose_with_partial_work() {
        // 60k disjoint pair edges: the overlap build is trivial and the
        // k=1 level keeps everything, so nearly all the time is the k=2
        // level peeling 120k vertices. Escalate the budget until one
        // lands mid-sweep; a machine that finishes inside 1ms just ends
        // at Ok (the expiry path is still covered by the pre-expired
        // test above).
        let n = 60_000u32;
        let mut b = HypergraphBuilder::new(2 * n as usize);
        for i in 0..n {
            b.add_edge([2 * i, 2 * i + 1]);
        }
        let h = b.build();
        for ms in [1u64, 2, 4, 8, 16, 32, 64] {
            match decompose_with(&h, &Deadline::after_ms(ms)) {
                Err(err) if err.work_done > 0 => {
                    assert_eq!(err.phase, "kcore.decompose", "{err:?}");
                    assert!(err.work_done < 2 * n as u64, "{err:?}");
                    return;
                }
                Err(err) => {
                    // Expired before any vertex was peeled; phase must
                    // still be the sweep's.
                    assert_eq!(err.phase, "kcore.decompose", "{err:?}");
                    continue;
                }
                Ok(d) => {
                    assert_eq!(d.profile, vec![(1, 2 * n as usize, n as usize)]);
                    return;
                }
            }
        }
    }

    #[test]
    fn unlimited_deadline_matches_plain() {
        let h = triangle_like();
        let a = decompose(&h);
        let b = decompose_with(&h, &Deadline::none()).unwrap();
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.core_numbers, b.core_numbers);
    }
}
