//! Generalized (k, s)-cores — an extension beyond the paper.
//!
//! Later hypergraph-mining literature generalizes the core idea along a
//! second axis: the **(k, s)-core** is the maximal sub-hypergraph in
//! which every vertex belongs to at least `k` hyperedges *of size at
//! least `s`* (hyperedges that shrink below `s` are discarded rather
//! than reduced). With `s = 1` and no containment rule this is plain
//! degree peeling; the paper's k-core differs by keeping size-≥1 edges
//! and instead removing *non-maximal* ones. Both collapse to the graph
//! k-core on 2-uniform hypergraphs (for `s = 2`).
//!
//! Implemented on [`crate::mutable::MutableHypergraph`], demonstrating
//! the mutable structure as the substrate for peeling variants.

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::mutable::MutableHypergraph;

/// Result of a (k, s)-core computation.
#[derive(Clone, Debug)]
pub struct KsCore {
    /// The degree threshold `k`.
    pub k: u32,
    /// The hyperedge-size threshold `s`.
    pub s: u32,
    /// Surviving vertices, ascending original ids.
    pub vertices: Vec<VertexId>,
    /// Surviving hyperedges, ascending original ids.
    pub edges: Vec<EdgeId>,
    /// The core as a standalone hypergraph (vertex `i` = `vertices[i]`).
    pub sub: Hypergraph,
}

impl KsCore {
    /// `true` when no vertex survives.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Compute the (k, s)-core by alternating peels: drop hyperedges smaller
/// than `s`, then vertices with fewer than `k` surviving hyperedges,
/// until stable. O(|E| log) overall — every incidence is deleted at most
/// once.
pub fn ks_core(h: &Hypergraph, k: u32, s: u32) -> KsCore {
    let mut m = MutableHypergraph::from_hypergraph(h);
    loop {
        let small: Vec<EdgeId> = m
            .edges()
            .filter(|&f| (m.edge_degree(f) as u32) < s)
            .collect();
        for f in &small {
            m.delete_edge(*f);
        }
        let doomed: Vec<VertexId> = m
            .vertices()
            .filter(|&v| (m.vertex_degree(v) as u32) < k)
            .collect();
        if small.is_empty() && doomed.is_empty() {
            break;
        }
        for v in doomed {
            m.delete_vertex(v);
        }
    }
    let (sub, vertices, edges) = m.freeze();
    KsCore {
        k,
        s,
        vertices,
        edges,
        sub,
    }
}

/// The largest `k` with a non-empty (k, s)-core at fixed `s`, with that
/// core; `None` if even `k = 1` is empty.
pub fn max_ks_core(h: &Hypergraph, s: u32) -> Option<KsCore> {
    let mut best: Option<KsCore> = None;
    let mut k = 1u32;
    loop {
        let core = ks_core(h, k, s);
        if core.is_empty() {
            return best;
        }
        best = Some(core);
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // Two big overlapping edges + pair edges off the side.
        let mut b = HypergraphBuilder::new(7);
        b.add_edge([0, 1, 2, 3]);
        b.add_edge([1, 2, 3, 4]);
        b.add_edge([0, 5]);
        b.add_edge([5, 6]);
        b.build()
    }

    #[test]
    fn s_threshold_drops_small_edges() {
        let h = toy();
        let core = ks_core(&h, 1, 3);
        // Pair edges die immediately; vertices 5, 6 follow; 0..=4 stay.
        assert_eq!(core.edges, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(core.vertices, (0..5).map(VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn k1_s1_keeps_all_covered_vertices() {
        let h = toy();
        let core = ks_core(&h, 1, 1);
        assert_eq!(core.vertices.len(), 7);
        assert_eq!(core.edges.len(), 4);
    }

    #[test]
    fn cascade_between_thresholds() {
        let h = toy();
        // k=2, s=3: vertices 0 and 4 have only one size->=3 edge each...
        // 0 is in e0 (size 4) and e2 (pair, dies): degree 1 < 2 -> dies;
        // then e0 = {1,2,3} (still size 3), e1 = {1,2,3,4}; 4 has degree
        // 1 -> dies; e1 = {1,2,3}. Vertices 1,2,3 keep degree 2. Stable.
        let core = ks_core(&h, 2, 3);
        assert_eq!(core.vertices, vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(core.edges.len(), 2);
        assert!(core.sub.vertices().all(|v| core.sub.vertex_degree(v) >= 2));
        assert!(core.sub.edges().all(|f| core.sub.edge_degree(f) >= 3));
    }

    #[test]
    fn definition_holds_on_random_inputs() {
        for seed in 0..5u64 {
            // Deterministic pseudo-random hypergraph via an LCG.
            let mut b = HypergraphBuilder::new(30);
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for _ in 0..40 {
                let mut pins = Vec::new();
                for _ in 0..(1 + (x >> 60) % 5) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    pins.push(((x >> 33) % 30) as u32);
                }
                b.add_edge(pins);
            }
            let h = b.build();
            for (k, s) in [(1u32, 2u32), (2, 2), (2, 3), (3, 2)] {
                let core = ks_core(&h, k, s);
                crate::validate::check_structure(&core.sub).unwrap();
                assert!(core
                    .sub
                    .vertices()
                    .all(|v| core.sub.vertex_degree(v) >= k as usize));
                assert!(core
                    .sub
                    .edges()
                    .all(|f| core.sub.edge_degree(f) >= s as usize));
            }
        }
    }

    #[test]
    fn two_uniform_s2_matches_graph_core() {
        // On a simple-graph-as-hypergraph, the (k, 2)-core vertex set is
        // the graph k-core.
        let mut hb = HypergraphBuilder::new(6);
        let mut gb = graphcore::GraphBuilder::new(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)] {
            hb.add_edge([u, v]);
            gb.add_edge(graphcore::NodeId(u), graphcore::NodeId(v));
        }
        let h = hb.build();
        let g = gb.build();
        let d = graphcore::core_decomposition(&g);
        for k in 1..=3u32 {
            let hv: Vec<u32> = ks_core(&h, k, 2).vertices.iter().map(|v| v.0).collect();
            let gv: Vec<u32> = d.k_core_nodes(k).iter().map(|u| u.0).collect();
            assert_eq!(hv, gv, "k = {k}");
        }
    }

    #[test]
    fn max_ks_core_monotone_in_s() {
        let h = toy();
        let m1 = max_ks_core(&h, 1).unwrap();
        let m4 = max_ks_core(&h, 4);
        assert!(m1.k >= m4.map(|c| c.k).unwrap_or(0));
        assert!(max_ks_core(&h, 5).is_none());
    }

    #[test]
    fn relation_to_paper_core() {
        // The paper's k-core keeps shrunken-but-maximal edges, so its
        // vertex set can only be a superset of the (k, 2)-core... not in
        // general — but on instances with no singleton-surviving edges
        // they often agree. Check both are valid on the toy.
        let h = toy();
        let paper = crate::hypergraph_kcore(&h, 2);
        let ks = ks_core(&h, 2, 1);
        assert!(crate::validate::check_kcore_invariant(&paper.sub, 2).is_ok());
        assert!(ks.sub.vertices().all(|v| ks.sub.vertex_degree(v) >= 2));
    }
}
