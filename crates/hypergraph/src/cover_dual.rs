//! Dual / primal-dual vertex cover algorithms (paper §4.1: "Dual and
//! primal-dual algorithms with approximation ratios that depend on the
//! maximum degree of a vertex can also be designed … This is the subject
//! of current work.") — implemented here as the A3 ablation partner of the
//! greedy algorithm.
//!
//! The pricing (Bar-Yehuda–Even) scheme treats the LP dual: each uncovered
//! hyperedge `f` raises its dual variable `y_f` until some member vertex's
//! residual weight hits zero; all such tight vertices join the cover. The
//! resulting cover costs at most `Δ_F · Σ y_f ≤ Δ_F · OPT`, where `Δ_F`
//! is the maximum hyperedge cardinality, and `Σ y_f` is itself a certified
//! lower bound on the optimal cover weight — so every run reports a
//! per-instance approximation certificate.

use crate::cover::{CoverError, CoverResult};
use crate::hypergraph::{Hypergraph, VertexId};

/// Outcome of the primal-dual cover: the cover plus its dual certificate.
#[derive(Clone, Debug)]
pub struct PricingCover {
    /// The (pruned) cover.
    pub cover: CoverResult,
    /// `Σ_f y_f`: a feasible dual objective, hence a lower bound on the
    /// minimum cover weight.
    pub dual_lower_bound: f64,
    /// `cover.total_weight / dual_lower_bound` (∞ if the bound is 0 and
    /// the cover is not free): the certified approximation ratio of this
    /// run, always ≤ `Δ_F`.
    pub certified_ratio: f64,
}

/// Primal-dual (pricing) vertex cover with reverse-delete pruning.
///
/// Hyperedges are processed in increasing id order; ties in tightness are
/// resolved by vertex id, so the result is deterministic.
pub fn pricing_vertex_cover(
    h: &Hypergraph,
    weight: impl Fn(VertexId) -> f64,
) -> Result<PricingCover, CoverError> {
    let _span = hgobs::Span::enter("cover.pricing");
    let weights: Vec<f64> = h.vertices().map(&weight).collect();
    for v in h.vertices() {
        let w = weights[v.index()];
        if !w.is_finite() || w < 0.0 {
            return Err(CoverError::BadWeight(v));
        }
    }
    if let Some(f) = h.edges().find(|&f| h.edge_degree(f) == 0) {
        return Err(CoverError::EmptyEdge(f));
    }

    let mut residual = weights.clone();
    let mut in_cover = vec![false; h.num_vertices()];
    let mut order: Vec<VertexId> = Vec::new();
    let mut dual_sum = 0.0f64;
    let mut dual_raises: u64 = 0;
    let mut pruned: u64 = 0;

    for f in h.edges() {
        if h.pins(f).iter().any(|v| in_cover[v.index()]) {
            continue;
        }
        let eps = h
            .pins(f)
            .iter()
            .map(|v| residual[v.index()])
            .fold(f64::INFINITY, f64::min);
        dual_sum += eps;
        dual_raises += 1;
        for &v in h.pins(f) {
            residual[v.index()] -= eps;
            if residual[v.index()] <= 1e-12 && !in_cover[v.index()] {
                in_cover[v.index()] = true;
                order.push(v);
            }
        }
    }

    // Reverse-delete pruning: drop vertices (latest first) whose removal
    // keeps the cover feasible. Track per-edge cover multiplicity so each
    // feasibility check is O(d(v) + Σ_{f∋v} 1).
    let mut cover_count: Vec<u32> = vec![0; h.num_edges()];
    for f in h.edges() {
        cover_count[f.index()] = h.pins(f).iter().filter(|v| in_cover[v.index()]).count() as u32;
    }
    for &v in order.iter().rev() {
        let removable = h.edges_of(v).iter().all(|f| cover_count[f.index()] >= 2);
        if removable {
            pruned += 1;
            in_cover[v.index()] = false;
            for &f in h.edges_of(v) {
                cover_count[f.index()] -= 1;
            }
        }
    }

    let vertices: Vec<VertexId> = order
        .iter()
        .copied()
        .filter(|v| in_cover[v.index()])
        .collect();
    hgobs::counter!("cover.dual_raises", dual_raises);
    hgobs::counter!("cover.pruned", pruned);
    hgobs::counter!("cover.pricing_picks", vertices.len());
    let total_weight: f64 = vertices.iter().map(|&v| weights[v.index()]).sum();
    let certified_ratio = if dual_sum > 0.0 {
        total_weight / dual_sum
    } else if total_weight == 0.0 {
        1.0
    } else {
        f64::INFINITY
    };
    let iterations = vertices.len();
    Ok(PricingCover {
        cover: CoverResult {
            vertices,
            total_weight,
            iterations,
        },
        dual_lower_bound: dual_sum,
        certified_ratio,
    })
}

/// Just the dual lower bound `Σ y_f` from a pricing pass — a certified
/// lower bound on the minimum-weight vertex cover, usable to report
/// empirical approximation ratios for *any* cover algorithm.
pub fn dual_lower_bound(
    h: &Hypergraph,
    weight: impl Fn(VertexId) -> f64,
) -> Result<f64, CoverError> {
    pricing_vertex_cover(h, weight).map(|p| p.dual_lower_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::is_vertex_cover;
    use crate::HypergraphBuilder;

    fn path_edges() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    #[test]
    fn produces_valid_cover() {
        let h = path_edges();
        let p = pricing_vertex_cover(&h, |_| 1.0).unwrap();
        assert!(is_vertex_cover(&h, &p.cover.vertices));
        assert!(p.dual_lower_bound > 0.0);
        assert!(p.cover.total_weight >= p.dual_lower_bound - 1e-9);
    }

    #[test]
    fn certified_ratio_bounded_by_max_edge_degree() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3, 4]);
        b.add_edge([4, 5, 0]);
        b.add_edge([1, 3, 5]);
        let h = b.build();
        let p = pricing_vertex_cover(&h, |v| 1.0 + v.0 as f64).unwrap();
        assert!(is_vertex_cover(&h, &p.cover.vertices));
        assert!(p.certified_ratio <= h.max_edge_degree() as f64 + 1e-9);
    }

    #[test]
    fn pruning_removes_redundancy() {
        // Star: pricing on edges in order tightens every leaf AND the hub;
        // pruning must strip the redundant vertices.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([0, 2]);
        b.add_edge([0, 3]);
        let h = b.build();
        let p = pricing_vertex_cover(&h, |_| 1.0).unwrap();
        assert!(is_vertex_cover(&h, &p.cover.vertices));
        // Edge {0,1} tightens both 0 and 1; the rest are then covered by 0.
        // Pruning removes 1 if 0 covers its only edge — 1's edge has both
        // endpoints, so 1 goes. Final cover: just the hub.
        assert_eq!(p.cover.vertices, vec![VertexId(0)]);
    }

    #[test]
    fn dual_bound_is_sound_vs_exhaustive() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 3]);
        b.add_edge([2, 4, 5]);
        b.add_edge([3, 5]);
        let h = b.build();
        let weight = |v: VertexId| 1.0 + (v.0 % 2) as f64;
        let lb = dual_lower_bound(&h, weight).unwrap();
        let opt = crate::naive::exhaustive_min_cover(&h, weight).unwrap();
        let opt_w: f64 = opt.iter().map(|&v| weight(v)).sum();
        assert!(lb <= opt_w + 1e-9, "dual {lb} exceeds OPT {opt_w}");
    }

    #[test]
    fn empty_edge_rejected() {
        let mut b = HypergraphBuilder::new(1);
        b.add_edge([]);
        let h = b.build();
        assert!(matches!(
            pricing_vertex_cover(&h, |_| 1.0),
            Err(CoverError::EmptyEdge(_))
        ));
    }

    #[test]
    fn no_edges_is_free() {
        let h = HypergraphBuilder::new(2).build();
        let p = pricing_vertex_cover(&h, |_| 1.0).unwrap();
        assert!(p.cover.vertices.is_empty());
        assert_eq!(p.dual_lower_bound, 0.0);
        assert_eq!(p.certified_ratio, 1.0);
    }

    #[test]
    fn zero_weight_vertices_tighten_immediately() {
        let h = path_edges();
        let p = pricing_vertex_cover(&h, |v| if v.0 == 1 || v.0 == 2 { 0.0 } else { 5.0 }).unwrap();
        assert!(is_vertex_cover(&h, &p.cover.vertices));
        assert_eq!(p.cover.total_weight, 0.0);
        assert_eq!(p.certified_ratio, 1.0);
    }
}
