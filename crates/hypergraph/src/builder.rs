//! Accumulates hyperedges and freezes them into a dual-CSR [`Hypergraph`].

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Builder for a [`Hypergraph`].
///
/// Hyperedges are added as iterables of raw `u32` vertex ids; within each
/// hyperedge duplicates are merged and the pin list is sorted. Identical
/// hyperedges are *kept* (deduplicating containment is the job of the
/// reduced-hypergraph computation, [`crate::reduce()`]). Empty hyperedges are
/// allowed.
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    num_vertices: usize,
    /// Flattened pins plus per-edge offsets.
    pins: Vec<u32>,
    offsets: Vec<u32>,
}

impl HypergraphBuilder {
    /// Builder over the vertex set `0..num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex count exceeds u32"
        );
        HypergraphBuilder {
            num_vertices,
            pins: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Number of vertices the built hypergraph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges added so far.
    pub fn num_edges(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Grow the vertex-id space to at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32");
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Pre-reserve capacity for `additional_pins` more incidences.
    pub fn reserve_pins(&mut self, additional_pins: usize) {
        self.pins.reserve(additional_pins);
    }

    /// Add one hyperedge; returns its id. Duplicate vertices within the
    /// edge are merged; the pin list is stored sorted.
    ///
    /// # Panics
    /// If any vertex id is out of range.
    pub fn add_edge(&mut self, vertices: impl IntoIterator<Item = u32>) -> EdgeId {
        let start = self.pins.len();
        for v in vertices {
            assert!(
                (v as usize) < self.num_vertices,
                "vertex {v} out of range for {} vertices",
                self.num_vertices
            );
            self.pins.push(v);
        }
        self.pins[start..].sort_unstable();
        // In-place dedup of the new tail.
        let mut write = start;
        for read in start..self.pins.len() {
            if read == start || self.pins[read] != self.pins[write - 1] {
                self.pins[write] = self.pins[read];
                write += 1;
            }
        }
        self.pins.truncate(write);
        assert!(
            self.pins.len() <= u32::MAX as usize,
            "pin count exceeds u32"
        );
        self.offsets.push(self.pins.len() as u32);
        EdgeId(self.offsets.len() as u32 - 2)
    }

    /// Add a hyperedge given [`VertexId`]s.
    pub fn add_edge_ids(&mut self, vertices: impl IntoIterator<Item = VertexId>) -> EdgeId {
        self.add_edge(vertices.into_iter().map(|v| v.0))
    }

    /// Freeze into a [`Hypergraph`], constructing the vertex-side CSR.
    pub fn build(self) -> Hypergraph {
        build_from_edge_csr(self.num_vertices, self.offsets, self.pins)
    }
}

/// Freeze an already-assembled edge-side CSR (per-edge `offsets` into a
/// flat sorted-and-deduplicated `pins` array) into a [`Hypergraph`],
/// constructing the vertex-side CSR by counting sort. Shared by
/// [`HypergraphBuilder::build`], the streamed two-pass text reader, and
/// the `.hgb` stream writer — none of which want a second copy of the
/// pin data.
pub(crate) fn build_from_edge_csr(
    num_vertices: usize,
    offsets: Vec<u32>,
    pins: Vec<u32>,
) -> Hypergraph {
    let n = num_vertices;
    let m = offsets.len() - 1;

    // Count vertex degrees.
    let mut vdeg = vec![0u32; n];
    for &v in &pins {
        vdeg[v as usize] += 1;
    }
    let mut vertex_offsets = Vec::with_capacity(n + 1);
    vertex_offsets.push(0u32);
    let mut acc = 0u32;
    for &d in &vdeg {
        acc += d;
        vertex_offsets.push(acc);
    }

    // Scatter edge ids into vertex adjacency lists. Edges are scanned
    // in increasing id order, so each vertex's list comes out sorted.
    let mut cursor: Vec<u32> = vertex_offsets[..n].to_vec();
    let mut adj_list = vec![EdgeId(0); pins.len()];
    for e in 0..m {
        let lo = offsets[e] as usize;
        let hi = offsets[e + 1] as usize;
        for &v in &pins[lo..hi] {
            adj_list[cursor[v as usize] as usize] = EdgeId(e as u32);
            cursor[v as usize] += 1;
        }
    }

    let pin_list: Vec<VertexId> = pins.into_iter().map(VertexId).collect();
    Hypergraph::from_parts(offsets, pin_list, vertex_offsets, adj_list)
}

/// Convenience: build a hypergraph directly from slices of vertex ids.
pub fn hypergraph_from_edges(num_vertices: usize, edges: &[&[u32]]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(num_vertices);
    for e in edges {
        b.add_edge(e.iter().copied());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_within_edge() {
        let mut b = HypergraphBuilder::new(3);
        let e = b.add_edge([2, 0, 2, 1, 0]);
        let h = b.build();
        assert_eq!(h.pins(e), &[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(h.num_pins(), 3);
    }

    #[test]
    fn keeps_identical_edges() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.vertex_degree(VertexId(0)), 2);
    }

    #[test]
    fn allows_empty_edges() {
        let mut b = HypergraphBuilder::new(1);
        let e = b.add_edge([]);
        let h = b.build();
        assert_eq!(h.edge_degree(e), 0);
        assert_eq!(h.num_pins(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 2]);
    }

    #[test]
    fn edge_ids_are_sequential() {
        let mut b = HypergraphBuilder::new(3);
        assert_eq!(b.add_edge([0]), EdgeId(0));
        assert_eq!(b.add_edge([1]), EdgeId(1));
        assert_eq!(b.add_edge([2]), EdgeId(2));
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn adjacency_lists_sorted_by_edge_id() {
        let h = hypergraph_from_edges(2, &[&[0, 1], &[0], &[0, 1]]);
        assert_eq!(h.edges_of(VertexId(0)), &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert_eq!(h.edges_of(VertexId(1)), &[EdgeId(0), EdgeId(2)]);
    }

    #[test]
    fn add_edge_ids_matches_add_edge() {
        let mut b1 = HypergraphBuilder::new(4);
        b1.add_edge([3, 1]);
        let mut b2 = HypergraphBuilder::new(4);
        b2.add_edge_ids([VertexId(3), VertexId(1)]);
        assert_eq!(b1.build().pins(EdgeId(0)), b2.build().pins(EdgeId(0)));
    }
}
