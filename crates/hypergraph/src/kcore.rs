//! The k-core of a hypergraph (paper §3, Fig. 4).
//!
//! The **k-core** of `H` is the maximal sub-hypergraph that is *reduced*
//! (no hyperedge contained in another) and in which every vertex belongs to
//! at least `k` hyperedges. When a vertex is deleted, any hyperedge it
//! belonged to is deleted as soon as it stops being maximal — including
//! the special case of becoming empty.
//!
//! The implementation follows the paper's algorithm: peel vertices of
//! degree < k; detect non-maximal hyperedges *without comparing vertex
//! sets* by maintaining current degrees and pairwise overlaps
//! ([`crate::OverlapTable`]): `f ⊆ g` exactly when
//! `overlap(f, g) == degree(f)`. Only hyperedges whose degree was just
//! decremented can newly become non-maximal, giving the paper's
//! `O(|E|(Δ₂,F + Δ_V ln Δ₂,F))` bound (we use hash maps instead of
//! balanced trees, trading the log for expected O(1)).
//!
//! Ties between *identical* hyperedges are broken by id: the lowest id
//! survives. This makes the computation deterministic and keeps exactly
//! one copy, as the reduced-hypergraph definition requires.

use std::cell::Cell;

use hgobs::{Deadline, DeadlineExceeded};

use crate::hash::DetMap;
use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::overlap::OverlapTable;

/// A computed k-core.
#[derive(Clone, Debug)]
pub struct KCore {
    /// The threshold `k` this core was computed for.
    pub k: u32,
    /// Original ids of surviving vertices, ascending.
    pub vertices: Vec<VertexId>,
    /// Original ids of surviving hyperedges, ascending.
    pub edges: Vec<EdgeId>,
    /// The core as a standalone hypergraph; its vertex `i` is
    /// `vertices[i]`, its edge `j` is `edges[j]`.
    pub sub: Hypergraph,
}

impl KCore {
    /// `true` when the core is empty (no vertices survive).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Mutable peeling state shared by the k-core drivers.
struct Peeler {
    alive_v: Vec<bool>,
    alive_e: Vec<bool>,
    deg_v: Vec<u32>,
    deg_e: Vec<u32>,
    /// `ov[f]` maps raw edge id `g` to `|f ∩ g|` counted over *alive*
    /// vertices, kept symmetric, entries to dead edges removed eagerly.
    ov: Vec<DetMap<u32, u32>>,
    /// Vertices awaiting deletion (deg < k), with an in-queue flag to
    /// avoid duplicates.
    queue: Vec<u32>,
    queued: Vec<bool>,
    k: u32,
    /// Metric accumulators, flushed once per peel (plain locals keep the
    /// hot loops free of sink calls; `Cell` because maximality checks
    /// run under `&self`).
    vertices_peeled: u64,
    edges_deleted: u64,
    nonmax_checks: Cell<u64>,
    overlap_probes: Cell<u64>,
}

impl Peeler {
    fn new(h: &Hypergraph, k: u32, deadline: &Deadline) -> Result<Self, DeadlineExceeded> {
        Ok(Peeler {
            alive_v: vec![true; h.num_vertices()],
            alive_e: vec![true; h.num_edges()],
            deg_v: h.vertices().map(|v| h.vertex_degree(v) as u32).collect(),
            deg_e: h.edges().map(|f| h.edge_degree(f) as u32).collect(),
            ov: OverlapTable::build_with(h, deadline)?.into_maps(),
            queue: Vec::new(),
            queued: vec![false; h.num_vertices()],
            k,
            vertices_peeled: 0,
            edges_deleted: 0,
            nonmax_checks: Cell::new(0),
            overlap_probes: Cell::new(0),
        })
    }

    /// `true` iff alive `f` is currently contained in some alive `g ≠ f`
    /// (identical sets: the higher id is the contained one), or is empty.
    fn is_non_maximal(&self, f: usize) -> bool {
        self.nonmax_checks.set(self.nonmax_checks.get() + 1);
        let df = self.deg_e[f];
        if df == 0 {
            return true;
        }
        self.ov[f].iter().any(|(&g, &c)| {
            self.overlap_probes.set(self.overlap_probes.get() + 1);
            c == df && {
                let dg = self.deg_e[g as usize];
                dg > df || (dg == df && (g as usize) < f)
            }
        })
    }

    /// Delete hyperedge `f`: clean its overlap entries, decrement member
    /// vertex degrees, queue vertices that fall below `k`.
    fn delete_edge(&mut self, h: &Hypergraph, f: usize) {
        debug_assert!(self.alive_e[f]);
        self.alive_e[f] = false;
        self.edges_deleted += 1;
        let entries = std::mem::take(&mut self.ov[f]);
        for (&g, _) in entries.iter() {
            self.ov[g as usize].remove(&(f as u32));
        }
        for &w in h.pins(EdgeId(f as u32)) {
            let w = w.index();
            if self.alive_v[w] {
                self.deg_v[w] -= 1;
                if self.deg_v[w] < self.k && !self.queued[w] {
                    self.queued[w] = true;
                    self.queue.push(w as u32);
                }
            }
        }
    }

    /// Delete vertex `v` from every alive hyperedge containing it,
    /// updating overlaps, then delete hyperedges that stop being maximal.
    fn delete_vertex(&mut self, h: &Hypergraph, v: usize) {
        debug_assert!(self.alive_v[v]);
        self.alive_v[v] = false;
        self.vertices_peeled += 1;

        let alive_edges: Vec<u32> = h
            .edges_of(VertexId(v as u32))
            .iter()
            .map(|f| f.0)
            .filter(|&f| self.alive_e[f as usize])
            .collect();

        // All pairs of alive edges through v lose one shared vertex.
        for (i, &f) in alive_edges.iter().enumerate() {
            for &g in &alive_edges[i + 1..] {
                decrement_overlap(&mut self.ov, f as usize, g as usize);
            }
        }
        // Each alive edge containing v loses one member.
        for &f in &alive_edges {
            self.deg_e[f as usize] -= 1;
        }
        // Only these degree-decremented edges can newly be non-maximal.
        for &f in &alive_edges {
            let f = f as usize;
            if self.alive_e[f] && self.is_non_maximal(f) {
                self.delete_edge(h, f);
            }
        }
    }

    /// Initial sweep: make the hypergraph reduced before peeling, so the
    /// result satisfies the definition even for inputs with nested or
    /// duplicate hyperedges.
    /// The per-edge work (one maximality check, possibly a deletion) is
    /// bounded, so a plain [`Deadline::expired`] check per edge keeps
    /// overshoot to one edge's worth of work.
    fn reduce_sweep(
        &mut self,
        h: &Hypergraph,
        deadline: &Deadline,
    ) -> Result<(), DeadlineExceeded> {
        for f in 0..h.num_edges() {
            if deadline.expired() {
                return Err(deadline.exceeded("kcore.reduce", self.edges_deleted));
            }
            if self.alive_e[f] && self.is_non_maximal(f) {
                self.delete_edge(h, f);
            }
        }
        Ok(())
    }

    /// Queue every alive vertex currently below the threshold.
    fn seed_queue(&mut self) {
        for v in 0..self.alive_v.len() {
            if self.alive_v[v] && self.deg_v[v] < self.k && !self.queued[v] {
                self.queued[v] = true;
                self.queue.push(v as u32);
            }
        }
    }

    /// Run peeling to fixpoint. On expiry the error's `work_done` is the
    /// number of vertices peeled before the check fired.
    fn run(&mut self, h: &Hypergraph, deadline: &Deadline) -> Result<(), DeadlineExceeded> {
        while let Some(v) = self.queue.pop() {
            if deadline.expired() {
                return Err(deadline.exceeded("kcore.peel", self.vertices_peeled));
            }
            let v = v as usize;
            self.queued[v] = false;
            if self.alive_v[v] {
                self.delete_vertex(h, v);
            }
        }
        Ok(())
    }

    /// Flush the accumulated counters to the sink (no-op when disabled).
    fn flush_metrics(&self) {
        hgobs::counter!("kcore.vertices_peeled", self.vertices_peeled);
        hgobs::counter!("kcore.edges_deleted", self.edges_deleted);
        hgobs::counter!("kcore.nonmax_checks", self.nonmax_checks.get());
        hgobs::counter!("kcore.overlap_probes", self.overlap_probes.get());
    }

    fn extract(&self, h: &Hypergraph, k: u32) -> KCore {
        let (sub, vmap, emap) = h.sub_hypergraph(&self.alive_v, &self.alive_e, false);
        KCore {
            k,
            vertices: vmap,
            edges: emap,
            sub,
        }
    }
}

fn decrement_overlap(ov: &mut [DetMap<u32, u32>], f: usize, g: usize) {
    for (a, b) in [(f, g), (g, f)] {
        if let Some(c) = ov[a].get_mut(&(b as u32)) {
            *c -= 1;
            if *c == 0 {
                ov[a].remove(&(b as u32));
            }
        }
    }
}

/// Compute the k-core of `h` for a given `k` (paper Fig. 4).
///
/// The input need not be reduced: an initial sweep removes non-maximal
/// hyperedges (keeping the lowest id among identical copies) so the output
/// always satisfies the definition. `k = 0` therefore returns the reduced
/// hypergraph itself (minus vertices stranded in no hyperedge — degree-0
/// vertices trivially satisfy `d(v) ≥ 0`, so they are kept for `k = 0`).
pub fn hypergraph_kcore(h: &Hypergraph, k: u32) -> KCore {
    match hypergraph_kcore_with(h, k, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`hypergraph_kcore`] under a cooperative [`Deadline`], checked during
/// the overlap build (per vertex-adjacency pair), the reduce sweep (per
/// edge), and the peel (per queued vertex). Partial work counters are
/// flushed to the sink even on the expiry path, so an aborted peel still
/// reports how far it got; the error's `work_done` carries the
/// phase-specific count (pairs, edges deleted, or vertices peeled).
pub fn hypergraph_kcore_with(
    h: &Hypergraph,
    k: u32,
    deadline: &Deadline,
) -> Result<KCore, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore");
    hgobs::counter!("kcore.rounds");
    let mut p = {
        let _s = hgobs::Span::enter("build_state");
        Peeler::new(h, k, deadline)?
    };
    let peeled = {
        let sweep = {
            let _s = hgobs::Span::enter("reduce_sweep");
            p.reduce_sweep(h, deadline)
        };
        match sweep {
            Ok(()) => {
                p.seed_queue();
                let _s = hgobs::Span::enter("peel");
                p.run(h, deadline)
            }
            Err(e) => Err(e),
        }
    };
    p.flush_metrics();
    peeled?;
    Ok(p.extract(h, k))
}

/// Compute the maximum core: the largest `k` for which the k-core is
/// non-empty, together with that core.
///
/// Returns `None` when even the 1-core is empty (no vertices, or every
/// hyperedge vanishes). Backed by the incremental
/// [`decompose`](crate::decompose()) sweep: one CSR overlap build and one
/// monotone peel instead of the `~2 log k_max` independent hash-map peels
/// [`max_core_bsearch`] runs.
pub fn max_core(h: &Hypergraph) -> Option<KCore> {
    match max_core_with(h, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`max_core`] under a cooperative [`Deadline`] (phase
/// `kcore.decompose`).
pub fn max_core_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Option<KCore>, DeadlineExceeded> {
    Ok(crate::decompose::decompose_with(h, deadline)?.max_core)
}

/// Doubling-plus-binary-search maximum core over the per-k hash-map
/// peeler: the pre-incremental driver, kept as a cross-validation oracle
/// and benchmark baseline (k-cores are nested, so non-emptiness is
/// monotone in `k` and the search is sound).
pub fn max_core_bsearch(h: &Hypergraph) -> Option<KCore> {
    match max_core_bsearch_with(h, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`max_core_bsearch`] under a cooperative [`Deadline`]; every peel in
/// the doubling and binary-search phases runs under the same token.
pub fn max_core_bsearch_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Option<KCore>, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.max_core_search");
    if hypergraph_kcore_with(h, 1, deadline)?.is_empty() {
        return Ok(None);
    }
    // Doubling: find the first power-of-two-ish k with an empty core.
    let mut lo = 1u32; // non-empty
    let mut hi = 2u32;
    while !hypergraph_kcore_with(h, hi, deadline)?.is_empty() {
        lo = hi;
        hi = hi.saturating_mul(2);
        if hi as usize > h.max_vertex_degree() + 1 {
            hi = h.max_vertex_degree() as u32 + 1;
            break;
        }
    }
    // Invariant: lo-core non-empty, hi-core empty.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if hypergraph_kcore_with(h, mid, deadline)?.is_empty() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hypergraph_kcore_with(h, lo, deadline)?))
}

/// Linear-scan maximum core (k = 1, 2, …): the reference for
/// [`max_core`]'s binary search, kept for cross-validation.
pub fn max_core_linear(h: &Hypergraph) -> Option<KCore> {
    let mut best: Option<KCore> = None;
    let mut k = 1u32;
    loop {
        let core = hypergraph_kcore(h, k);
        if core.is_empty() {
            return best;
        }
        best = Some(core);
        k += 1;
    }
}

/// Sizes of the k-core for every k from 1 to the maximum:
/// `profile[i] = (k, vertices, edges)` with `k = i + 1`. Backed by the
/// incremental [`decompose`](crate::decompose()) sweep.
pub fn core_profile(h: &Hypergraph) -> Vec<(u32, usize, usize)> {
    crate::decompose::decompose(h).profile
}

/// [`core_profile`] under a cooperative [`Deadline`] (phase
/// `kcore.decompose`), so an `X-Deadline-Ms` request into a deep-core
/// dataset can be cut short mid-sweep.
pub fn core_profile_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Vec<(u32, usize, usize)>, DeadlineExceeded> {
    Ok(crate::decompose::decompose_with(h, deadline)?.profile)
}

/// The core number of every vertex: the largest `k` for which the vertex
/// belongs to the k-core (0 for vertices outside even the 1-core, e.g.
/// isolated vertices or vertices whose hyperedges all vanish). Backed by
/// the incremental [`decompose`](crate::decompose()) sweep.
pub fn core_numbers(h: &Hypergraph) -> Vec<u32> {
    crate::decompose::decompose(h).core_numbers
}

/// [`core_numbers`] under a cooperative [`Deadline`] (phase
/// `kcore.decompose`).
pub fn core_numbers_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Vec<u32>, DeadlineExceeded> {
    Ok(crate::decompose::decompose_with(h, deadline)?.core_numbers)
}

/// Per-k `core_profile` oracle: one independent hash-map peel per level.
/// Kept for cross-validation of the incremental sweep and as the
/// benchmark "before" driver.
pub fn core_profile_per_k(h: &Hypergraph) -> Vec<(u32, usize, usize)> {
    let mut out = Vec::new();
    let mut k = 1u32;
    loop {
        let core = hypergraph_kcore(h, k);
        if core.is_empty() {
            return out;
        }
        out.push((k, core.vertices.len(), core.edges.len()));
        k += 1;
    }
}

/// Per-k `core_numbers` oracle: sweeps `k = 1..` stamping survivors —
/// correct because hypergraph k-cores are nested in their vertex sets
/// (checked by property tests); O(k_max) full peels. Kept for
/// cross-validation and as the benchmark "before" driver.
pub fn core_numbers_per_k(h: &Hypergraph) -> Vec<u32> {
    let mut core = vec![0u32; h.num_vertices()];
    let mut k = 1u32;
    loop {
        let kc = hypergraph_kcore(h, k);
        if kc.is_empty() {
            return core;
        }
        for &v in &kc.vertices {
            core[v.index()] = k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    /// Fan of k edges all containing a hub set: a planted 3-core.
    /// Vertices 0..=2 each belong to edges e0..=e3 (all four edges =
    /// {0,1,2} ∪ {distinct tail}), tails 3..=6 have degree 1.
    fn fan() -> Hypergraph {
        let mut b = HypergraphBuilder::new(7);
        b.add_edge([0, 1, 2, 3]);
        b.add_edge([0, 1, 2, 4]);
        b.add_edge([0, 1, 2, 5]);
        b.add_edge([0, 1, 2, 6]);
        b.build()
    }

    #[test]
    fn fan_cores() {
        let h = fan();
        // k=1: everything survives (all degrees >= 1, edges maximal).
        let c1 = hypergraph_kcore(&h, 1);
        assert_eq!(c1.vertices.len(), 7);
        assert_eq!(c1.edges.len(), 4);

        // k=2: tails die; edges collapse to four copies of {0,1,2};
        // the lowest-id copy survives, so degrees drop to 1 < 2 and
        // everything unravels.
        let c2 = hypergraph_kcore(&h, 2);
        assert!(c2.is_empty(), "expected empty 2-core, got {c2:?}");

        let mc = max_core(&h).unwrap();
        assert_eq!(mc.k, 1);
    }

    /// A genuine hypergraph 2-core: vertices {0,1,2} pairwise covered by
    /// three distinct overlapping edges that stay maximal after leaves go.
    fn triangle_like() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 3]); // leaf 3
        b.add_edge([1, 2, 4]); // leaf 4
        b.add_edge([0, 2, 5]); // leaf 5
        b.build()
    }

    #[test]
    fn triangle_like_two_core() {
        let h = triangle_like();
        let c2 = hypergraph_kcore(&h, 2);
        // Leaves have degree 1 and die; edges become {0,1},{1,2},{0,2}:
        // all maximal, all core vertices keep degree 2.
        assert_eq!(c2.vertices, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(c2.edges.len(), 3);
        assert!(c2.sub.vertices().all(|v| c2.sub.vertex_degree(v) >= 2));
        let mc = max_core(&h).unwrap();
        assert_eq!(mc.k, 2);
    }

    #[test]
    fn unravelling_cascade() {
        // Chain {0,1},{1,2},{2,3}: k=2 should unravel completely —
        // endpoints have degree 1; after their removal edges nest and die.
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        let h = b.build();
        assert!(hypergraph_kcore(&h, 2).is_empty());
        assert_eq!(max_core(&h).unwrap().k, 1);
    }

    #[test]
    fn input_reduced_before_peeling() {
        // e1 ⊂ e0 must be removed even at k=0/k=1 with no low-degree vertex.
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1, 2]);
        b.add_edge([0, 1]);
        let h = b.build();
        let c1 = hypergraph_kcore(&h, 1);
        assert_eq!(c1.edges, vec![EdgeId(0)]);
        assert_eq!(c1.vertices.len(), 3);
    }

    #[test]
    fn duplicate_edges_keep_lowest_id() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        let h = b.build();
        let c1 = hypergraph_kcore(&h, 1);
        assert_eq!(c1.edges, vec![EdgeId(0)]);
    }

    #[test]
    fn empty_edges_always_dropped() {
        let mut b = HypergraphBuilder::new(1);
        b.add_edge([]);
        b.add_edge([0]);
        let h = b.build();
        let c1 = hypergraph_kcore(&h, 1);
        assert_eq!(c1.edges, vec![EdgeId(1)]);
    }

    #[test]
    fn k0_keeps_isolated_vertices() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        let c0 = hypergraph_kcore(&h, 0);
        assert_eq!(c0.vertices.len(), 3);
        let c1 = hypergraph_kcore(&h, 1);
        assert_eq!(c1.vertices.len(), 2);
    }

    #[test]
    fn core_profile_shrinks() {
        let h = triangle_like();
        let profile = core_profile(&h);
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].0, 1);
        assert_eq!(profile[1], (2, 3, 3));
        assert!(profile[0].1 >= profile[1].1);
    }

    #[test]
    fn core_numbers_consistent_with_cores() {
        let h = triangle_like();
        let nums = core_numbers(&h);
        // Core vertices 0..=2 have core number 2; leaves 3..=5 have 1.
        assert_eq!(nums, vec![2, 2, 2, 1, 1, 1]);
        for k in 1..=2u32 {
            let kc = hypergraph_kcore(&h, k);
            let by_number: Vec<VertexId> = (0..h.num_vertices() as u32)
                .filter(|&v| nums[v as usize] >= k)
                .map(VertexId)
                .collect();
            assert_eq!(kc.vertices, by_number, "k = {k}");
        }
    }

    #[test]
    fn core_numbers_zero_for_isolated() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(core_numbers(&h), vec![1, 1, 0]);
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let cases: Vec<Hypergraph> = vec![fan(), triangle_like(), {
            let mut b = HypergraphBuilder::new(8);
            for s in 0..8u32 {
                b.add_edge([s, (s + 1) % 8, (s + 2) % 8]);
            }
            b.build()
        }];
        for h in &cases {
            let a = max_core(h).unwrap();
            let b = max_core_linear(h).unwrap();
            let c = max_core_bsearch(h).unwrap();
            assert_eq!(a.k, b.k);
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.k, c.k);
            assert_eq!(a.vertices, c.vertices);
            assert_eq!(a.edges, c.edges);
        }
    }

    #[test]
    fn max_core_of_empty_is_none() {
        let h = HypergraphBuilder::new(0).build();
        assert!(max_core(&h).is_none());
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([]);
        let h = b.build();
        assert!(max_core(&h).is_none());
    }

    #[test]
    fn planted_deep_core() {
        // 6 "core" vertices each in 6 of 9 core edges (all size-4 subsets
        // arranged round-robin), plus pendant vertices. The max core must
        // contain exactly the 6 planted vertices with k >= 3.
        let mut b = HypergraphBuilder::new(16);
        // Core edges: consecutive quadruples mod 6, three rotations.
        let mut eid = 0;
        for r in 0..3u32 {
            for s in 0..6u32 {
                let vs: Vec<u32> = (0..4u32).map(|i| (s + i * (r + 1)) % 6).collect();
                b.add_edge(vs);
                eid += 1;
            }
        }
        assert_eq!(eid, 18);
        // Pendants.
        for p in 6..16u32 {
            b.add_edge([p, p.saturating_sub(1).max(6)]);
        }
        let h = b.build();
        let mc = max_core(&h).unwrap();
        assert!(mc.k >= 3, "k = {}", mc.k);
        assert!(mc.vertices.iter().all(|v| v.0 < 6));
        // Core invariant: every vertex has degree >= k in the core.
        assert!(mc
            .sub
            .vertices()
            .all(|v| mc.sub.vertex_degree(v) >= mc.k as usize));
    }

    #[test]
    fn unlimited_deadline_matches_plain_kcore() {
        let h = triangle_like();
        let none = Deadline::none();
        for k in 0..=3 {
            let a = hypergraph_kcore(&h, k);
            let b = hypergraph_kcore_with(&h, k, &none).unwrap();
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.edges, b.edges);
        }
        let a = max_core(&h).unwrap();
        let b = max_core_with(&h, &none).unwrap().unwrap();
        assert_eq!((a.k, a.vertices), (b.k, b.vertices));
    }

    #[test]
    fn pre_expired_deadline_stops_peel_with_zero_work() {
        // Disjoint pair edges {2i, 2i+1}: no overlaps, so the first check
        // to fire is the reduce sweep's, with nothing deleted yet.
        let mut b = HypergraphBuilder::new(64);
        for i in 0..32u32 {
            b.add_edge([2 * i, 2 * i + 1]);
        }
        let h = b.build();
        let dl = Deadline::after(std::time::Duration::ZERO);
        let err = hypergraph_kcore_with(&h, 2, &dl).unwrap_err();
        assert_eq!(err.phase, "kcore.reduce");
        assert_eq!(err.work_done, 0, "{err:?}");
        assert!(max_core_with(&h, &dl).is_err());
    }

    #[test]
    fn deadline_fires_mid_peel_with_partial_vertex_count() {
        // 120k vertices in 60k disjoint pair edges, k=2: the overlap
        // build is trivial (no pairs) and the reduce sweep cheap, so
        // nearly all the time goes to peeling 120k queued vertices.
        // Escalate the budget until one lands mid-peel; a machine that
        // finishes the whole peel inside 1ms just ends at Ok, with the
        // expiry path still covered by the pre-expired test above.
        let n = 60_000u32;
        let mut b = HypergraphBuilder::new(2 * n as usize);
        for i in 0..n {
            b.add_edge([2 * i, 2 * i + 1]);
        }
        let h = b.build();
        for ms in [1u64, 2, 4, 8, 16, 32, 64] {
            match hypergraph_kcore_with(&h, 2, &Deadline::after_ms(ms)) {
                Err(err) if err.phase == "kcore.peel" && err.work_done > 0 => {
                    assert!(err.work_done < 2 * n as u64, "{err:?}");
                    return;
                }
                // Expired before any vertex was peeled (the peel loop
                // checks the deadline before its first deletion, so a
                // peel-phase error can carry zero work): escalate.
                Err(_) => continue,
                Ok(core) => {
                    assert!(core.is_empty());
                    return;
                }
            }
        }
    }

    #[test]
    fn core_is_reduced_and_degrees_hold() {
        let h = triangle_like();
        for k in 0..=3 {
            let core = hypergraph_kcore(&h, k);
            crate::validate::check_structure(&core.sub).unwrap();
            // Degrees >= k.
            assert!(core
                .sub
                .vertices()
                .all(|v| core.sub.vertex_degree(v) >= k as usize
                    || core.sub.vertex_degree(v) == 0 && k == 0));
            // Reduced: no containment among surviving edges.
            assert!(crate::reduce::non_maximal_edges(&core.sub).is_empty());
        }
    }
}
