//! Small-world assessment of a hypergraph (paper §2).
//!
//! The paper calls the yeast hypergraph a small-world network on the
//! evidence of its diameter (6) and average path length (2.568) relative
//! to its size (1361 proteins). This module packages those measurements
//! together with the random-network yardstick `ln n / ln z̄` (the expected
//! path length of a comparable random network, where `z̄` is the mean
//! number of vertices reachable in one step), so the claim is checkable
//! rather than eyeballed.

use hgobs::{Deadline, DeadlineExceeded};

use crate::hypergraph::Hypergraph;
use crate::hypergraph::VertexId;
use crate::overlap::d2_vertex;
use crate::path::{
    hyper_distance_stats, hyper_distance_stats_from, hyper_distance_stats_from_with,
    hyper_distance_stats_with, HyperDistanceStats,
};

/// Small-world summary of a hypergraph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallWorldReport {
    /// Measured distance statistics.
    pub distances: HyperDistanceStats,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Mean one-step reachability `z̄` = mean vertex degree-2.
    pub mean_reach: f64,
    /// Random-network expectation `ln n / ln z̄` (NaN when `z̄ ≤ 1`).
    pub random_expected_apl: f64,
    /// `true` when the measured average path length is within a factor of
    /// 2 of the random expectation and the diameter is O(log n)
    /// (≤ `3 · ln n`): a conservative operationalization of "small world".
    pub is_small_world: bool,
}

/// Compute the small-world report with exact distances.
pub fn small_world_report(h: &Hypergraph) -> SmallWorldReport {
    let distances = hyper_distance_stats(h);
    report_from_distances(h, distances)
}

/// [`small_world_report`] under a cooperative [`Deadline`]; the BFS
/// sweep dominates and is the part that can expire.
pub fn small_world_report_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<SmallWorldReport, DeadlineExceeded> {
    let distances = hyper_distance_stats_with(h, deadline)?;
    Ok(report_from_distances(h, distances))
}

/// Compute the report using sampled BFS sources (for large hypergraphs).
pub fn small_world_report_sampled(h: &Hypergraph, sources: &[VertexId]) -> SmallWorldReport {
    let distances = hyper_distance_stats_from(h, sources);
    report_from_distances(h, distances)
}

/// [`small_world_report_sampled`] under a cooperative [`Deadline`].
pub fn small_world_report_sampled_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<SmallWorldReport, DeadlineExceeded> {
    let distances = hyper_distance_stats_from_with(h, sources, deadline)?;
    Ok(report_from_distances(h, distances))
}

/// Assemble a [`SmallWorldReport`] from already-computed distance
/// statistics — the yardstick arithmetic without the BFS sweep. Public
/// so external engines (`parcore::par_small_world_report`) can reuse
/// the exact same classification.
pub fn report_from_distances(h: &Hypergraph, distances: HyperDistanceStats) -> SmallWorldReport {
    let n = h.num_vertices();
    let mean_reach = if n == 0 {
        0.0
    } else {
        h.vertices().map(|v| d2_vertex(h, v) as f64).sum::<f64>() / n as f64
    };
    let random_expected_apl = if mean_reach > 1.0 && n > 1 {
        (n as f64).ln() / mean_reach.ln()
    } else {
        f64::NAN
    };
    let is_small_world = n > 1
        && random_expected_apl.is_finite()
        && distances.average_path_length <= 2.0 * random_expected_apl
        && (distances.diameter as f64) <= 3.0 * (n as f64).ln();
    SmallWorldReport {
        distances,
        num_vertices: n,
        mean_reach,
        random_expected_apl,
        is_small_world,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    #[test]
    fn dense_overlapping_hypergraph_is_small_world() {
        // 30 vertices, edges of size 6 tiling with heavy overlap: short
        // distances, high reach.
        let mut b = HypergraphBuilder::new(30);
        for s in (0..30u32).step_by(3) {
            b.add_edge((0..6u32).map(|i| (s + i) % 30));
        }
        // A few long-range "hub" edges.
        b.add_edge([0, 10, 20]);
        b.add_edge([5, 15, 25]);
        let h = b.build();
        let r = small_world_report(&h);
        assert!(r.distances.diameter <= 5);
        assert!(r.is_small_world, "{r:?}");
    }

    #[test]
    fn long_chain_is_not_small_world() {
        // 64 vertices in a chain of pair edges: APL grows linearly.
        let n = 64u32;
        let mut b = HypergraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge([i, i + 1]);
        }
        let r = small_world_report(&b.build());
        assert!(!r.is_small_world, "{r:?}");
        assert_eq!(r.distances.diameter, n - 1);
    }

    #[test]
    fn degenerate_inputs() {
        let r = small_world_report(&HypergraphBuilder::new(0).build());
        assert!(!r.is_small_world);
        assert_eq!(r.num_vertices, 0);

        let mut b = HypergraphBuilder::new(1);
        b.add_edge([0]);
        let r = small_world_report(&b.build());
        assert!(!r.is_small_world);
    }

    #[test]
    fn sampled_report_close_to_exact() {
        let mut b = HypergraphBuilder::new(20);
        for s in 0..10u32 {
            b.add_edge([s, s + 10, (s + 1) % 10]);
        }
        let h = b.build();
        let exact = small_world_report(&h);
        let all: Vec<_> = h.vertices().collect();
        let sampled = small_world_report_sampled(&h, &all);
        assert_eq!(exact, sampled);
    }
}
