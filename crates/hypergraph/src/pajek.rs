//! Pajek export of the bipartite drawing graph `B(H)` — the format behind
//! the paper's Fig. 3, where yellow/red nodes are proteins, pink/green
//! nodes are complexes, and red/green marks membership in the maximum
//! 6-core.

use crate::bipartite::BipartiteView;
use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

/// Colour classes used in the Fig. 3 partition file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Fig3Class {
    /// Protein outside the maximum core (yellow).
    Protein = 0,
    /// Complex outside the maximum core (pink).
    Complex = 1,
    /// Protein inside the maximum core (red).
    CoreProtein = 2,
    /// Complex inside the maximum core (green).
    CoreComplex = 3,
}

/// Everything needed to reproduce Fig. 3: the `.net` network document and
/// the `.clu` partition (colour) document.
#[derive(Clone, Debug)]
pub struct PajekExport {
    /// Pajek `.net` text of `B(H)`.
    pub net: String,
    /// Pajek `.clu` text assigning each node a [`Fig3Class`] value.
    pub clu: String,
}

/// Export `B(H)` with labels and a partition marking core membership.
///
/// `vertex_labels`, if given, must have one entry per hypergraph vertex;
/// hyperedges are labelled `C1..Cm`. `core_vertices` / `core_edges` are
/// the members of the maximum core (or any highlight set).
pub fn export_fig3(
    h: &Hypergraph,
    vertex_labels: Option<&[String]>,
    core_vertices: &[VertexId],
    core_edges: &[EdgeId],
) -> PajekExport {
    if let Some(l) = vertex_labels {
        assert_eq!(l.len(), h.num_vertices(), "one label per vertex required");
    }
    let bv = BipartiteView::new(h);

    let mut labels: Vec<String> = Vec::with_capacity(h.num_vertices() + h.num_edges());
    for v in h.vertices() {
        labels.push(match vertex_labels {
            Some(l) => l[v.index()].clone(),
            None => format!("P{}", v.0 + 1),
        });
    }
    for f in h.edges() {
        labels.push(format!("C{}", f.0 + 1));
    }

    let mut class = vec![Fig3Class::Protein as u32; h.num_vertices() + h.num_edges()];
    for f in h.edges() {
        class[bv.edge_node(f).index()] = Fig3Class::Complex as u32;
    }
    for &v in core_vertices {
        class[bv.vertex_node(v).index()] = Fig3Class::CoreProtein as u32;
    }
    for &f in core_edges {
        class[bv.edge_node(f).index()] = Fig3Class::CoreComplex as u32;
    }

    PajekExport {
        net: graphcore::pajek::write_net(&bv.graph, Some(&labels)),
        clu: graphcore::pajek::write_clu(&class),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.build()
    }

    #[test]
    fn export_shape() {
        let h = toy();
        let e = export_fig3(&h, None, &[VertexId(1)], &[EdgeId(0)]);
        assert!(e.net.starts_with("*Vertices 5\n"));
        assert!(e.net.contains("\"P2\""));
        assert!(e.net.contains("\"C1\""));
        // clu: v0=protein(0), v1=core protein(2), v2=protein(0),
        //      e0=core complex(3), e1=complex(1)
        assert_eq!(e.clu, "*Vertices 5\n0\n2\n0\n3\n1\n");
    }

    #[test]
    fn net_parses_back() {
        let h = toy();
        let e = export_fig3(&h, None, &[], &[]);
        let (g, labels) = graphcore::pajek::parse_net(&e.net).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), h.num_pins());
        assert_eq!(labels[3], "C1");
    }

    #[test]
    fn custom_labels_used() {
        let h = toy();
        let labels: Vec<String> = ["ADH1", "CDC28", "TUB1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = export_fig3(&h, Some(&labels), &[], &[]);
        assert!(e.net.contains("\"ADH1\""));
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn label_length_validated() {
        let h = toy();
        let labels = vec!["X".to_string()];
        let _ = export_fig3(&h, Some(&labels), &[], &[]);
    }
}
