//! The lossy graph projections of the protein complex data that the paper
//! argues *against* (§1.2), implemented so their costs and distortions can
//! be measured (ablation A1):
//!
//! * **clique expansion** — every complex becomes a clique on its members
//!   (O(n²) edges per complex, inflated clustering);
//! * **star (bait/spoke) expansion** — the bait protein of each complex is
//!   joined to every other member;
//! * **complex intersection graph** — one node per complex, an edge when
//!   two complexes share a protein (proteins disappear; a protein in `m`
//!   complexes generates O(m²) edges).

use graphcore::{Graph, GraphBuilder, NodeId};

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use crate::overlap::OverlapTable;

/// Clique expansion: node `v` per vertex, edge `{u, w}` whenever some
/// hyperedge contains both. Parallel edges from multiple shared complexes
/// are merged (the graph is simple).
pub fn clique_expansion(h: &Hypergraph) -> Graph {
    let mut b = GraphBuilder::new(h.num_vertices());
    for f in h.edges() {
        let pins = h.pins(f);
        b.reserve(pins.len() * pins.len().saturating_sub(1) / 2);
        for (i, &u) in pins.iter().enumerate() {
            for &w in &pins[i + 1..] {
                b.add_edge(NodeId(u.0), NodeId(w.0));
            }
        }
    }
    b.build()
}

/// Star (bait) expansion: for each hyperedge, join `bait(f)` to every
/// other member.
///
/// # Panics
/// If a bait is not a member of its hyperedge.
pub fn star_expansion(h: &Hypergraph, bait: impl Fn(EdgeId) -> VertexId) -> Graph {
    let mut b = GraphBuilder::new(h.num_vertices());
    for f in h.edges() {
        let bv = bait(f);
        assert!(
            h.contains(f, bv) || h.edge_degree(f) == 0,
            "bait {bv:?} is not a member of {f:?}"
        );
        for &w in h.pins(f) {
            if w != bv {
                b.add_edge(NodeId(bv.0), NodeId(w.0));
            }
        }
    }
    b.build()
}

/// Complex intersection graph: node per hyperedge, edge when two
/// hyperedges share at least one vertex. Returns the graph and, for each
/// graph edge `(f, g)` with `f < g`, the shared-vertex count the paper
/// suggests as an edge weight.
pub fn intersection_graph(h: &Hypergraph) -> (Graph, Vec<(EdgeId, EdgeId, u32)>) {
    let ov = OverlapTable::build(h);
    let mut b = GraphBuilder::new(h.num_edges());
    let mut weights = Vec::new();
    for f in h.edges() {
        for (g, c) in ov.overlapping(f) {
            if f < g {
                b.add_edge(NodeId(f.0), NodeId(g.0));
                weights.push((f, g, c));
            }
        }
    }
    weights.sort_unstable();
    (b.build(), weights)
}

/// Space accounting for the four representations of the same data,
/// in bytes of adjacency storage (CSR arrays), plus edge counts — the
/// paper's O(n) vs O(n²) argument made measurable.
#[derive(Clone, Debug, PartialEq)]
pub struct SpaceReport {
    /// Bytes for the hypergraph's dual CSR.
    pub hypergraph_bytes: usize,
    /// Bytes for the clique expansion's CSR.
    pub clique_bytes: usize,
    /// Bytes for the star expansion's CSR (first member as bait).
    pub star_bytes: usize,
    /// Bytes for the intersection graph's CSR (weights not counted).
    pub intersection_bytes: usize,
    /// Simple-edge counts of the three projections.
    pub clique_edges: usize,
    /// Edges of the star expansion.
    pub star_edges: usize,
    /// Edges of the intersection graph.
    pub intersection_edges: usize,
    /// Incidence count |E| of the hypergraph.
    pub pins: usize,
}

/// Build all projections and measure their storage.
pub fn space_report(h: &Hypergraph) -> SpaceReport {
    let clique = clique_expansion(h);
    let star = star_expansion(h, |f| h.pins(f).first().copied().unwrap_or(VertexId(0)));
    let (inter, _) = intersection_graph(h);
    SpaceReport {
        hypergraph_bytes: h.storage_bytes(),
        clique_bytes: clique.storage_bytes(),
        star_bytes: star.storage_bytes(),
        intersection_bytes: inter.storage_bytes(),
        clique_edges: clique.num_edges(),
        star_edges: star.num_edges(),
        intersection_edges: inter.num_edges(),
        pins: h.num_pins(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // e0={0,1,2}, e1={2,3}, e2={4}
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([4]);
        b.build()
    }

    #[test]
    fn clique_expansion_edges() {
        let g = clique_expansion(&toy());
        assert_eq!(g.num_edges(), 3 + 1); // triangle + {2,3}
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(3)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
        assert_eq!(g.degree(NodeId(4)), 0);
    }

    #[test]
    fn clique_expansion_merges_parallel() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        b.add_edge([0, 1]);
        let g = clique_expansion(&b.build());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn star_expansion_with_first_member_bait() {
        let h = toy();
        let g = star_expansion(&h, |f| h.pins(f)[0]);
        // e0 star at 0: {0,1},{0,2}; e1 star at 2: {2,3}. Singleton: none.
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn star_expansion_validates_bait() {
        let h = toy();
        let _ = star_expansion(&h, |_| VertexId(4));
    }

    #[test]
    fn intersection_graph_nodes_are_complexes() {
        let (g, w) = intersection_graph(&toy());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1); // e0 and e1 share vertex 2
        assert_eq!(w, vec![(EdgeId(0), EdgeId(1), 1)]);
    }

    #[test]
    fn intersection_weights_count_shared() {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        let (_, w) = intersection_graph(&b.build());
        assert_eq!(w, vec![(EdgeId(0), EdgeId(1), 2)]);
    }

    #[test]
    fn quadratic_blowup_of_clique_vs_linear_hypergraph() {
        // One 40-member complex: hypergraph stores 40 pins; the clique
        // stores 780 edges (1560 CSR entries).
        let mut b = HypergraphBuilder::new(40);
        b.add_edge(0..40u32);
        let h = b.build();
        let r = space_report(&h);
        assert_eq!(r.pins, 40);
        assert_eq!(r.clique_edges, 40 * 39 / 2);
        assert_eq!(r.star_edges, 39);
        assert!(r.clique_bytes > 10 * r.hypergraph_bytes);
    }

    #[test]
    fn hub_protein_blows_up_intersection_graph() {
        // One protein in 20 complexes of size 2 → intersection graph gets
        // C(20,2) = 190 edges from that protein alone.
        let mut b = HypergraphBuilder::new(21);
        for i in 1..=20u32 {
            b.add_edge([0, i]);
        }
        let (g, _) = intersection_graph(&b.build());
        assert_eq!(g.num_edges(), 190);
    }
}
