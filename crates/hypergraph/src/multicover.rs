//! Greedy minimum-weight vertex **multicover** (paper §4.1, last variant).
//!
//! Each hyperedge `f` must be covered by at least `r_f ≥ 1` *distinct*
//! vertices; a vertex may be chosen only once. The greedy rule is the same
//! as for the plain cover, except a hyperedge is only deleted once its
//! requirement is met — the modification the paper describes, with the
//! same `H_m` approximation ratio.
//!
//! The paper covers every Cellzome complex twice (excluding the three
//! singleton complexes, which only contain one protein), obtaining 558
//! baits of average degree ≈ 1.74.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cover::{CoverError, CoverResult};
use crate::hypergraph::{EdgeId, Hypergraph, VertexId};

#[derive(Clone, Copy, PartialEq, PartialOrd)]
struct FiniteF64(f64);
impl Eq for FiniteF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("finite by construction")
    }
}

/// Greedy multicover: cover hyperedge `f` with at least `requirement(f)`
/// distinct vertices.
///
/// Requirements of 0 mean the hyperedge imposes no constraint. Returns
/// [`CoverError::InfeasibleRequirement`] when `requirement(f)` exceeds
/// `f`'s size (a vertex can be chosen only once), and
/// [`CoverError::BadWeight`] for negative or non-finite weights.
pub fn greedy_multicover(
    h: &Hypergraph,
    weight: impl Fn(VertexId) -> f64,
    requirement: impl Fn(EdgeId) -> u32,
) -> Result<CoverResult, CoverError> {
    let _span = hgobs::Span::enter("cover.multicover");
    let weights: Vec<f64> = h.vertices().map(&weight).collect();
    for v in h.vertices() {
        let w = weights[v.index()];
        if !w.is_finite() || w < 0.0 {
            return Err(CoverError::BadWeight(v));
        }
    }
    let mut need: Vec<u32> = h.edges().map(&requirement).collect();
    for f in h.edges() {
        if need[f.index()] as usize > h.edge_degree(f) {
            return Err(CoverError::InfeasibleRequirement(f));
        }
    }

    // An edge is "active" while its requirement is unmet. A vertex's
    // useful-adjacency is the number of active edges it belongs to and has
    // not yet been counted toward (a chosen vertex counts once per edge).
    let mut active: Vec<bool> = need.iter().map(|&r| r > 0).collect();
    let mut remaining = active.iter().filter(|&&a| a).count();
    let mut useful: Vec<u32> = h
        .vertices()
        .map(|v| h.edges_of(v).iter().filter(|f| active[f.index()]).count() as u32)
        .collect();
    let mut in_cover = vec![false; h.num_vertices()];

    let mut heap: BinaryHeap<Reverse<(FiniteF64, u32, u32)>> = h
        .vertices()
        .filter(|&v| useful[v.index()] > 0)
        .map(|v| {
            let c = weights[v.index()] / useful[v.index()] as f64;
            Reverse((FiniteF64(c), v.0, useful[v.index()]))
        })
        .collect();

    let mut result = CoverResult {
        vertices: Vec::new(),
        total_weight: 0.0,
        iterations: 0,
    };

    while remaining > 0 {
        let Reverse((_, vid, count_at_push)) = heap
            .pop()
            .expect("heap exhausted with unmet requirements remaining");
        let v = vid as usize;
        if in_cover[v] || useful[v] == 0 {
            continue;
        }
        if useful[v] != count_at_push {
            let c = weights[v] / useful[v] as f64;
            heap.push(Reverse((FiniteF64(c), vid, useful[v])));
            continue;
        }

        in_cover[v] = true;
        result.vertices.push(VertexId(vid));
        result.total_weight += weights[v];
        result.iterations += 1;
        useful[v] = 0;
        for &f in h.edges_of(VertexId(vid)) {
            if !active[f.index()] {
                continue;
            }
            need[f.index()] -= 1;
            if need[f.index()] == 0 {
                // Requirement met: the edge stops contributing usefulness.
                active[f.index()] = false;
                remaining -= 1;
                for &w in h.pins(f) {
                    if !in_cover[w.index()] {
                        useful[w.index()] -= 1;
                    }
                }
            }
        }
    }

    hgobs::counter!("cover.multicover_picks", result.iterations);
    Ok(result)
}

/// `true` iff `cover` contains at least `requirement(f)` distinct member
/// vertices of every hyperedge `f`.
pub fn is_multicover(
    h: &Hypergraph,
    cover: &[VertexId],
    requirement: impl Fn(EdgeId) -> u32,
) -> bool {
    let mut chosen = vec![false; h.num_vertices()];
    for &v in cover {
        chosen[v.index()] = true;
    }
    h.edges().all(|f| {
        let have = h.pins(f).iter().filter(|v| chosen[v.index()]).count() as u32;
        have >= requirement(f)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn triangle_edges() -> Hypergraph {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([0, 2]);
        b.build()
    }

    #[test]
    fn requirement_one_matches_plain_cover_semantics() {
        let h = triangle_edges();
        let mc = greedy_multicover(&h, |_| 1.0, |_| 1).unwrap();
        assert!(is_multicover(&h, &mc.vertices, |_| 1));
        assert!(crate::cover::is_vertex_cover(&h, &mc.vertices));
        assert_eq!(mc.vertices.len(), 2);
    }

    #[test]
    fn requirement_two_takes_all_endpoints() {
        let h = triangle_edges();
        let mc = greedy_multicover(&h, |_| 1.0, |_| 2).unwrap();
        assert!(is_multicover(&h, &mc.vertices, |_| 2));
        assert_eq!(mc.vertices.len(), 3); // every vertex needed
    }

    #[test]
    fn infeasible_requirement_detected() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0]);
        b.add_edge([0, 1]);
        let h = b.build();
        assert_eq!(
            greedy_multicover(&h, |_| 1.0, |_| 2),
            Err(CoverError::InfeasibleRequirement(EdgeId(0)))
        );
        // Excluding the singleton (requirement 0) makes it feasible —
        // exactly the paper's treatment of the three singleton complexes.
        let mc = greedy_multicover(&h, |_| 1.0, |f| if f.0 == 0 { 0 } else { 2 }).unwrap();
        assert_eq!(mc.vertices.len(), 2);
    }

    #[test]
    fn zero_requirements_mean_no_work() {
        let h = triangle_edges();
        let mc = greedy_multicover(&h, |_| 1.0, |_| 0).unwrap();
        assert!(mc.vertices.is_empty());
        assert!(is_multicover(&h, &mc.vertices, |_| 0));
    }

    #[test]
    fn mixed_requirements() {
        // Edge e0 needs 2, others need 1.
        let h = triangle_edges();
        let req = |f: EdgeId| if f.0 == 0 { 2 } else { 1 };
        let mc = greedy_multicover(&h, |_| 1.0, req).unwrap();
        assert!(is_multicover(&h, &mc.vertices, req));
        assert!(mc.vertices.contains(&VertexId(0)));
        assert!(mc.vertices.contains(&VertexId(1)));
    }

    #[test]
    fn weights_steer_selection() {
        // Make vertex 1 prohibitively expensive: cover {0,2} suffices for
        // requirement 1 everywhere.
        let h = triangle_edges();
        let mc = greedy_multicover(&h, |v| if v.0 == 1 { 100.0 } else { 1.0 }, |_| 1).unwrap();
        assert!(is_multicover(&h, &mc.vertices, |_| 1));
        assert!(!mc.vertices.contains(&VertexId(1)));
    }

    #[test]
    fn empty_edge_with_zero_requirement_ok() {
        let mut b = HypergraphBuilder::new(1);
        b.add_edge([]);
        b.add_edge([0]);
        let h = b.build();
        // requirement 0 for the empty edge: feasible.
        let mc = greedy_multicover(&h, |_| 1.0, |f| if f.0 == 0 { 0 } else { 1 }).unwrap();
        assert_eq!(mc.vertices, vec![VertexId(0)]);
        // requirement 1 for the empty edge: infeasible.
        assert_eq!(
            greedy_multicover(&h, |_| 1.0, |_| 1),
            Err(CoverError::InfeasibleRequirement(EdgeId(0)))
        );
    }

    #[test]
    fn multicover_average_degree_reported() {
        let h = triangle_edges();
        let mc = greedy_multicover(&h, |_| 1.0, |_| 2).unwrap();
        assert!((mc.average_degree(&h) - 2.0).abs() < 1e-12);
    }
}
