//! Plain-text hypergraph I/O in an hMETIS-style `.hgr` format.
//!
//! Line 1: `<num_hyperedges> <num_vertices>`. Then one line per hyperedge
//! listing its member vertices as **1-based** ids separated by whitespace;
//! an empty (whitespace-only) line is an empty hyperedge. Lines starting
//! with `%` are comments and ignored anywhere in the file.

use crate::hypergraph::Hypergraph;

/// Serialize `h` to `.hgr` text.
pub fn write_hgr(h: &Hypergraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.num_edges(), h.num_vertices());
    for f in h.edges() {
        let mut first = true;
        for &v in h.pins(f) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", v.0 + 1);
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Structured error from parsing `.hgr` text: what went wrong and, when
/// it is attributable to one input line, the **1-based** line number.
/// Callers (the CLI, `hg serve`'s `POST /datasets` 400 responses) can
/// point users at the exact offending line instead of a bare message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HgrError {
    /// 1-based line in the input text, counting every physical line
    /// (comments included); `None` for whole-document errors such as a
    /// truncated file.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl HgrError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        HgrError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        HgrError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "hgr parse error at line {n}: {}", self.message),
            None => write!(f, "hgr parse error: {}", self.message),
        }
    }
}

impl std::error::Error for HgrError {}

/// Non-comment lines of the document, tagged with **1-based physical**
/// line numbers (comments still count toward the numbering).
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim_start().starts_with('%'))
}

/// Parse the `<num_hyperedges> <num_vertices>` header line.
fn parse_header(header_no: usize, header: &str) -> Result<(usize, usize), HgrError> {
    let mut it = header.split_whitespace();
    let m: usize = it
        .next()
        .ok_or_else(|| HgrError::at(header_no, "missing hyperedge count"))?
        .parse()
        .map_err(|e| HgrError::at(header_no, format!("bad hyperedge count: {e}")))?;
    let n: usize = it
        .next()
        .ok_or_else(|| HgrError::at(header_no, "missing vertex count"))?
        .parse()
        .map_err(|e| HgrError::at(header_no, format!("bad vertex count: {e}")))?;
    Ok((m, n))
}

/// Parse `.hgr` text into a [`Hypergraph`].
///
/// Two-pass streamed build: pass 1 parses the header and *counts*
/// whitespace tokens (no ids are parsed, so every data error still
/// surfaces in pass 2 at its original line, in the original order);
/// pass 2 fills an exactly-preallocated edge-side CSR in place. Peak
/// memory is the CSR itself plus the input text — the old
/// per-line `Vec` + builder-copy path peaked at ~2x the pin data.
pub fn read_hgr(text: &str) -> Result<Hypergraph, HgrError> {
    // Pass 1: header + token census for exact preallocation.
    let mut lines = content_lines(text);
    let (header_no, header) = lines
        .next()
        .ok_or_else(|| HgrError::whole("empty document"))?;
    let (m, n) = parse_header(header_no, header)?;
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32");
    let mut total_pins = 0usize;
    for (_, line) in lines.take(m) {
        total_pins += line.split_whitespace().count();
    }

    // Pass 2: fill the CSR in place, reproducing the single-pass error
    // paths (message, line number, and firing order are identical).
    let mut pins: Vec<u32> = Vec::with_capacity(total_pins);
    let mut offsets: Vec<u32> = Vec::with_capacity(m + 1);
    offsets.push(0);
    let mut lines = content_lines(text);
    lines.next(); // header, already parsed
    let mut parsed = 0usize;
    for (line_no, line) in lines {
        if parsed == m {
            if !line.trim().is_empty() {
                return Err(HgrError::at(
                    line_no,
                    format!("more than {m} hyperedge lines"),
                ));
            }
            continue;
        }
        let start = pins.len();
        for tok in line.split_whitespace() {
            let v: usize = tok
                .parse()
                .map_err(|e| HgrError::at(line_no, format!("bad vertex id `{tok}`: {e}")))?;
            if v == 0 || v > n {
                return Err(HgrError::at(
                    line_no,
                    format!("vertex id {v} out of range 1..={n}"),
                ));
            }
            pins.push((v - 1) as u32);
        }
        // Sort + dedup the new tail in place (builder semantics).
        pins[start..].sort_unstable();
        let mut write = start;
        for read in start..pins.len() {
            if read == start || pins[read] != pins[write - 1] {
                pins[write] = pins[read];
                write += 1;
            }
        }
        pins.truncate(write);
        assert!(pins.len() <= u32::MAX as usize, "pin count exceeds u32");
        offsets.push(pins.len() as u32);
        parsed += 1;
    }
    if parsed != m {
        return Err(HgrError::whole(format!(
            "expected {m} hyperedge lines, found {parsed}"
        )));
    }
    Ok(crate::builder::build_from_edge_csr(n, offsets, pins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::hypergraph::{EdgeId, VertexId};

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([]);
        b.build()
    }

    #[test]
    fn roundtrip() {
        let h = toy();
        let text = write_hgr(&h);
        let h2 = read_hgr(&text).unwrap();
        assert_eq!(h2.num_vertices(), h.num_vertices());
        assert_eq!(h2.num_edges(), h.num_edges());
        for f in h.edges() {
            assert_eq!(h.pins(f), h2.pins(f));
        }
    }

    #[test]
    fn format_shape() {
        let text = write_hgr(&toy());
        assert_eq!(text, "3 4\n1 2 3\n3 4\n\n");
    }

    #[test]
    fn comments_ignored() {
        let text = "% comment\n2 3\n1 2\n% another\n2 3\n";
        let h = read_hgr(text).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.pins(EdgeId(1)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn errors() {
        assert!(read_hgr("").is_err());
        assert!(read_hgr("x 3\n").is_err());
        assert!(read_hgr("1\n").is_err());
        assert!(read_hgr("1 2\n3\n").is_err()); // vertex out of range
        assert!(read_hgr("1 2\n0\n").is_err()); // ids are 1-based
        assert!(read_hgr("2 2\n1\n").is_err()); // too few edge lines
        assert!(read_hgr("1 2\n1\n2\n").is_err()); // too many edge lines
    }

    #[test]
    fn trailing_blank_lines_ok() {
        let h = read_hgr("1 2\n1 2\n\n\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Physical line numbers, comments counted: the bad id is line 4.
        let err = read_hgr("% header comment\n2 3\n1 2\nbogus\n").unwrap_err();
        assert_eq!(err.line, Some(4));
        assert!(err.message.contains("bad vertex id `bogus`"), "{err}");
        assert!(err.to_string().starts_with("hgr parse error at line 4:"));

        let err = read_hgr("1 2\n7\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("out of range"), "{err}");

        let err = read_hgr("x 3\n").unwrap_err();
        assert_eq!(err.line, Some(1));

        // Truncated document: not attributable to any one line.
        let err = read_hgr("2 2\n1\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.to_string().starts_with("hgr parse error: expected"));
    }

    /// The two-pass reader must reproduce the single-pass reader's
    /// error strings byte for byte — these are the exact messages the
    /// CLI and `hg serve`'s 400 responses have always shown.
    #[test]
    fn error_strings_regression() {
        let cases: &[(&str, &str)] = &[
            ("", "hgr parse error: empty document"),
            ("% only a comment\n", "hgr parse error: empty document"),
            ("\n", "hgr parse error at line 1: missing hyperedge count"),
            (
                "x 3\n",
                "hgr parse error at line 1: bad hyperedge count: invalid digit found in string",
            ),
            ("1\n", "hgr parse error at line 1: missing vertex count"),
            (
                "1 y\n",
                "hgr parse error at line 1: bad vertex count: invalid digit found in string",
            ),
            (
                "1 2\nbogus\n",
                "hgr parse error at line 2: bad vertex id `bogus`: invalid digit found in string",
            ),
            (
                "1 2\n3\n",
                "hgr parse error at line 2: vertex id 3 out of range 1..=2",
            ),
            (
                "1 2\n0\n",
                "hgr parse error at line 2: vertex id 0 out of range 1..=2",
            ),
            (
                "1 2\n1\n2\n",
                "hgr parse error at line 3: more than 1 hyperedge lines",
            ),
            (
                "2 2\n1\n",
                "hgr parse error: expected 2 hyperedge lines, found 1",
            ),
        ];
        for (input, want) in cases {
            let err = read_hgr(input).unwrap_err();
            assert_eq!(&err.to_string(), want, "input {input:?}");
        }
    }

    /// Error *ordering* matches the single-pass reader too: a bad id on
    /// an early line wins over a later excess-lines error, even though
    /// pass 1 walks the whole document first.
    #[test]
    fn error_order_matches_single_pass() {
        let err = read_hgr("1 2\nbogus\n2\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("bad vertex id `bogus`"), "{err}");
    }

    /// Exact preallocation: the CSR arrays come out with no spare
    /// capacity on a clean parse.
    #[test]
    fn two_pass_preallocates_exactly() {
        let h = read_hgr("3 5\n1 2 3\n% comment between edges\n2 3 4\n5\n").unwrap();
        assert_eq!(h.num_pins(), 7);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.pins(EdgeId(2)), &[VertexId(4)]);
    }
}
