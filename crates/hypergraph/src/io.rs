//! Plain-text hypergraph I/O in an hMETIS-style `.hgr` format.
//!
//! Line 1: `<num_hyperedges> <num_vertices>`. Then one line per hyperedge
//! listing its member vertices as **1-based** ids separated by whitespace;
//! an empty (whitespace-only) line is an empty hyperedge. Lines starting
//! with `%` are comments and ignored anywhere in the file.

use crate::builder::HypergraphBuilder;
use crate::hypergraph::Hypergraph;

/// Serialize `h` to `.hgr` text.
pub fn write_hgr(h: &Hypergraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.num_edges(), h.num_vertices());
    for f in h.edges() {
        let mut first = true;
        for &v in h.pins(f) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", v.0 + 1);
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Structured error from parsing `.hgr` text: what went wrong and, when
/// it is attributable to one input line, the **1-based** line number.
/// Callers (the CLI, `hg serve`'s `POST /datasets` 400 responses) can
/// point users at the exact offending line instead of a bare message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HgrError {
    /// 1-based line in the input text, counting every physical line
    /// (comments included); `None` for whole-document errors such as a
    /// truncated file.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl HgrError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        HgrError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        HgrError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "hgr parse error at line {n}: {}", self.message),
            None => write!(f, "hgr parse error: {}", self.message),
        }
    }
}

impl std::error::Error for HgrError {}

/// Parse `.hgr` text into a [`Hypergraph`].
pub fn read_hgr(text: &str) -> Result<Hypergraph, HgrError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim_start().starts_with('%'));
    let (header_no, header) = lines
        .next()
        .ok_or_else(|| HgrError::whole("empty document"))?;
    let mut it = header.split_whitespace();
    let m: usize = it
        .next()
        .ok_or_else(|| HgrError::at(header_no, "missing hyperedge count"))?
        .parse()
        .map_err(|e| HgrError::at(header_no, format!("bad hyperedge count: {e}")))?;
    let n: usize = it
        .next()
        .ok_or_else(|| HgrError::at(header_no, "missing vertex count"))?
        .parse()
        .map_err(|e| HgrError::at(header_no, format!("bad vertex count: {e}")))?;

    let mut b = HypergraphBuilder::new(n);
    let mut parsed = 0usize;
    for (line_no, line) in lines {
        if parsed == m {
            if !line.trim().is_empty() {
                return Err(HgrError::at(
                    line_no,
                    format!("more than {m} hyperedge lines"),
                ));
            }
            continue;
        }
        let mut pins = Vec::new();
        for tok in line.split_whitespace() {
            let v: usize = tok
                .parse()
                .map_err(|e| HgrError::at(line_no, format!("bad vertex id `{tok}`: {e}")))?;
            if v == 0 || v > n {
                return Err(HgrError::at(
                    line_no,
                    format!("vertex id {v} out of range 1..={n}"),
                ));
            }
            pins.push((v - 1) as u32);
        }
        b.add_edge(pins);
        parsed += 1;
    }
    if parsed != m {
        return Err(HgrError::whole(format!(
            "expected {m} hyperedge lines, found {parsed}"
        )));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::{EdgeId, VertexId};

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([]);
        b.build()
    }

    #[test]
    fn roundtrip() {
        let h = toy();
        let text = write_hgr(&h);
        let h2 = read_hgr(&text).unwrap();
        assert_eq!(h2.num_vertices(), h.num_vertices());
        assert_eq!(h2.num_edges(), h.num_edges());
        for f in h.edges() {
            assert_eq!(h.pins(f), h2.pins(f));
        }
    }

    #[test]
    fn format_shape() {
        let text = write_hgr(&toy());
        assert_eq!(text, "3 4\n1 2 3\n3 4\n\n");
    }

    #[test]
    fn comments_ignored() {
        let text = "% comment\n2 3\n1 2\n% another\n2 3\n";
        let h = read_hgr(text).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.pins(EdgeId(1)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn errors() {
        assert!(read_hgr("").is_err());
        assert!(read_hgr("x 3\n").is_err());
        assert!(read_hgr("1\n").is_err());
        assert!(read_hgr("1 2\n3\n").is_err()); // vertex out of range
        assert!(read_hgr("1 2\n0\n").is_err()); // ids are 1-based
        assert!(read_hgr("2 2\n1\n").is_err()); // too few edge lines
        assert!(read_hgr("1 2\n1\n2\n").is_err()); // too many edge lines
    }

    #[test]
    fn trailing_blank_lines_ok() {
        let h = read_hgr("1 2\n1 2\n\n\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Physical line numbers, comments counted: the bad id is line 4.
        let err = read_hgr("% header comment\n2 3\n1 2\nbogus\n").unwrap_err();
        assert_eq!(err.line, Some(4));
        assert!(err.message.contains("bad vertex id `bogus`"), "{err}");
        assert!(err.to_string().starts_with("hgr parse error at line 4:"));

        let err = read_hgr("1 2\n7\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("out of range"), "{err}");

        let err = read_hgr("x 3\n").unwrap_err();
        assert_eq!(err.line, Some(1));

        // Truncated document: not attributable to any one line.
        let err = read_hgr("2 2\n1\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.to_string().starts_with("hgr parse error: expected"));
    }
}
