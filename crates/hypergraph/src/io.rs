//! Plain-text hypergraph I/O in an hMETIS-style `.hgr` format.
//!
//! Line 1: `<num_hyperedges> <num_vertices>`. Then one line per hyperedge
//! listing its member vertices as **1-based** ids separated by whitespace;
//! an empty (whitespace-only) line is an empty hyperedge. Lines starting
//! with `%` are comments and ignored anywhere in the file.

use crate::builder::HypergraphBuilder;
use crate::hypergraph::Hypergraph;

/// Serialize `h` to `.hgr` text.
pub fn write_hgr(h: &Hypergraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.num_edges(), h.num_vertices());
    for f in h.edges() {
        let mut first = true;
        for &v in h.pins(f) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", v.0 + 1);
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Error from parsing `.hgr` text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HgrError(pub String);

impl std::fmt::Display for HgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hgr parse error: {}", self.0)
    }
}

impl std::error::Error for HgrError {}

/// Parse `.hgr` text into a [`Hypergraph`].
pub fn read_hgr(text: &str) -> Result<Hypergraph, HgrError> {
    let mut lines = text.lines().filter(|l| !l.trim_start().starts_with('%'));
    let header = lines
        .next()
        .ok_or_else(|| HgrError("empty document".into()))?;
    let mut it = header.split_whitespace();
    let m: usize = it
        .next()
        .ok_or_else(|| HgrError("missing hyperedge count".into()))?
        .parse()
        .map_err(|e| HgrError(format!("bad hyperedge count: {e}")))?;
    let n: usize = it
        .next()
        .ok_or_else(|| HgrError("missing vertex count".into()))?
        .parse()
        .map_err(|e| HgrError(format!("bad vertex count: {e}")))?;

    let mut b = HypergraphBuilder::new(n);
    let mut parsed = 0usize;
    for line in lines {
        if parsed == m {
            if !line.trim().is_empty() {
                return Err(HgrError(format!("more than {m} hyperedge lines")));
            }
            continue;
        }
        let mut pins = Vec::new();
        for tok in line.split_whitespace() {
            let v: usize = tok
                .parse()
                .map_err(|e| HgrError(format!("bad vertex id `{tok}`: {e}")))?;
            if v == 0 || v > n {
                return Err(HgrError(format!("vertex id {v} out of range 1..={n}")));
            }
            pins.push((v - 1) as u32);
        }
        b.add_edge(pins);
        parsed += 1;
    }
    if parsed != m {
        return Err(HgrError(format!(
            "expected {m} hyperedge lines, found {parsed}"
        )));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::{EdgeId, VertexId};

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([]);
        b.build()
    }

    #[test]
    fn roundtrip() {
        let h = toy();
        let text = write_hgr(&h);
        let h2 = read_hgr(&text).unwrap();
        assert_eq!(h2.num_vertices(), h.num_vertices());
        assert_eq!(h2.num_edges(), h.num_edges());
        for f in h.edges() {
            assert_eq!(h.pins(f), h2.pins(f));
        }
    }

    #[test]
    fn format_shape() {
        let text = write_hgr(&toy());
        assert_eq!(text, "3 4\n1 2 3\n3 4\n\n");
    }

    #[test]
    fn comments_ignored() {
        let text = "% comment\n2 3\n1 2\n% another\n2 3\n";
        let h = read_hgr(text).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.pins(EdgeId(1)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn errors() {
        assert!(read_hgr("").is_err());
        assert!(read_hgr("x 3\n").is_err());
        assert!(read_hgr("1\n").is_err());
        assert!(read_hgr("1 2\n3\n").is_err()); // vertex out of range
        assert!(read_hgr("1 2\n0\n").is_err()); // ids are 1-based
        assert!(read_hgr("2 2\n1\n").is_err()); // too few edge lines
        assert!(read_hgr("1 2\n1\n2\n").is_err()); // too many edge lines
    }

    #[test]
    fn trailing_blank_lines_ok() {
        let h = read_hgr("1 2\n1 2\n\n\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }
}
