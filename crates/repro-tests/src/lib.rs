//! Shim package owning the workspace-level `/tests` integration tests;
//! see the `[[test]]` entries in this crate's manifest.
