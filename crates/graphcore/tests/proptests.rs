//! Property-based tests for the plain-graph substrate.

use proptest::prelude::*;

use graphcore::{
    betweenness, bfs_distances, connected_components, core_decomposition, degree_assortativity,
    k_core_subgraph, Graph, GraphBuilder, NodeId, UNREACHABLE,
};

/// Random simple graph on up to `max_n` nodes.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v));
                }
            }
            b.build()
        })
    })
}

/// Brute-force core check: every node of the k-core has >= k neighbours
/// inside the k-core.
fn check_core_definition(g: &Graph, k: u32) {
    let (sub, _) = k_core_subgraph(g, k);
    for u in sub.nodes() {
        assert!(
            sub.degree(u) >= k as usize,
            "node with degree {} in {}-core",
            sub.degree(u),
            k
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants: sorted, dedup'd, symmetric adjacency.
    #[test]
    fn builder_invariants(g in arb_graph(16, 40)) {
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &v in nbrs {
                prop_assert!(g.neighbors(v).contains(&u));
                prop_assert!(v != u);
            }
        }
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }

    /// Core decomposition satisfies the definitional check at every k,
    /// and the max core is the last non-empty one.
    #[test]
    fn core_decomposition_definition(g in arb_graph(20, 60)) {
        let d = core_decomposition(&g);
        for k in 1..=d.max_core {
            check_core_definition(&g, k);
            prop_assert!(!d.k_core_nodes(k).is_empty());
        }
        prop_assert!(d.k_core_nodes(d.max_core + 1).is_empty());
        // Core numbers bounded by degree.
        for u in g.nodes() {
            prop_assert!(d.core_number(u) as usize <= g.degree(u));
        }
    }

    /// BFS satisfies the triangle inequality over edges:
    /// |dist(u) - dist(v)| <= 1 for every edge {u, v}.
    #[test]
    fn bfs_edge_lipschitz(g in arb_graph(16, 40)) {
        let src = NodeId(0);
        let dist = bfs_distances(&g, src);
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            match (du == UNREACHABLE, dv == UNREACHABLE) {
                (true, true) => {}
                (false, false) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge ({u:?},{v:?}): {du} vs {dv}")
                }
                _ => prop_assert!(false, "edge crosses reachability boundary"),
            }
        }
    }

    /// Components agree with BFS reachability.
    #[test]
    fn components_match_bfs(g in arb_graph(14, 30)) {
        let cc = connected_components(&g);
        let dist = bfs_distances(&g, NodeId(0));
        for u in g.nodes() {
            let same_cc = cc.label[u.index()] == cc.label[0];
            let reachable = dist[u.index()] != UNREACHABLE;
            prop_assert_eq!(same_cc, reachable, "{:?}", u);
        }
        let total: u32 = cc.size.iter().sum();
        prop_assert_eq!(total as usize, g.num_nodes());
    }

    /// Betweenness is non-negative, zero on degree-<=1 nodes, and the
    /// total equals the number of ordered reachable pairs with an
    /// intermediate node... bounded by n(n-1)(n-2).
    #[test]
    fn betweenness_sane(g in arb_graph(12, 30)) {
        let c = betweenness(&g);
        let n = g.num_nodes() as f64;
        for (u, &score) in c.iter().enumerate() {
            prop_assert!(score >= -1e-9);
            if g.degree(NodeId(u as u32)) <= 1 {
                prop_assert!(score.abs() < 1e-9, "leaf/isolate with betweenness {score}");
            }
            prop_assert!(score <= n * n * n);
        }
    }

    /// Assortativity, when defined, lies in [-1, 1].
    #[test]
    fn assortativity_in_range(g in arb_graph(16, 50)) {
        if let Some(r) = degree_assortativity(&g) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    /// Pajek .net round-trips any graph.
    #[test]
    fn pajek_roundtrip(g in arb_graph(16, 40)) {
        let text = graphcore::pajek::write_net(&g, None);
        let (g2, _) = graphcore::pajek::parse_net(&text).unwrap();
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        prop_assert!(g.edges().eq(g2.edges()));
    }
}
