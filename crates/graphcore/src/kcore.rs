//! Linear-time k-core decomposition of a plain graph.
//!
//! This is the classical bucket-peeling algorithm (Batagelj–Zaveršnik):
//! repeatedly remove a vertex of minimum degree; the highest minimum degree
//! observed is the maximum core, and the degree at which each vertex is
//! removed is its *core number*. The paper (§3) uses exactly this procedure
//! on the DIP protein-interaction graphs as the baseline its hypergraph
//! k-core generalizes.

use hgobs::{Deadline, DeadlineExceeded};

use crate::graph::{Graph, NodeId};

/// The full core decomposition of a graph.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[u]` = core number of node `u`: the largest k such that `u`
    /// belongs to the k-core.
    pub core: Vec<u32>,
    /// Maximum core number over all nodes (0 for an edgeless graph).
    pub max_core: u32,
    /// Nodes in non-decreasing order of removal (i.e. sorted by core
    /// number, the order the peeling deleted them).
    pub peel_order: Vec<NodeId>,
}

impl CoreDecomposition {
    /// Core number of `u`.
    #[inline]
    pub fn core_number(&self, u: NodeId) -> u32 {
        self.core[u.index()]
    }

    /// Nodes whose core number is at least `k` (the vertex set of the
    /// k-core).
    pub fn k_core_nodes(&self, k: u32) -> Vec<NodeId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(u, _)| NodeId(u as u32))
            .collect()
    }

    /// Nodes of the maximum core.
    pub fn max_core_nodes(&self) -> Vec<NodeId> {
        self.k_core_nodes(self.max_core)
    }

    /// Number of nodes in the k-core, for k = 0..=max_core.
    pub fn core_size_profile(&self) -> Vec<usize> {
        let mut profile = vec![0usize; self.max_core as usize + 1];
        for &c in &self.core {
            profile[c as usize] += 1;
        }
        // Make it cumulative from the top: k-core size = #nodes with core >= k.
        for k in (0..self.max_core as usize).rev() {
            profile[k] += profile[k + 1];
        }
        profile
    }
}

/// Compute the full core decomposition in O(n + m) time.
///
/// Implementation: counting-sort nodes by degree into a flat `vert` array
/// with bucket starts `bin`, then peel in degree order, moving each
/// affected neighbour one bucket down (constant time per degree decrement).
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    match core_decomposition_with(g, &Deadline::none()) {
        Ok(decomp) => decomp,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`core_decomposition`] under a cooperative [`Deadline`], checked every
/// [`hgobs::CHECK_INTERVAL`] peeled nodes. On expiry the error's
/// `work_done` is the number of nodes peeled, and the partial peel count
/// is still flushed to the `graph.kcore.nodes_peeled` counter.
pub fn core_decomposition_with(
    g: &Graph,
    deadline: &Deadline,
) -> Result<CoreDecomposition, DeadlineExceeded> {
    let _span = hgobs::Span::enter("graph.kcore");
    let mut tp = deadline.trace().phase("graph.kcore.peel");
    let n = g.num_nodes();
    if n == 0 {
        return Ok(CoreDecomposition {
            core: Vec::new(),
            max_core: 0,
            peel_order: Vec::new(),
        });
    }

    let mut degree: Vec<u32> = g.nodes().map(|u| g.degree(u) as u32).collect();
    let max_deg = *degree.iter().max().unwrap() as usize;

    // bin[d] = index in `vert` where the block of degree-d nodes starts.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    let mut starts = bin.clone(); // starts[d] = first index of degree-d block

    let mut vert = vec![0u32; n]; // nodes sorted by degree
    let mut pos = vec![0u32; n]; // position of each node in `vert`
    {
        let mut cursor = bin.clone();
        for u in 0..n {
            let d = degree[u] as usize;
            vert[cursor[d] as usize] = u as u32;
            pos[u] = cursor[d];
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut max_core = 0u32;
    let mut peel_order = Vec::with_capacity(n);
    let mut degree_decrements: u64 = 0;
    let mut ticks = 0u32;

    for i in 0..n {
        if deadline.tick(&mut ticks) {
            hgobs::counter!("graph.kcore.nodes_peeled", i);
            hgobs::counter!("graph.kcore.degree_decrements", degree_decrements);
            return Err(deadline.exceeded("graph.kcore.peel", i as u64));
        }
        let u = vert[i] as usize;
        let du = degree[u];
        core[u] = du;
        max_core = max_core.max(du);
        peel_order.push(NodeId(u as u32));

        for &v in g.neighbors(NodeId(u as u32)) {
            let v = v.index();
            if degree[v] > du {
                // Swap v with the first node of its degree block, then
                // shrink that block by one: v's degree drops by one.
                let dv = degree[v] as usize;
                let pv = pos[v] as usize;
                let pw = starts[dv] as usize;
                let w = vert[pw] as usize;
                if v != w {
                    vert[pv] = w as u32;
                    vert[pw] = v as u32;
                    pos[v] = pw as u32;
                    pos[w] = pv as u32;
                }
                starts[dv] += 1;
                degree[v] -= 1;
                degree_decrements += 1;
            }
        }
    }

    tp.add_work(n as u64);
    hgobs::counter!("graph.kcore.nodes_peeled", n);
    hgobs::counter!("graph.kcore.degree_decrements", degree_decrements);

    // The peeling assigns core[u] = degree at removal; because degrees only
    // decrease as neighbours are peeled, this equals the core number.
    Ok(CoreDecomposition {
        core,
        max_core,
        peel_order,
    })
}

/// Extract the k-core as an induced subgraph.
///
/// Returns `(subgraph, node_map)` where `node_map[i]` is the original id of
/// subgraph node `i`. The subgraph is empty when the k-core is empty.
pub fn k_core_subgraph(g: &Graph, k: u32) -> (Graph, Vec<NodeId>) {
    let decomp = core_decomposition(g);
    induced_subgraph(g, &decomp.k_core_nodes(k))
}

/// Induced subgraph on `nodes` (which must be duplicate-free).
///
/// Returns `(subgraph, node_map)` with `node_map[i]` the original id of
/// subgraph node `i`.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (i, &u) in nodes.iter().enumerate() {
        assert!(
            new_id[u.index()] == u32::MAX,
            "duplicate node {u:?} in induced_subgraph"
        );
        new_id[u.index()] = i as u32;
    }
    let mut b = crate::GraphBuilder::new(nodes.len());
    for &u in nodes {
        for &v in g.neighbors(u) {
            if new_id[v.index()] != u32::MAX && u < v {
                b.add_edge(NodeId(new_id[u.index()]), NodeId(new_id[v.index()]));
            }
        }
    }
    (b.build(), nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The paper's Fig. 2 shape: a triangle-rich kernel whose maximum core
    /// is a 3-core, with a pendant tree so the 1-core is the whole graph
    /// and the 2-core equals the 3-core. Nodes 0..=3 form K4 (the 3-core);
    /// 4 hangs off 0; 5 hangs off 4.
    fn fig2_like() -> Graph {
        let mut b = GraphBuilder::new(6);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        b.add_edge(NodeId(0), NodeId(4));
        b.add_edge(NodeId(4), NodeId(5));
        b.build()
    }

    #[test]
    fn fig2_core_structure() {
        let g = fig2_like();
        let d = core_decomposition(&g);
        assert_eq!(d.max_core, 3);
        assert_eq!(
            d.max_core_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        // 1-core is everything, 2-core == 3-core, 4-core empty.
        assert_eq!(d.k_core_nodes(1).len(), 6);
        assert_eq!(d.k_core_nodes(2), d.k_core_nodes(3));
        assert!(d.k_core_nodes(4).is_empty());
    }

    #[test]
    fn core_numbers_on_path() {
        let mut b = GraphBuilder::new(4);
        for i in 1..4u32 {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let d = core_decomposition(&b.build());
        assert_eq!(d.max_core, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn edgeless_graph_is_zero_core() {
        let d = core_decomposition(&GraphBuilder::new(3).build());
        assert_eq!(d.max_core, 0);
        assert_eq!(d.core, vec![0, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        let d = core_decomposition(&GraphBuilder::new(0).build());
        assert_eq!(d.max_core, 0);
        assert!(d.core.is_empty());
    }

    #[test]
    fn clique_core_is_n_minus_1() {
        let n = 7u32;
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        let d = core_decomposition(&b.build());
        assert_eq!(d.max_core, n - 1);
        assert!(d.core.iter().all(|&c| c == n - 1));
    }

    #[test]
    fn core_size_profile_cumulative() {
        let g = fig2_like();
        let d = core_decomposition(&g);
        let profile = d.core_size_profile();
        assert_eq!(profile, vec![6, 6, 4, 4]); // k=0,1,2,3
    }

    #[test]
    fn k_core_subgraph_is_k4() {
        let g = fig2_like();
        let (sub, map) = k_core_subgraph(&g, 3);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 6);
        assert_eq!(map.len(), 4);
        // Every node of the 3-core has degree >= 3 inside it.
        assert!(sub.nodes().all(|u| sub.degree(u) >= 3));
    }

    #[test]
    fn peel_order_nondecreasing_core() {
        let g = fig2_like();
        let d = core_decomposition(&g);
        let cores: Vec<u32> = d.peel_order.iter().map(|&u| d.core[u.index()]).collect();
        assert!(cores.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unlimited_deadline_matches_plain_decomposition() {
        let g = fig2_like();
        let a = core_decomposition(&g);
        let b = core_decomposition_with(&g, &Deadline::none()).unwrap();
        assert_eq!(a.core, b.core);
        assert_eq!(a.max_core, b.max_core);
        assert_eq!(a.peel_order, b.peel_order);
    }

    #[test]
    fn deadline_fires_mid_peel_with_partial_node_count() {
        // Big path graph: the peel loop dominates. A pre-expired deadline
        // must stop within the first tick window with a partial count.
        let n = 200_000u32;
        let mut b = GraphBuilder::new(n as usize);
        for i in 1..n {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let g = b.build();
        let err =
            core_decomposition_with(&g, &Deadline::after(std::time::Duration::ZERO)).unwrap_err();
        assert_eq!(err.phase, "graph.kcore.peel");
        assert!(err.work_done < n as u64, "{err:?}");
    }

    /// Definitional check: within the k-core subgraph every node has degree
    /// ≥ k, and the (k+1)-core with k = max_core is empty.
    #[test]
    fn core_definition_holds_on_random_like_graph() {
        // Deterministic pseudo-random graph via a simple LCG.
        let n = 60u64;
        let mut b = GraphBuilder::new(n as usize);
        let mut x = 12345u64;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) % n;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % n;
            if u != v {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
        let g = b.build();
        let d = core_decomposition(&g);
        for k in 1..=d.max_core {
            let (sub, _) = k_core_subgraph(&g, k);
            if sub.num_nodes() > 0 {
                assert!(
                    sub.nodes().all(|u| sub.degree(u) >= k as usize),
                    "k={k}: some node has degree < k in the k-core"
                );
            }
        }
        let (above, _) = k_core_subgraph(&g, d.max_core + 1);
        assert_eq!(above.num_nodes(), 0);
    }
}
