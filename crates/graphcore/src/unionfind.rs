//! Disjoint-set forest with union by rank and path halving.

/// Disjoint-set (union–find) structure over dense `usize` indices.
///
/// Used for connected components of graphs and hypergraphs; near-constant
/// amortized time per operation.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, ..., {n-1}`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the sets of `x` and `y`; returns `true` if they were distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// `true` iff `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Dense labelling: returns `(labels, count)` where labels are
    /// `0..count` and equal labels mean same set.
    pub fn labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut out = vec![0u32; n];
        for (x, slot) in out.iter_mut().enumerate() {
            let r = self.find(x);
            if label[r] == u32::MAX {
                label[r] = next;
                next += 1;
            }
            *slot = label[r];
        }
        (out, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same_set(0, 2));
    }

    #[test]
    fn labels_are_dense() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 2);
        let (labels, count) = uf.labels();
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
        assert!(labels.iter().all(|&l| (l as usize) < count));
    }

    #[test]
    fn empty_ok() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let (labels, count) = uf.labels();
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
