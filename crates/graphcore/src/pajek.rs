//! Pajek `.net` / `.clu` export for plain graphs.
//!
//! The paper draws Fig. 3 with Pajek; this module writes the formats Pajek
//! reads: a `*Vertices`/`*Edges` network file and an optional partition
//! (`.clu`) file used for colouring (e.g. max-core membership).

use std::fmt::Write as _;

use crate::graph::{Graph, NodeId};

/// Serialize `g` as a Pajek `.net` document.
///
/// `labels`, when provided, must have one entry per node; otherwise nodes
/// are labelled `v1..vn`. Pajek ids are 1-based.
pub fn write_net(g: &Graph, labels: Option<&[String]>) -> String {
    if let Some(l) = labels {
        assert_eq!(l.len(), g.num_nodes(), "one label per node required");
    }
    let mut out = String::new();
    let _ = writeln!(out, "*Vertices {}", g.num_nodes());
    for u in g.nodes() {
        let default;
        let label = match labels {
            Some(l) => &l[u.index()],
            None => {
                default = format!("v{}", u.0 + 1);
                &default
            }
        };
        let _ = writeln!(out, "{} \"{}\"", u.0 + 1, label);
    }
    let _ = writeln!(out, "*Edges");
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0 + 1, v.0 + 1);
    }
    out
}

/// Serialize a node partition as a Pajek `.clu` document.
///
/// `class[u]` is the colour class of node `u` (e.g. 1 for max-core
/// members, 0 otherwise).
pub fn write_clu(class: &[u32]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*Vertices {}", class.len());
    for &c in class {
        let _ = writeln!(out, "{c}");
    }
    out
}

/// Parse a (subset of) Pajek `.net` document: `*Vertices n` followed by
/// optional labelled vertex lines, then `*Edges`/`*Arcs` with one pair per
/// line. Returns the graph and the labels.
pub fn parse_net(text: &str) -> Result<(Graph, Vec<String>), String> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines.next().ok_or("empty document")?;
    let n: usize = header
        .strip_prefix("*Vertices")
        .ok_or("missing *Vertices header")?
        .trim()
        .parse()
        .map_err(|e| format!("bad vertex count: {e}"))?;

    let mut labels: Vec<String> = (1..=n).map(|i| format!("v{i}")).collect();
    let mut builder = crate::GraphBuilder::new(n);
    let mut in_edges = false;

    for line in lines {
        if line.starts_with('*') {
            let kw = line.to_ascii_lowercase();
            if kw.starts_with("*edges") || kw.starts_with("*arcs") {
                in_edges = true;
                continue;
            }
            return Err(format!("unsupported section: {line}"));
        }
        if in_edges {
            let mut it = line.split_whitespace();
            let u: usize = it
                .next()
                .ok_or("edge line missing source")?
                .parse()
                .map_err(|e| format!("bad edge endpoint: {e}"))?;
            let v: usize = it
                .next()
                .ok_or("edge line missing target")?
                .parse()
                .map_err(|e| format!("bad edge endpoint: {e}"))?;
            if u == 0 || v == 0 || u > n || v > n {
                return Err(format!("edge ({u},{v}) out of range 1..={n}"));
            }
            builder.add_edge(NodeId(u as u32 - 1), NodeId(v as u32 - 1));
        } else {
            // Vertex line: `<id> "label" [coords...]`.
            let mut it = line.splitn(2, char::is_whitespace);
            let id: usize = it
                .next()
                .unwrap()
                .parse()
                .map_err(|e| format!("bad vertex id: {e}"))?;
            if id == 0 || id > n {
                return Err(format!("vertex id {id} out of range 1..={n}"));
            }
            if let Some(rest) = it.next() {
                let rest = rest.trim();
                let label = rest
                    .strip_prefix('"')
                    .and_then(|s| s.split('"').next())
                    .unwrap_or(rest);
                labels[id - 1] = label.to_string();
            }
        }
    }
    Ok((builder.build(), labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.build()
    }

    #[test]
    fn net_roundtrip_default_labels() {
        let g = sample();
        let text = write_net(&g, None);
        let (g2, labels) = parse_net(&text).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        assert_eq!(g2.num_edges(), 2);
        assert!(g2.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(labels[0], "v1");
    }

    #[test]
    fn net_roundtrip_custom_labels() {
        let g = sample();
        let labels: Vec<String> = ["ADH1", "CDC28", "TUB1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = write_net(&g, Some(&labels));
        let (_, parsed) = parse_net(&text).unwrap();
        assert_eq!(parsed, labels);
    }

    #[test]
    fn clu_format() {
        let text = write_clu(&[0, 1, 1]);
        assert_eq!(text, "*Vertices 3\n0\n1\n1\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_net("").is_err());
        assert!(parse_net("*Vertices x").is_err());
        assert!(parse_net("*Vertices 2\n*Edges\n1 5").is_err());
        assert!(parse_net("*Vertices 1\n*Matrix").is_err());
    }
}
