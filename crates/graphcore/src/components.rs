//! Connected components of a graph.

use crate::graph::{Graph, NodeId};
use crate::unionfind::UnionFind;

/// Result of a connected-components computation.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[u]` is the component index of node `u`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// `size[c]` is the number of nodes in component `c`.
    pub size: Vec<u32>,
}

impl Components {
    /// Index of a largest component (ties broken by lowest index).
    pub fn largest(&self) -> Option<usize> {
        (0..self.count).max_by_key(|&c| (self.size[c], std::cmp::Reverse(c)))
    }

    /// Nodes belonging to component `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize == c)
            .map(|(u, _)| NodeId(u as u32))
            .collect()
    }

    /// Component sizes sorted descending.
    pub fn sizes_desc(&self) -> Vec<u32> {
        let mut s = self.size.clone();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }
}

/// Connected components via union–find, O(m α(n)).
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.num_nodes());
    for (u, v) in g.edges() {
        uf.union(u.index(), v.index());
    }
    let (label, count) = uf.labels();
    let mut size = vec![0u32; count];
    for &l in &label {
        size[l as usize] += 1;
    }
    Components { label, count, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn two_components_and_isolate() {
        // {0-1-2}, {3-4}, {5}
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(3), NodeId(4));
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        assert_eq!(cc.sizes_desc(), vec![3, 2, 1]);
        let big = cc.largest().unwrap();
        assert_eq!(cc.size[big], 3);
        assert_eq!(cc.members(big), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = GraphBuilder::new(0).build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 0);
        assert_eq!(cc.largest(), None);

        let g = GraphBuilder::new(3).build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        assert!(cc.size.iter().all(|&s| s == 1));
    }

    #[test]
    fn single_component_cycle() {
        let n = 10;
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
        let cc = connected_components(&b.build());
        assert_eq!(cc.count, 1);
        assert_eq!(cc.size[0], n as u32);
    }
}
