//! Breadth-first search, shortest-path distances, diameter, and
//! average path length — the small-world statistics of the paper's §2,
//! computed on plain graphs (and reused by the hypergraph crate through its
//! bipartite view).

use hgobs::{Deadline, DeadlineExceeded};

use crate::graph::{Graph, NodeId};
use crate::UNREACHABLE;

/// Unweighted shortest-path distances from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`]. O(n + m).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    match bfs_distances_with(g, source, &Deadline::none()) {
        Ok(dist) => dist,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`bfs_distances`] under a cooperative [`Deadline`], checked every
/// [`hgobs::CHECK_INTERVAL`] settled nodes. On expiry the error's
/// `work_done` is the number of nodes settled.
pub fn bfs_distances_with(
    g: &Graph,
    source: NodeId,
    deadline: &Deadline,
) -> Result<Vec<u32>, DeadlineExceeded> {
    let mut tp = deadline.trace().phase("graph.bfs");
    // Upfront check: the amortized tick only fires every CHECK_INTERVAL
    // settled nodes, which a small graph may never reach.
    if deadline.expired() {
        return Err(deadline.exceeded("graph.bfs", 0));
    }
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    let mut ticks = 0u32;
    let mut settled = 0u64;
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        if deadline.tick(&mut ticks) {
            return Err(deadline.exceeded("graph.bfs", settled));
        }
        settled += 1;
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    tp.add_work(settled);
    Ok(dist)
}

/// BFS that reuses caller-provided scratch buffers; used by the exact
/// all-pairs sweeps so the per-source allocation disappears from the
/// hot loop (perf-book: hoist allocations out of loops). The shared
/// `ticks` counter amortizes deadline checks across the whole sweep;
/// returns `false` when the deadline fired mid-BFS.
pub(crate) fn bfs_into(
    g: &Graph,
    source: NodeId,
    dist: &mut [u32],
    queue: &mut std::collections::VecDeque<NodeId>,
    deadline: &Deadline,
    ticks: &mut u32,
) -> bool {
    dist.fill(UNREACHABLE);
    queue.clear();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        if deadline.tick(ticks) {
            return false;
        }
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    true
}

/// Maximum finite distance from `source` (its eccentricity within its
/// component). Returns 0 for an isolated node.
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Aggregate distance statistics over all *reachable ordered pairs*
/// (u, v), u ≠ v — the quantities behind the paper's "diameter 6,
/// average path length 2.568" claim.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceStats {
    /// Largest finite pairwise distance.
    pub diameter: u32,
    /// Mean finite pairwise distance over reachable ordered pairs.
    pub average_path_length: f64,
    /// Number of reachable ordered pairs contributing to the mean.
    pub reachable_pairs: u64,
}

/// Exact diameter and average path length by a BFS from every node:
/// O(n (n + m)). Exact is fine at Cellzome scale (~1.4k + 232 nodes in
/// the bipartite view); for larger inputs see [`distance_stats_sampled`].
pub fn distance_stats_exact(g: &Graph) -> DistanceStats {
    match distance_stats_exact_with(g, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`distance_stats_exact`] under a cooperative [`Deadline`]. Runs the
/// batched MS-BFS engine ([`crate::msbfs`]): on expiry the error's
/// phase is `"graph.msbfs"` and `work_done` counts completed batches of
/// [`crate::msbfs::BATCH`] sources; the `graph.bfs.sources` counter
/// still reflects completed sources. [`distance_stats_sampled_with`]
/// remains the per-source scalar oracle.
pub fn distance_stats_exact_with(
    g: &Graph,
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    crate::msbfs::msbfs_distance_stats_with(g, deadline)
}

/// Distance statistics estimated by BFS from `sources` chosen by the
/// caller (e.g. a random sample). The diameter estimate is a lower bound;
/// the average is over pairs (s, v) with s in `sources`.
pub fn distance_stats_sampled(g: &Graph, sources: &[NodeId]) -> DistanceStats {
    match distance_stats_sampled_with(g, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`distance_stats_sampled`] under a cooperative [`Deadline`], checked
/// every [`hgobs::CHECK_INTERVAL`] settled nodes across the whole sweep.
pub fn distance_stats_sampled_with(
    g: &Graph,
    sources: &[NodeId],
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("graph.bfs.sweep");
    let mut diameter = 0u32;
    let mut total = 0u128;
    let mut pairs = 0u64;
    let mut dist = vec![0u32; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    let mut ticks = 0u32;
    let mut completed = 0u64;
    for &u in sources {
        // Per-source boundary check: negligible next to a BFS, and it
        // makes expiry deterministic on graphs too small for the
        // amortized tick to ever fire.
        if deadline.expired() || !bfs_into(g, u, &mut dist, &mut queue, deadline, &mut ticks) {
            hgobs::counter!("graph.bfs.sources", completed);
            return Err(deadline.exceeded("graph.bfs.sweep", completed));
        }
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && v != u.index() {
                diameter = diameter.max(d);
                total += d as u128;
                pairs += 1;
            }
        }
        completed += 1;
    }
    hgobs::counter!("graph.bfs.sources", completed);
    Ok(DistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    })
}

/// Exact diameter (largest finite pairwise distance).
pub fn diameter(g: &Graph) -> u32 {
    distance_stats_exact(g).diameter
}

/// Exact average shortest-path length over reachable ordered pairs.
pub fn average_path_length(g: &Graph) -> f64 {
    distance_stats_exact(g).average_path_length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn diameter_of_path() {
        assert_eq!(diameter(&path(6)), 5);
    }

    #[test]
    fn eccentricity_center_vs_end() {
        let g = path(5);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn average_path_length_path3() {
        // path 0-1-2: ordered pairs distances 1,1,1,1,2,2 -> mean 8/6.
        let apl = average_path_length(&path(3));
        assert!((apl - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_cross_component_pairs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let s = distance_stats_exact(&g);
        assert_eq!(s.diameter, 1);
        assert_eq!(s.reachable_pairs, 4);
        assert!((s.average_path_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact_when_all_sources() {
        let g = path(7);
        let all: Vec<_> = g.nodes().collect();
        let exact = distance_stats_exact(&g);
        let sampled = distance_stats_sampled(&g, &all);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = distance_stats_exact(&g);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
        assert_eq!(s.average_path_length, 0.0);
    }
}
