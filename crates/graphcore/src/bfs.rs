//! Breadth-first search, shortest-path distances, diameter, and
//! average path length — the small-world statistics of the paper's §2,
//! computed on plain graphs (and reused by the hypergraph crate through its
//! bipartite view).

use crate::graph::{Graph, NodeId};
use crate::UNREACHABLE;

/// Unweighted shortest-path distances from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`]. O(n + m).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS that reuses caller-provided scratch buffers; used by the exact
/// all-pairs sweeps so the per-source allocation disappears from the
/// hot loop (perf-book: hoist allocations out of loops).
pub(crate) fn bfs_into(
    g: &Graph,
    source: NodeId,
    dist: &mut [u32],
    queue: &mut std::collections::VecDeque<NodeId>,
) {
    dist.fill(UNREACHABLE);
    queue.clear();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Maximum finite distance from `source` (its eccentricity within its
/// component). Returns 0 for an isolated node.
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Aggregate distance statistics over all *reachable ordered pairs*
/// (u, v), u ≠ v — the quantities behind the paper's "diameter 6,
/// average path length 2.568" claim.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceStats {
    /// Largest finite pairwise distance.
    pub diameter: u32,
    /// Mean finite pairwise distance over reachable ordered pairs.
    pub average_path_length: f64,
    /// Number of reachable ordered pairs contributing to the mean.
    pub reachable_pairs: u64,
}

/// Exact diameter and average path length by a BFS from every node:
/// O(n (n + m)). Exact is fine at Cellzome scale (~1.4k + 232 nodes in
/// the bipartite view); for larger inputs see [`distance_stats_sampled`].
pub fn distance_stats_exact(g: &Graph) -> DistanceStats {
    let _span = hgobs::Span::enter("graph.bfs.sweep");
    hgobs::counter!("graph.bfs.sources", g.num_nodes());
    let mut diameter = 0u32;
    let mut total = 0u128;
    let mut pairs = 0u64;
    let mut dist = vec![0u32; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    for u in g.nodes() {
        bfs_into(g, u, &mut dist, &mut queue);
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && v != u.index() {
                diameter = diameter.max(d);
                total += d as u128;
                pairs += 1;
            }
        }
    }
    DistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    }
}

/// Distance statistics estimated by BFS from `sources` chosen by the
/// caller (e.g. a random sample). The diameter estimate is a lower bound;
/// the average is over pairs (s, v) with s in `sources`.
pub fn distance_stats_sampled(g: &Graph, sources: &[NodeId]) -> DistanceStats {
    let _span = hgobs::Span::enter("graph.bfs.sweep");
    hgobs::counter!("graph.bfs.sources", sources.len());
    let mut diameter = 0u32;
    let mut total = 0u128;
    let mut pairs = 0u64;
    let mut dist = vec![0u32; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    for &u in sources {
        bfs_into(g, u, &mut dist, &mut queue);
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && v != u.index() {
                diameter = diameter.max(d);
                total += d as u128;
                pairs += 1;
            }
        }
    }
    DistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    }
}

/// Exact diameter (largest finite pairwise distance).
pub fn diameter(g: &Graph) -> u32 {
    distance_stats_exact(g).diameter
}

/// Exact average shortest-path length over reachable ordered pairs.
pub fn average_path_length(g: &Graph) -> f64 {
    distance_stats_exact(g).average_path_length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn diameter_of_path() {
        assert_eq!(diameter(&path(6)), 5);
    }

    #[test]
    fn eccentricity_center_vs_end() {
        let g = path(5);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn average_path_length_path3() {
        // path 0-1-2: ordered pairs distances 1,1,1,1,2,2 -> mean 8/6.
        let apl = average_path_length(&path(3));
        assert!((apl - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_cross_component_pairs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let s = distance_stats_exact(&g);
        assert_eq!(s.diameter, 1);
        assert_eq!(s.reachable_pairs, 4);
        assert!((s.average_path_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact_when_all_sources() {
        let g = path(7);
        let all: Vec<_> = g.nodes().collect();
        let exact = distance_stats_exact(&g);
        let sampled = distance_stats_sampled(&g, &all);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = distance_stats_exact(&g);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
        assert_eq!(s.average_path_length, 0.0);
    }
}
