//! Word-level summary bitmaps for the bitset BFS kernels.
//!
//! The MS-BFS sweeps keep one `u64` mask per vertex (or hyperedge). On
//! sparse levels — a handful of frontier vertices in a graph of
//! thousands — scanning every mask word to find the few nonzero ones
//! dominates the traversal. A *summary* keeps one bit per mask word:
//! bit `i % 64` of `summary[i / 64]` is set exactly when mask word `i`
//! is nonzero. The kernels maintain the summary as they set mask bits
//! (a mask word only becomes nonzero inside the `add != 0` branch that
//! already exists), so skipping a zero summary word skips 64 mask words
//! without touching them.
//!
//! [`scan_active`] is the flat, branch-predictable u64-lane sweep that
//! decides each level's strategy: it returns the nonzero-word watermarks
//! (lowest and highest active summary index) and the active-word count,
//! from which the caller picks the sparse (summary-driven, zero words
//! skipped) or dense (flat range scan) expansion path.

/// `u64` words per source mask: each lane carries [`LANE_BITS`]
/// sources. The whole lane — both masks — is exactly one 64-byte cache
/// line, so a random expansion probe costs the same one miss it would
/// at one word per mask, while advancing four times as many sources.
/// The elementwise `|`/`& !` passes over `[u64; 4]` are exactly the
/// shape LLVM autovectorizes to 256-bit SIMD ops.
pub const LANE_WORDS: usize = 4;

/// Sources per lane (and per MS-BFS batch): `64 * LANE_WORDS`.
pub const LANE_BITS: usize = 64 * LANE_WORDS;

/// A multi-word source mask: bit `i` of word `i / 64` stands for batch
/// source `i`.
pub type Mask = [u64; LANE_WORDS];

/// The all-zero mask.
pub const MASK_ZERO: Mask = [0; LANE_WORDS];

/// `true` when no bit of `m` is set — a branchless OR-fold, so callers
/// can use it in arithmetic (`(!mask_is_zero(&m)) as u64`) without a
/// data-dependent branch.
#[inline]
pub fn mask_is_zero(m: &Mask) -> bool {
    m.iter().fold(0, |acc, &w| acc | w) == 0
}

/// Set bits across all words of `m`.
#[inline]
pub fn mask_count(m: &Mask) -> u64 {
    m.iter().map(|w| w.count_ones() as u64).sum()
}

/// `acc |= m`, elementwise (the pull direction's gather step).
#[inline]
pub fn mask_or_into(acc: &mut Mask, m: &Mask) {
    for w in 0..LANE_WORDS {
        acc[w] |= m[w];
    }
}

/// The mask with bits `0..len` set: "every source of a `len`-wide
/// batch". Saturation tests compare `seen` against this.
#[inline]
pub fn mask_full(len: usize) -> Mask {
    let mut m = MASK_ZERO;
    for (w, out) in m.iter_mut().enumerate() {
        let lo = w * 64;
        *out = if len >= lo + 64 {
            u64::MAX
        } else if len > lo {
            (1u64 << (len - lo)) - 1
        } else {
            0
        };
    }
    m
}

/// One vertex's (or hyperedge's) `seen` and `frontier` masks,
/// interleaved. The expansion passes always touch both masks of a
/// randomly addressed entry — `add = frontier & !seen`, then both get
/// the new bits ORed in — so keeping them in separate arrays costs two
/// cache misses per probe. One interleaved pair costs one, and the
/// `align(64)` keeps the 64-byte pair from ever straddling two cache
/// lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C, align(64))]
pub struct Lane {
    /// Bit `i` set once source `i` has reached this entry.
    pub seen: Mask,
    /// Bit `i` set while source `i`'s frontier holds this entry.
    pub front: Mask,
}

impl Lane {
    /// The all-zero lane.
    pub const ZERO: Lane = Lane {
        seen: MASK_ZERO,
        front: MASK_ZERO,
    };

    /// `frontier & !seen`, the bits `m` would newly deliver here —
    /// elementwise, no branches.
    #[inline]
    pub fn fresh(&self, m: &Mask) -> Mask {
        let mut add = MASK_ZERO;
        for w in 0..LANE_WORDS {
            add[w] = m[w] & !self.seen[w];
        }
        add
    }

    /// OR `add` into both masks (the push/pull delivery step).
    #[inline]
    pub fn absorb(&mut self, add: &Mask) {
        for ((s, f), &a) in self.seen.iter_mut().zip(self.front.iter_mut()).zip(add) {
            *s |= a;
            *f |= a;
        }
    }

    /// `true` once every source in a `full`-masked batch has reached
    /// this entry — it can never produce new bits again.
    #[inline]
    pub fn saturated(&self, full: &Mask) -> bool {
        self.seen == *full
    }
}

/// Tallies of how the level drains ran; flushed to named counters by
/// the kernels that own them.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainStats {
    /// Levels drained by walking summary bits.
    pub sparse_passes: u64,
    /// Levels drained by a flat scan of the watermark range.
    pub dense_passes: u64,
    /// All-zero summary words skipped outright on sparse levels — each
    /// one is 64 mask words never touched.
    pub words_skipped: u64,
    /// Passes run in the pull direction (gather from unsaturated
    /// entries) instead of pushing the frontier.
    pub pull_passes: u64,
}

/// Number of `u64` summary words covering `len` mask words.
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// Record that mask word `i` is (now) nonzero.
#[inline]
pub fn mark(summary: &mut [u64], i: usize) {
    summary[i >> 6] |= 1u64 << (i & 63);
}

/// One flat sweep over a summary: `(lo, hi, active)` where
/// `lo..hi` is the half-open range of summary indices holding any
/// nonzero word (the watermarks) and `active` counts nonzero summary
/// words inside it. `active == 0` means the whole mask is zero (and
/// `lo..hi` is empty).
#[inline]
pub fn scan_active(summary: &[u64]) -> (usize, usize, usize) {
    let mut lo = summary.len();
    let mut hi = 0usize;
    let mut active = 0usize;
    for (i, &w) in summary.iter().enumerate() {
        if w != 0 {
            active += 1;
            hi = i + 1;
            lo = lo.min(i);
        }
    }
    if active == 0 {
        (0, 0, 0)
    } else {
        (lo, hi, active)
    }
}

/// Total set bits across a summary — one flat branchless popcount
/// sweep; the input to the per-level push/pull and sparse/dense
/// strategy decisions.
#[inline]
pub fn count_bits(summary: &[u64]) -> u64 {
    summary.iter().map(|w| w.count_ones() as u64).sum()
}

/// Fill `summary` so bits `0..len` are set and any tail bits of the
/// last word are clear: the all-entries-eligible state (e.g. "every
/// lane still unsaturated" at the start of a batch).
pub fn fill_all(summary: &mut [u64], len: usize) {
    summary.fill(u64::MAX);
    if len & 63 != 0 {
        if let Some(last) = summary.last_mut() {
            *last = (1u64 << (len & 63)) - 1;
        }
    }
}

/// Sparse levels consult the summary bit by bit; dense levels scan the
/// watermark range flat. The crossover: a summary word is worth
/// consulting while fewer than one in [`DENSE_DIVISOR`] words inside
/// the watermark range is active.
pub const DENSE_DIVISOR: usize = 4;

/// `true` when the level should take the dense (flat-scan) path.
#[inline]
pub fn is_dense(lo: usize, hi: usize, active: usize) -> bool {
    active * DENSE_DIVISOR >= hi - lo
}

/// Drain one level's (summary, lanes) pair: visit every entry with a
/// nonzero `front` mask exactly once, zeroing the mask and its summary
/// bit as it is consumed. `(lo, hi, active)` come from a prior
/// [`scan_active`] of `summary`; sparse levels walk summary bits and
/// skip all-zero words outright, dense levels scan the watermark range
/// flat. Returns `false` when `visit` aborts (deadline expiry), leaving
/// the masks half-consumed — callers must treat the buffers as dirty.
#[inline]
pub fn drain_level(
    summary: &mut [u64],
    lanes: &mut [Lane],
    (lo, hi, active): (usize, usize, usize),
    stats: &mut DrainStats,
    mut visit: impl FnMut(usize, Mask) -> bool,
) -> bool {
    if is_dense(lo, hi, active) {
        stats.dense_passes += 1;
        for i in (lo << 6)..((hi << 6).min(lanes.len())) {
            let m = lanes[i].front;
            if mask_is_zero(&m) {
                continue;
            }
            lanes[i].front = MASK_ZERO;
            if !visit(i, m) {
                return false;
            }
        }
        summary[lo..hi].fill(0);
    } else {
        stats.sparse_passes += 1;
        stats.words_skipped += (hi - lo - active) as u64;
        for (w, word) in summary.iter_mut().enumerate().take(hi).skip(lo) {
            let mut sw = *word;
            if sw == 0 {
                continue;
            }
            *word = 0;
            while sw != 0 {
                let i = (w << 6) | sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let m = lanes[i].front;
                lanes[i].front = MASK_ZERO;
                if !visit(i, m) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(6000), 94);
    }

    #[test]
    fn mark_sets_the_word_bit() {
        let mut s = vec![0u64; 2];
        mark(&mut s, 0);
        mark(&mut s, 63);
        mark(&mut s, 64);
        assert_eq!(s[0], 1 | (1 << 63));
        assert_eq!(s[1], 1);
    }

    #[test]
    fn count_bits_and_fill_all() {
        let mut s = vec![0u64; 3];
        fill_all(&mut s, 130);
        assert_eq!(s, vec![u64::MAX, u64::MAX, 3]);
        assert_eq!(count_bits(&s), 130);
        let mut even = vec![0u64; 2];
        fill_all(&mut even, 128);
        assert_eq!(even, vec![u64::MAX, u64::MAX]);
        let mut one = vec![0u64; 1];
        fill_all(&mut one, 5);
        assert_eq!(one, vec![31]);
        assert_eq!(count_bits(&[]), 0);
    }

    #[test]
    fn scan_active_finds_watermarks() {
        assert_eq!(scan_active(&[]), (0, 0, 0));
        assert_eq!(scan_active(&[0, 0, 0]), (0, 0, 0));
        assert_eq!(scan_active(&[0, 4, 0]), (1, 2, 1));
        assert_eq!(scan_active(&[1, 0, 8]), (0, 3, 2));
        assert_eq!(scan_active(&[7]), (0, 1, 1));
    }

    /// Both drain strategies must consume exactly the nonzero lanes and
    /// leave summary and frontier masks all-zero.
    #[test]
    fn drain_consumes_all_active_lanes_in_both_modes() {
        for force_sparse in [false, true] {
            // Two active words 40 summary-words apart force the sparse
            // path; every-third-lane occupancy forces the dense path.
            let n = if force_sparse { 2560 } else { 130 };
            let mut lanes = vec![Lane::ZERO; n];
            let mut summary = vec![0u64; words_for(n)];
            let mut expect = Vec::new();
            let step = if force_sparse { 2500 } else { 3 };
            for i in (0..n).step_by(step) {
                let m = [(i as u64) | 1, 2, 0, i as u64];
                lanes[i].front = m;
                mark(&mut summary, i);
                expect.push((i, m));
            }
            let scan = scan_active(&summary);
            let mut stats = DrainStats::default();
            let mut got = Vec::new();
            let done = drain_level(&mut summary, &mut lanes, scan, &mut stats, |i, m| {
                got.push((i, m));
                true
            });
            assert!(done);
            assert_eq!(got, expect);
            assert!(summary.iter().all(|&w| w == 0));
            assert!(lanes.iter().all(|l| mask_is_zero(&l.front)));
            if force_sparse {
                assert_eq!(stats.sparse_passes, 1, "{stats:?}");
                assert!(stats.words_skipped > 0);
            } else {
                assert_eq!(stats.dense_passes, 1, "{stats:?}");
            }
        }
    }

    #[test]
    fn aborted_drain_reports_false() {
        let mut lanes = vec![Lane::ZERO; 70];
        let mut summary = vec![0u64; words_for(70)];
        for i in [0usize, 69] {
            lanes[i].front = [1, 0, 0, 0];
            mark(&mut summary, i);
        }
        let scan = scan_active(&summary);
        let mut stats = DrainStats::default();
        assert!(!drain_level(
            &mut summary,
            &mut lanes,
            scan,
            &mut stats,
            |_, _| false
        ));
    }

    #[test]
    fn mask_full_covers_partial_and_whole_batches() {
        assert_eq!(mask_full(0), MASK_ZERO);
        assert_eq!(mask_full(1), [1, 0, 0, 0]);
        assert_eq!(mask_full(64), [u64::MAX, 0, 0, 0]);
        assert_eq!(mask_full(65), [u64::MAX, 1, 0, 0]);
        assert_eq!(mask_full(200), [u64::MAX, u64::MAX, u64::MAX, 255]);
        assert_eq!(mask_full(LANE_BITS), [u64::MAX; LANE_WORDS]);
        for len in [0usize, 1, 63, 64, 65, 128, 200, LANE_BITS] {
            assert_eq!(mask_count(&mask_full(len)), len as u64, "{len}");
        }
    }

    #[test]
    fn lane_fresh_absorb_saturated_roundtrip() {
        let mut lane = Lane::ZERO;
        let full = mask_full(130);
        let first = [0b1010, 0, 0, 0];
        let add = lane.fresh(&first);
        assert_eq!(add, first);
        lane.absorb(&add);
        assert_eq!(lane.seen, first);
        assert_eq!(lane.front, first);
        // Re-delivering the same bits is a no-op.
        assert!(mask_is_zero(&lane.fresh(&first)));
        assert!(!lane.saturated(&full));
        let rest = lane.fresh(&full);
        lane.absorb(&rest);
        assert!(lane.saturated(&full));
        assert_eq!(mask_count(&lane.seen), 130);
    }

    #[test]
    fn lane_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Lane>(), 64);
        assert_eq!(std::mem::align_of::<Lane>(), 64);
    }

    #[test]
    fn density_switch_uses_span_not_len() {
        // 2 active words in a 3-word span is dense; 2 in 100 is sparse.
        assert!(is_dense(10, 13, 2));
        assert!(!is_dense(0, 100, 2));
        // A fully active span is always dense.
        assert!(is_dense(0, 5, 5));
    }
}
