//! Degree–degree correlations: assortativity and the Maslov–Sneppen-style
//! joint degree profile the paper cites (ref. 8) when criticizing clique
//! expansions.

use crate::graph::Graph;

/// Pearson degree assortativity (Newman's r): correlation of the degrees
/// at the two ends of an edge, in [-1, 1]. `None` when the graph has no
/// edge or all endpoint degrees are equal (undefined variance).
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    let m = g.num_edges();
    if m == 0 {
        return None;
    }
    // Sums over edges of endpoint degrees (each edge counted once, both
    // orientations folded into the symmetric estimator).
    let mut s_prod = 0.0f64;
    let mut s_sum = 0.0f64;
    let mut s_sq = 0.0f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        s_prod += du * dv;
        s_sum += 0.5 * (du + dv);
        s_sq += 0.5 * (du * du + dv * dv);
    }
    let mf = m as f64;
    let num = s_prod / mf - (s_sum / mf).powi(2);
    let den = s_sq / mf - (s_sum / mf).powi(2);
    if den.abs() < 1e-15 {
        None
    } else {
        Some(num / den)
    }
}

/// Mean degree of the neighbours of degree-d nodes: `knn[d]` is the
/// average, over nodes of degree `d`, of their neighbours' mean degree
/// (NaN-free: degrees with no nodes yield 0). A decreasing profile means
/// disassortativity — the signature Maslov & Sneppen reported for
/// protein networks.
pub fn mean_neighbor_degree_profile(g: &Graph) -> Vec<f64> {
    let max_d = g.max_degree();
    let mut sum = vec![0.0f64; max_d + 1];
    let mut count = vec![0usize; max_d + 1];
    for u in g.nodes() {
        let d = g.degree(u);
        if d == 0 {
            continue;
        }
        let mean: f64 = g
            .neighbors(u)
            .iter()
            .map(|&v| g.degree(v) as f64)
            .sum::<f64>()
            / d as f64;
        sum[d] += mean;
        count[d] += 1;
    }
    sum.iter()
        .zip(&count)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};

    #[test]
    fn regular_graph_assortativity_undefined() {
        // Cycle: every endpoint degree is 2 -> zero variance.
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 5));
        }
        assert_eq!(degree_assortativity(&b.build()), None);
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let mut b = GraphBuilder::new(6);
        for i in 1..6u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let r = degree_assortativity(&b.build()).unwrap();
        assert!((r - -1.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn two_cliques_joined_by_bridge_assortative_sign() {
        // Double star ("barbell of stars"): hubs joined; hub-hub edge is
        // high-high, leaves low-high -> still disassortative but > -1.
        let mut b = GraphBuilder::new(8);
        for i in 1..4u32 {
            b.add_edge(NodeId(0), NodeId(i));
            b.add_edge(NodeId(4), NodeId(4 + i));
        }
        b.add_edge(NodeId(0), NodeId(4));
        let r = degree_assortativity(&b.build()).unwrap();
        assert!(r < 0.0);
        assert!(r > -1.0);
    }

    #[test]
    fn empty_graph_none() {
        assert_eq!(degree_assortativity(&GraphBuilder::new(3).build()), None);
    }

    #[test]
    fn knn_profile_star() {
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let knn = mean_neighbor_degree_profile(&b.build());
        // Degree-1 leaves see the hub (degree 4); the hub sees leaves (1).
        assert_eq!(knn[1], 4.0);
        assert_eq!(knn[4], 1.0);
        assert_eq!(knn[0], 0.0);
        assert_eq!(knn[2], 0.0);
    }

    #[test]
    fn knn_profile_decreasing_for_disassortative_ppi() {
        let g = hypergen_free_powerlaw_like();
        let knn = mean_neighbor_degree_profile(&g);
        // Low-degree nodes attach to hubs; hubs attach to leaves.
        let low = knn[1];
        let high = knn[knn.len() - 1];
        assert!(low > high, "knn[1]={low} vs knn[max]={high}");
    }

    /// Small deterministic hub-and-spoke graph (no external deps).
    fn hypergen_free_powerlaw_like() -> Graph {
        let mut b = GraphBuilder::new(40);
        // Two hubs with many leaves; hubs connected.
        for i in 2..21u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        for i in 21..40u32 {
            b.add_edge(NodeId(1), NodeId(i));
        }
        b.add_edge(NodeId(0), NodeId(1));
        b.build()
    }
}
