//! Degree statistics and histograms for plain graphs.

use crate::graph::Graph;

/// Summary statistics of a degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree (0 for the empty graph).
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of nodes with degree exactly 1.
    pub count_degree_one: usize,
    /// Number of isolated (degree 0) nodes.
    pub count_isolated: usize,
}

impl DegreeStats {
    /// Compute from a graph.
    pub fn of(g: &Graph) -> DegreeStats {
        let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        DegreeStats::of_sequence(&degrees)
    }

    /// Compute from a raw degree sequence.
    pub fn of_sequence(degrees: &[usize]) -> DegreeStats {
        if degrees.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                count_degree_one: 0,
                count_isolated: 0,
            };
        }
        let sum: usize = degrees.iter().sum();
        DegreeStats {
            min: *degrees.iter().min().unwrap(),
            max: *degrees.iter().max().unwrap(),
            mean: sum as f64 / degrees.len() as f64,
            count_degree_one: degrees.iter().filter(|&&d| d == 1).count(),
            count_isolated: degrees.iter().filter(|&&d| d == 0).count(),
        }
    }
}

/// Histogram of node degrees: `hist[d]` = number of nodes of degree `d`,
/// for `d = 0..=max_degree`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};

    #[test]
    fn stats_of_star() {
        // Star K_{1,4}: center degree 4, leaves degree 1.
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let g = b.build();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.count_degree_one, 4);
        assert_eq!(s.count_isolated, 0);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_of_star() {
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let hist = degree_histogram(&b.build());
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::of_sequence(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn isolated_counted() {
        let g = GraphBuilder::new(3).build();
        let s = DegreeStats::of(&g);
        assert_eq!(s.count_isolated, 3);
        assert_eq!(degree_histogram(&g), vec![3]);
    }
}
