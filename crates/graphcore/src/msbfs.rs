//! Batched multi-source BFS (MS-BFS) on plain graphs — the same
//! wide-mask batching as `hypergraph::msbfs`, mirrored here so the DIP
//! PPI baselines and the bipartite-view sweeps benefit too.
//!
//! Each node carries a [`bitset::Lane`] — interleaved `seen` and
//! current-frontier [`bitset::Mask`]s, one 64-byte cache line — plus a
//! next-frontier mask in a separate array (a plain graph has no
//! vertex/hyperedge alternation to absorb the next level into, so the
//! current and next frontiers must stay distinct within a level). One
//! pass over the CSR adjacency advances up to [`BATCH`] BFS traversals
//! at once; word-level summary bitmaps drive both the expansion and the
//! settle pass, so sparse levels skip all-zero stretches without
//! touching them (tallied into the `graph.msbfs.sweep.*` counters).
//! Distance statistics are accumulated per level without ever
//! materializing per-source distance vectors; the integer accumulators
//! make them bit-identical to [`crate::bfs::distance_stats_sampled`],
//! the scalar oracle, independent of batch width or visit order.

use hgobs::{Deadline, DeadlineExceeded};

use crate::bfs::DistanceStats;
use crate::bitset;
use crate::graph::{Graph, NodeId};

/// Sources advanced per traversal: the bit width of a [`bitset::Mask`].
pub const BATCH: usize = bitset::LANE_BITS;

/// Reusable per-traversal mask buffers (one allocation per worker). A
/// batch that ran to completion leaves every frontier mask and summary
/// zero, so the next batch only re-zeroes the lanes.
pub struct GraphMsBfsScratch {
    /// Per-node interleaved (seen, current-frontier) masks.
    lanes: Vec<bitset::Lane>,
    /// Next-level frontier masks, settled into the lanes between levels.
    next: Vec<bitset::Mask>,
    /// Summary of the current frontier: bit `v` ⟺ `lanes[v].front != 0`.
    fsum: Vec<u64>,
    /// Summary of the next frontier: bit `v` ⟺ `next[v] != 0`.
    nsum: Vec<u64>,
    /// `true` while frontier masks and summaries are provably all-zero.
    clean: bool,
    counters: bitset::DrainStats,
}

impl GraphMsBfsScratch {
    /// Allocate scratch sized for `g`.
    pub fn new(g: &Graph) -> Self {
        GraphMsBfsScratch {
            lanes: vec![bitset::Lane::ZERO; g.num_nodes()],
            next: vec![bitset::MASK_ZERO; g.num_nodes()],
            fsum: vec![0; bitset::words_for(g.num_nodes())],
            nsum: vec![0; bitset::words_for(g.num_nodes())],
            clean: true,
            counters: bitset::DrainStats::default(),
        }
    }

    /// Flush the accumulated sparsity telemetry into the global
    /// `graph.msbfs.sweep.*` counters.
    pub fn flush_counters(&mut self) {
        let c = std::mem::take(&mut self.counters);
        if c.sparse_passes != 0 {
            hgobs::counter!("graph.msbfs.sweep.sparse_passes", c.sparse_passes);
        }
        if c.dense_passes != 0 {
            hgobs::counter!("graph.msbfs.sweep.dense_passes", c.dense_passes);
        }
        if c.words_skipped != 0 {
            hgobs::counter!("graph.msbfs.sweep.words_skipped", c.words_skipped);
        }
    }

    /// Ready the masks for a fresh batch; cheap after a clean run.
    fn prepare(&mut self) {
        self.lanes.fill(bitset::Lane::ZERO);
        if !self.clean {
            self.next.fill(bitset::MASK_ZERO);
            self.fsum.fill(0);
            self.nsum.fill(0);
        }
        self.clean = false;
    }
}

/// Advance one batch of at most [`BATCH`] sources to fixpoint,
/// accumulating (diameter, total, pairs) partials. Returns `None` when
/// the deadline fires; `ticks` amortizes clock reads across batches.
fn msbfs_graph_batch(
    g: &Graph,
    batch: &[NodeId],
    scratch: &mut GraphMsBfsScratch,
    deadline: &Deadline,
    ticks: &mut u32,
) -> Option<(u32, u128, u64)> {
    assert!(batch.len() <= BATCH, "batch wider than the masks");
    if batch.is_empty() {
        return Some((0, 0, 0));
    }
    scratch.prepare();
    let GraphMsBfsScratch {
        lanes,
        next,
        fsum,
        nsum,
        clean,
        counters,
    } = scratch;
    for (i, &s) in batch.iter().enumerate() {
        let lane = &mut lanes[s.index()];
        lane.seen[i >> 6] |= 1u64 << (i & 63);
        lane.front[i >> 6] |= 1u64 << (i & 63);
        bitset::mark(fsum, s.index());
    }
    let (mut diameter, mut total, mut pairs) = (0u32, 0u128, 0u64);
    let mut level = 0u32;
    loop {
        let fscan = bitset::scan_active(fsum);
        if fscan.2 == 0 {
            break;
        }
        level += 1;
        // Expand the current frontier into `next`. This drain is
        // hand-rolled rather than [`bitset::drain_level`] because the
        // expansion writes neighbor lanes in the *same* array it is
        // draining (no vertex/hyperedge alternation here). Delivery is
        // branchless: ORing a zero `add` and shifting a zero summary
        // bit are no-ops that avoid the randomly mispredicted
        // `add != 0` branch and keep the independent cache probes in
        // flight. `seen` is updated as masks land, so `popcount(add)`
        // counts each newly reached (source, node) pair exactly once.
        let mut level_pairs = 0u64;
        let mut expand = |lanes: &mut [bitset::Lane], next: &mut [bitset::Mask], v: usize| {
            if deadline.tick(ticks) {
                return false;
            }
            let fv = lanes[v].front;
            lanes[v].front = bitset::MASK_ZERO;
            for &w in g.neighbors(NodeId(v as u32)) {
                let wi = w.index();
                let add = lanes[wi].fresh(&fv);
                for (acc, a) in lanes[wi].seen.iter_mut().zip(&add) {
                    *acc |= a;
                }
                bitset::mask_or_into(&mut next[wi], &add);
                nsum[wi >> 6] |= ((!bitset::mask_is_zero(&add)) as u64) << (wi & 63);
                level_pairs += bitset::mask_count(&add);
            }
            true
        };
        let (lo, hi, active) = fscan;
        if bitset::is_dense(lo, hi, active) {
            counters.dense_passes += 1;
            for v in (lo << 6)..((hi << 6).min(lanes.len())) {
                if bitset::mask_is_zero(&lanes[v].front) {
                    continue;
                }
                if !expand(lanes, next, v) {
                    return None;
                }
            }
            fsum[lo..hi].fill(0);
        } else {
            counters.sparse_passes += 1;
            counters.words_skipped += (hi - lo - active) as u64;
            for (w, word) in fsum.iter_mut().enumerate().take(hi).skip(lo) {
                let mut sw = *word;
                if sw == 0 {
                    continue;
                }
                *word = 0;
                while sw != 0 {
                    let v = (w << 6) | sw.trailing_zeros() as usize;
                    sw &= sw - 1;
                    if !expand(lanes, next, v) {
                        return None;
                    }
                }
            }
        }
        if level_pairs != 0 {
            diameter = level;
            pairs += level_pairs;
            total += level_pairs as u128 * level as u128;
        }
        // Settle: move `next` into the lane frontiers for the coming
        // level. Sequential, summary-driven, and consuming — `next` and
        // its summary are all-zero again afterwards.
        let nscan = bitset::scan_active(nsum);
        if bitset::is_dense(nscan.0, nscan.1, nscan.2) {
            counters.dense_passes += 1;
            for i in (nscan.0 << 6)..((nscan.1 << 6).min(next.len())) {
                let m = next[i];
                next[i] = bitset::MASK_ZERO;
                lanes[i].front = m;
                fsum[i >> 6] |= ((!bitset::mask_is_zero(&m)) as u64) << (i & 63);
            }
            nsum[nscan.0..nscan.1].fill(0);
        } else {
            counters.sparse_passes += 1;
            counters.words_skipped += (nscan.1 - nscan.0 - nscan.2) as u64;
            for w in nscan.0..nscan.1 {
                let mut sw = nsum[w];
                if sw == 0 {
                    continue;
                }
                nsum[w] = 0;
                fsum[w] = sw;
                while sw != 0 {
                    let i = (w << 6) | sw.trailing_zeros() as usize;
                    sw &= sw - 1;
                    lanes[i].front = next[i];
                    next[i] = bitset::MASK_ZERO;
                }
            }
        }
    }
    // The final level found nothing: frontier, next and both summaries
    // are all-zero, so the next batch can skip re-zeroing them.
    *clean = true;
    Some((diameter, total, pairs))
}

/// Exact distance statistics by MS-BFS from every node. Bit-identical
/// to [`crate::bfs::distance_stats_exact`]'s scalar oracle.
pub fn msbfs_distance_stats(g: &Graph) -> DistanceStats {
    match msbfs_distance_stats_with(g, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats`] under a cooperative [`Deadline`]; the
/// error's `work_done` counts batches of [`BATCH`] sources completed.
pub fn msbfs_distance_stats_with(
    g: &Graph,
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    let sources: Vec<NodeId> = g.nodes().collect();
    msbfs_distance_stats_from_with(g, &sources, deadline)
}

/// Distance statistics restricted to caller-chosen sources.
pub fn msbfs_distance_stats_from(g: &Graph, sources: &[NodeId]) -> DistanceStats {
    match msbfs_distance_stats_from_with(g, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats_from`] under a cooperative [`Deadline`],
/// checked at batch boundaries and every [`hgobs::CHECK_INTERVAL`]
/// scanned nodes. Expiry surfaces phase `"graph.msbfs"` and the number
/// of completed batches; the `graph.msbfs.batches` and
/// `graph.bfs.sources` counters carry the same partial progress.
pub fn msbfs_distance_stats_from_with(
    g: &Graph,
    sources: &[NodeId],
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("graph.msbfs.sweep");
    let mut scratch = GraphMsBfsScratch::new(g);
    let mut ticks = 0u32;
    let (mut diameter, mut total, mut pairs) = (0u32, 0u128, 0u64);
    let mut batches = 0u64;
    let mut completed_sources = 0u64;
    let expired = 'sweep: {
        for batch in sources.chunks(BATCH) {
            // The phase guard opens before the boundary check so a
            // request that expires mid-sweep still shows the batch it
            // was attempting in its trace.
            let mut tp = deadline.trace().phase("graph.msbfs.batch");
            if deadline.expired() {
                break 'sweep true;
            }
            match msbfs_graph_batch(g, batch, &mut scratch, deadline, &mut ticks) {
                Some((d, t, p)) => {
                    diameter = diameter.max(d);
                    total += t;
                    pairs += p;
                }
                None => break 'sweep true,
            }
            tp.add_work(batch.len() as u64);
            batches += 1;
            completed_sources += batch.len() as u64;
        }
        false
    };
    scratch.flush_counters();
    hgobs::counter!("graph.msbfs.batches", batches);
    hgobs::counter!("graph.bfs.sources", completed_sources);
    if expired {
        return Err(deadline.exceeded("graph.msbfs", batches));
    }
    Ok(DistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::distance_stats_sampled;
    use crate::GraphBuilder;
    use std::time::Duration;

    fn ring(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 9) % n));
        }
        b.build()
    }

    #[test]
    fn matches_scalar_on_ring_across_batches() {
        // More nodes than one batch (256), so the chunking is exercised.
        let g = ring(600);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(msbfs_distance_stats(&g), distance_stats_sampled(&g, &all));
    }

    #[test]
    fn matches_scalar_on_disconnected_graph() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(4), NodeId(5));
        let g = b.build();
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(msbfs_distance_stats(&g), distance_stats_sampled(&g, &all));
    }

    #[test]
    fn empty_and_single_node() {
        let s = msbfs_distance_stats(&GraphBuilder::new(0).build());
        assert_eq!(s.reachable_pairs, 0);
        let s = msbfs_distance_stats(&GraphBuilder::new(1).build());
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
    }

    #[test]
    fn subset_of_sources_matches_scalar() {
        let g = ring(90);
        let some: Vec<NodeId> = (0..70).map(NodeId).collect();
        assert_eq!(
            msbfs_distance_stats_from(&g, &some),
            distance_stats_sampled(&g, &some)
        );
    }

    #[test]
    fn scratch_reuse_across_batches_is_clean() {
        // Back-to-back batches on one scratch must not leak frontier
        // state: identical to fresh-scratch-per-batch sweeps.
        let g = ring(600);
        let sources: Vec<NodeId> = g.nodes().collect();
        let mut shared = GraphMsBfsScratch::new(&g);
        let mut ticks = 0u32;
        for batch in sources.chunks(BATCH) {
            let with_shared =
                msbfs_graph_batch(&g, batch, &mut shared, &Deadline::none(), &mut ticks).unwrap();
            let mut fresh = GraphMsBfsScratch::new(&g);
            let with_fresh =
                msbfs_graph_batch(&g, batch, &mut fresh, &Deadline::none(), &mut ticks).unwrap();
            assert_eq!(with_shared, with_fresh);
        }
    }

    #[test]
    fn dirty_scratch_after_abort_still_matches_scalar() {
        // Zero-budget aborts poison the scratch; the clean flag must
        // force a full re-zero on the next batch.
        let g = ring(600);
        let sources: Vec<NodeId> = g.nodes().collect();
        let mut scratch = GraphMsBfsScratch::new(&g);
        let mut ticks = 0u32;
        let gone = Deadline::after(Duration::ZERO);
        let mut aborted = false;
        for batch in sources.chunks(BATCH) {
            aborted |= msbfs_graph_batch(&g, batch, &mut scratch, &gone, &mut ticks).is_none();
        }
        assert!(aborted, "zero budget must abort at least one batch");
        let (mut diameter, mut total, mut pairs) = (0u32, 0u128, 0u64);
        for batch in sources.chunks(BATCH) {
            let (d, t, p) =
                msbfs_graph_batch(&g, batch, &mut scratch, &Deadline::none(), &mut ticks).unwrap();
            diameter = diameter.max(d);
            total += t;
            pairs += p;
        }
        let all: Vec<NodeId> = g.nodes().collect();
        let expect = distance_stats_sampled(&g, &all);
        assert_eq!(diameter, expect.diameter);
        assert_eq!(pairs, expect.reachable_pairs);
        assert_eq!(
            (total as f64 / pairs as f64).to_bits(),
            expect.average_path_length.to_bits()
        );
    }

    #[test]
    fn pre_expired_deadline_reports_zero_batches() {
        let g = ring(200);
        let err = msbfs_distance_stats_with(&g, &Deadline::after(Duration::ZERO)).unwrap_err();
        assert_eq!(err.phase, "graph.msbfs");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let g = ring(80);
        assert_eq!(
            msbfs_distance_stats(&g),
            msbfs_distance_stats_with(&g, &Deadline::none()).unwrap()
        );
    }
}
