//! Batched multi-source BFS (MS-BFS) on plain graphs — the same u64
//! bitmask batching as `hypergraph::msbfs`, mirrored here so the DIP
//! PPI baselines and the bipartite-view sweeps benefit too.
//!
//! Each node carries a `u64` "seen" mask and a frontier mask; one pass
//! over the CSR adjacency advances up to [`BATCH`] BFS traversals at
//! once, and distance statistics are accumulated per level without ever
//! materializing per-source distance vectors. Results are bit-identical
//! to [`crate::bfs::distance_stats_sampled`], the scalar oracle.

use hgobs::{Deadline, DeadlineExceeded};

use crate::bfs::DistanceStats;
use crate::graph::{Graph, NodeId};

/// Sources advanced per traversal: the width of the `u64` masks.
pub const BATCH: usize = 64;

/// Reusable per-traversal mask buffers (one allocation per worker).
pub struct GraphMsBfsScratch {
    seen: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

impl GraphMsBfsScratch {
    /// Allocate scratch sized for `g`.
    pub fn new(g: &Graph) -> Self {
        GraphMsBfsScratch {
            seen: vec![0; g.num_nodes()],
            frontier: vec![0; g.num_nodes()],
            next: vec![0; g.num_nodes()],
        }
    }

    fn reset(&mut self) {
        self.seen.fill(0);
        self.frontier.fill(0);
        self.next.fill(0);
    }
}

/// Advance one batch of at most [`BATCH`] sources to fixpoint,
/// accumulating (diameter, total, pairs) partials. Returns `None` when
/// the deadline fires; `ticks` amortizes clock reads across batches.
fn msbfs_graph_batch(
    g: &Graph,
    batch: &[NodeId],
    scratch: &mut GraphMsBfsScratch,
    deadline: &Deadline,
    ticks: &mut u32,
) -> Option<(u32, u128, u64)> {
    assert!(batch.len() <= BATCH, "batch wider than the u64 masks");
    scratch.reset();
    for (i, &s) in batch.iter().enumerate() {
        let bit = 1u64 << i;
        scratch.seen[s.index()] |= bit;
        scratch.frontier[s.index()] |= bit;
    }
    let n = g.num_nodes();
    let (mut diameter, mut total, mut pairs) = (0u32, 0u128, 0u64);
    let mut level = 0u32;
    let mut active = !batch.is_empty();
    while active {
        level += 1;
        for v in 0..n {
            if deadline.tick(ticks) {
                return None;
            }
            let fv = scratch.frontier[v];
            if fv == 0 {
                continue;
            }
            for &w in g.neighbors(NodeId(v as u32)) {
                let add = fv & !scratch.seen[w.index()];
                if add != 0 {
                    scratch.seen[w.index()] |= add;
                    scratch.next[w.index()] |= add;
                }
            }
        }
        active = false;
        for v in 0..n {
            let nv = scratch.next[v];
            scratch.frontier[v] = nv;
            scratch.next[v] = 0;
            if nv != 0 {
                active = true;
                let c = nv.count_ones() as u64;
                pairs += c;
                total += c as u128 * level as u128;
            }
        }
        if active {
            diameter = level;
        }
    }
    Some((diameter, total, pairs))
}

/// Exact distance statistics by MS-BFS from every node. Bit-identical
/// to [`crate::bfs::distance_stats_exact`]'s scalar oracle.
pub fn msbfs_distance_stats(g: &Graph) -> DistanceStats {
    match msbfs_distance_stats_with(g, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats`] under a cooperative [`Deadline`]; the
/// error's `work_done` counts batches of [`BATCH`] sources completed.
pub fn msbfs_distance_stats_with(
    g: &Graph,
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    let sources: Vec<NodeId> = g.nodes().collect();
    msbfs_distance_stats_from_with(g, &sources, deadline)
}

/// Distance statistics restricted to caller-chosen sources.
pub fn msbfs_distance_stats_from(g: &Graph, sources: &[NodeId]) -> DistanceStats {
    match msbfs_distance_stats_from_with(g, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`msbfs_distance_stats_from`] under a cooperative [`Deadline`],
/// checked at batch boundaries and every [`hgobs::CHECK_INTERVAL`]
/// scanned nodes. Expiry surfaces phase `"graph.msbfs"` and the number
/// of completed batches; the `graph.msbfs.batches` and
/// `graph.bfs.sources` counters carry the same partial progress.
pub fn msbfs_distance_stats_from_with(
    g: &Graph,
    sources: &[NodeId],
    deadline: &Deadline,
) -> Result<DistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("graph.msbfs.sweep");
    let mut scratch = GraphMsBfsScratch::new(g);
    let mut ticks = 0u32;
    let (mut diameter, mut total, mut pairs) = (0u32, 0u128, 0u64);
    let mut batches = 0u64;
    let mut completed_sources = 0u64;
    let expired = 'sweep: {
        for batch in sources.chunks(BATCH) {
            // The phase guard opens before the boundary check so a
            // request that expires mid-sweep still shows the batch it
            // was attempting in its trace.
            let mut tp = deadline.trace().phase("graph.msbfs.batch");
            if deadline.expired() {
                break 'sweep true;
            }
            match msbfs_graph_batch(g, batch, &mut scratch, deadline, &mut ticks) {
                Some((d, t, p)) => {
                    diameter = diameter.max(d);
                    total += t;
                    pairs += p;
                }
                None => break 'sweep true,
            }
            tp.add_work(batch.len() as u64);
            batches += 1;
            completed_sources += batch.len() as u64;
        }
        false
    };
    hgobs::counter!("graph.msbfs.batches", batches);
    hgobs::counter!("graph.bfs.sources", completed_sources);
    if expired {
        return Err(deadline.exceeded("graph.msbfs", batches));
    }
    Ok(DistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::distance_stats_sampled;
    use crate::GraphBuilder;
    use std::time::Duration;

    fn ring(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 9) % n));
        }
        b.build()
    }

    #[test]
    fn matches_scalar_on_ring_across_batches() {
        let g = ring(150);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(msbfs_distance_stats(&g), distance_stats_sampled(&g, &all));
    }

    #[test]
    fn matches_scalar_on_disconnected_graph() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(4), NodeId(5));
        let g = b.build();
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(msbfs_distance_stats(&g), distance_stats_sampled(&g, &all));
    }

    #[test]
    fn empty_and_single_node() {
        let s = msbfs_distance_stats(&GraphBuilder::new(0).build());
        assert_eq!(s.reachable_pairs, 0);
        let s = msbfs_distance_stats(&GraphBuilder::new(1).build());
        assert_eq!(s.diameter, 0);
        assert_eq!(s.reachable_pairs, 0);
    }

    #[test]
    fn subset_of_sources_matches_scalar() {
        let g = ring(90);
        let some: Vec<NodeId> = (0..70).map(NodeId).collect();
        assert_eq!(
            msbfs_distance_stats_from(&g, &some),
            distance_stats_sampled(&g, &some)
        );
    }

    #[test]
    fn pre_expired_deadline_reports_zero_batches() {
        let g = ring(200);
        let err = msbfs_distance_stats_with(&g, &Deadline::after(Duration::ZERO)).unwrap_err();
        assert_eq!(err.phase, "graph.msbfs");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let g = ring(80);
        assert_eq!(
            msbfs_distance_stats(&g),
            msbfs_distance_stats_with(&g, &Deadline::none()).unwrap()
        );
    }
}
