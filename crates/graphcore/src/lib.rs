//! `graphcore` — a compact, dependency-free substrate for simple undirected
//! graphs, used by the hypergraph library for everything that reduces to a
//! plain graph: the bipartite drawing graph `B(H)` of a hypergraph, the
//! protein–protein interaction (PPI) baselines from DIP, and the lossy
//! clique/star/intersection projections the paper argues against.
//!
//! The design follows the Rust performance-book idioms for graph kernels:
//! a frozen CSR ([`Graph`]) built once from an edge list ([`GraphBuilder`]),
//! `u32` node ids ([`NodeId`]), flat `Vec` storage, and no per-node
//! allocation on any hot path.
//!
//! # Quick start
//!
//! ```
//! use graphcore::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1));
//! b.add_edge(NodeId(1), NodeId(2));
//! b.add_edge(NodeId(2), NodeId(0));
//! b.add_edge(NodeId(2), NodeId(3));
//! let g = b.build();
//!
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.degree(NodeId(2)), 3);
//!
//! // The triangle {0,1,2} is the maximum (2-)core; node 3 dangles off it.
//! let cores = graphcore::core_decomposition(&g);
//! assert_eq!(cores.max_core, 2);
//! assert_eq!(cores.core_number(NodeId(3)), 1);
//! ```

pub mod bfs;
pub mod bitset;
pub mod builder;
pub mod centrality;
pub mod clustering;
pub mod components;
pub mod correlation;
pub mod degree;
pub mod graph;
pub mod kcore;
pub mod msbfs;
pub mod pajek;
pub mod unionfind;

pub use bfs::{
    average_path_length, bfs_distances, bfs_distances_with, diameter, distance_stats_exact,
    distance_stats_exact_with, distance_stats_sampled, distance_stats_sampled_with, eccentricity,
    DistanceStats,
};
pub use builder::GraphBuilder;
pub use centrality::{betweenness, betweenness_normalized};
pub use clustering::{global_clustering_coefficient, local_clustering, mean_local_clustering};
pub use components::{connected_components, Components};
pub use correlation::{degree_assortativity, mean_neighbor_degree_profile};
pub use degree::{degree_histogram, DegreeStats};
pub use graph::{Graph, NodeId};
pub use kcore::{core_decomposition, core_decomposition_with, k_core_subgraph, CoreDecomposition};
pub use msbfs::{
    msbfs_distance_stats as graph_msbfs_distance_stats,
    msbfs_distance_stats_from as graph_msbfs_distance_stats_from,
    msbfs_distance_stats_from_with as graph_msbfs_distance_stats_from_with,
    msbfs_distance_stats_with as graph_msbfs_distance_stats_with, GraphMsBfsScratch,
};
pub use unionfind::UnionFind;

/// Distance value used throughout: `u32::MAX` encodes "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;
