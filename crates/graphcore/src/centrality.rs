//! Betweenness centrality (Brandes' algorithm).
//!
//! Used to compare the hypergraph core against centrality-based notions
//! of "important" proteins in the PPI baselines: high-coreness vertices
//! are typically, but not always, high-betweenness vertices, and the
//! k-core is far cheaper to compute.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// Exact betweenness centrality of every node (unweighted shortest
/// paths, Brandes' accumulation), O(n·m). Scores count ordered pairs;
/// for the undirected convention divide by 2 (or use
/// [`betweenness_normalized`]).
///
/// Predecessor lists live in a flat CSR-style arena allocated once and
/// reused across all n sources: a node's predecessors on shortest paths
/// are a subset of its neighbors, so slot capacities are exactly the
/// degrees and resetting a source is one `fill(0)` of the length array
/// instead of n `Vec::clear` calls on n separate allocations.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut centrality = vec![0.0f64; n];

    // Arena layout: node v's predecessor slots occupy
    // pred_data[pred_start[v] .. pred_start[v] + degree(v)], of which
    // the first pred_len[v] are live for the current source.
    let mut pred_start: Vec<u32> = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    pred_start.push(0);
    for v in 0..n {
        acc += g.degree(NodeId(v as u32)) as u32;
        pred_start.push(acc);
    }
    let mut pred_data: Vec<u32> = vec![0; acc as usize];
    let mut pred_len: Vec<u32> = vec![0; n];

    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue: VecDeque<u32> = VecDeque::new();

    for s in 0..n as u32 {
        stack.clear();
        queue.clear();
        pred_len.fill(0);
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);

        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(NodeId(v)) {
                let w = w.0;
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    pred_data[(pred_start[w as usize] + pred_len[w as usize]) as usize] = v;
                    pred_len[w as usize] += 1;
                }
            }
        }
        while let Some(w) = stack.pop() {
            let lo = pred_start[w as usize] as usize;
            let hi = lo + pred_len[w as usize] as usize;
            for &v in &pred_data[lo..hi] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    centrality
}

/// Betweenness normalized to [0, 1]: divided by the number of ordered
/// pairs not involving the node, `(n-1)(n-2)`. Returns zeros for n < 3.
pub fn betweenness_normalized(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let raw = betweenness(g);
    if n < 3 {
        return vec![0.0; n];
    }
    let scale = ((n - 1) * (n - 2)) as f64;
    raw.into_iter().map(|c| c / scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        b.build()
    }

    #[test]
    fn path_center_is_most_between() {
        // Path 0-1-2-3-4: node 2 lies on the most shortest paths.
        let c = betweenness(&path(5));
        assert!(c[2] > c[1]);
        assert!(c[1] > c[0]);
        assert_eq!(c[0], 0.0);
        // Exact values: node 1 bridges {0}x{2,3,4} (ordered both ways): 6;
        // node 2 bridges {0,1}x{3,4}: 8.
        assert_eq!(c[1], 6.0);
        assert_eq!(c[2], 8.0);
    }

    #[test]
    fn star_hub_carries_everything() {
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let g = b.build();
        let c = betweenness(&g);
        // Hub: all 4*3 = 12 ordered leaf pairs route through it.
        assert_eq!(c[0], 12.0);
        assert!(c[1..].iter().all(|&x| x == 0.0));
        let n = betweenness_normalized(&g);
        assert!((n[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_has_zero_betweenness() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        let c = betweenness(&b.build());
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn split_shortest_paths_share_credit() {
        // 4-cycle: two shortest paths between opposite corners, each
        // midpoint gets half of each ordered pair: 2 * 0.5 = 1.0.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        b.add_edge(NodeId(3), NodeId(0));
        let c = betweenness(&b.build());
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-12), "{c:?}");
    }

    #[test]
    fn disconnected_and_degenerate() {
        let c = betweenness(&GraphBuilder::new(0).build());
        assert!(c.is_empty());
        let c = betweenness(&GraphBuilder::new(3).build());
        assert!(c.iter().all(|&x| x == 0.0));
        assert_eq!(betweenness_normalized(&path(2)), vec![0.0, 0.0]);
    }
}
