//! Edge-list accumulator that freezes into a CSR [`Graph`].

use crate::graph::{Graph, NodeId};

/// Accumulates undirected edges and freezes them into a [`Graph`].
///
/// The builder is forgiving: self-loops are dropped, parallel edges are
/// merged, and endpoints may arrive in any order. `build` runs in
/// O(n + m log m) (one sort per node slice via a global counting pass).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder for a graph on `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes <= u32::MAX as usize, "node count exceeds u32");
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Pre-reserve capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Grow the node-id space to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "node count exceeds u32");
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Record the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u:?}, {v:?}) out of range for {} nodes",
            self.num_nodes
        );
        if u == v {
            return;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        self.edges.push(e);
    }

    /// Record every edge in `it`.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Freeze into a CSR [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_nodes;
        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc = acc
                .checked_add(d)
                .expect("adjacency length exceeds u32 range");
            offsets.push(acc);
        }

        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adjacency = vec![NodeId(0); acc as usize];
        for &(u, v) in &self.edges {
            adjacency[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            adjacency[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }

        // Edges were inserted in globally sorted (u, v) order, so each node's
        // forward neighbours are already sorted; backward ones are too, but
        // the two runs interleave. A per-slice sort keeps this simple and is
        // cheap relative to the global sort above.
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            adjacency[lo..hi].sort_unstable();
        }

        Graph::from_csr(offsets, adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    fn ensure_nodes_grows() {
        let mut b = GraphBuilder::new(1);
        b.ensure_nodes(3);
        b.add_edge(NodeId(0), NodeId(2));
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn extend_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }
}
