//! Clustering coefficients.
//!
//! The paper cites Maslov–Sneppen–Alon's observation that representing each
//! complex as a clique inflates clustering coefficients "unusually high";
//! these functions quantify that effect in the projection ablation (A1).

use crate::graph::{Graph, NodeId};

/// Local clustering coefficient of `u`: the fraction of pairs of `u`'s
/// neighbours that are themselves adjacent. Defined as 0 for degree < 2.
pub fn local_clustering(g: &Graph, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Mean of local clustering coefficients over all nodes (Watts–Strogatz).
/// Returns 0 for the empty graph.
pub fn mean_local_clustering(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    g.nodes().map(|u| local_clustering(g, u)).sum::<f64>() / n as f64
}

/// Global (transitivity) clustering coefficient:
/// `3 * triangles / wedges`. Returns 0 when the graph has no wedge.
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for u in g.nodes() {
        let d = g.degree(u) as u64;
        wedges += d * d.saturating_sub(1) / 2;
        let nbrs = g.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner, i.e. 3 times, which is
    // exactly the numerator 3*T.
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        b.build()
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = triangle();
        assert_eq!(local_clustering(&g, NodeId(0)), 1.0);
        assert_eq!(mean_local_clustering(&g), 1.0);
        assert_eq!(global_clustering_coefficient(&g), 1.0);
    }

    #[test]
    fn path_has_zero_clustering() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        assert_eq!(mean_local_clustering(&g), 0.0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn paw_graph_values() {
        // Triangle 0-1-2 plus pendant 3 on 0.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(0), NodeId(3));
        let g = b.build();
        // Node 0: degree 3, one closed pair of three -> 1/3.
        assert!((local_clustering(&g, NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, NodeId(3)), 0.0);
        // mean = (1/3 + 1 + 1 + 0)/4 = 7/12
        assert!((mean_local_clustering(&g) - 7.0 / 12.0).abs() < 1e-12);
        // global: 3 triangles-count... wedges: node0: C(3,2)=3, nodes 1,2: 1 each -> 5.
        // triangle corner count = 3 -> 3/5.
        assert!((global_clustering_coefficient(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn clique_expansion_inflates_clustering() {
        // A 6-clique (what the clique projection makes of a 6-protein
        // complex) is perfectly clustered even though the underlying data
        // says nothing about pairwise binding.
        let n = 6u32;
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        assert_eq!(mean_local_clustering(&b.build()), 1.0);
    }

    #[test]
    fn empty_graph_clustering() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(mean_local_clustering(&g), 0.0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }
}
