//! Frozen CSR representation of a simple undirected graph.

use std::fmt;

/// Identifier of a node, a dense index in `0..num_nodes`.
///
/// A newtype over `u32`: graphs in this workspace are bounded by a few
/// million nodes, and halving the index width keeps CSR adjacency arrays in
/// cache (per the perf-book guidance on compact indices).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A simple undirected graph in compressed-sparse-row (CSR) form.
///
/// Construction goes through [`crate::GraphBuilder`], which deduplicates
/// parallel edges and drops self-loops; the frozen structure is therefore
/// always a *simple* graph, and every algorithm in this crate may rely on
/// that invariant.
///
/// Storage is two flat arrays: `offsets` (length `n + 1`) and `adjacency`
/// (length `2m`, each undirected edge appearing once per endpoint, sorted
/// within each node's slice).
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<u32>,
    adjacency: Vec<NodeId>,
    num_edges: usize,
}

impl Graph {
    /// Assemble a graph from raw CSR parts.
    ///
    /// `offsets.len()` must be `n + 1`, `offsets[0] == 0`, offsets must be
    /// non-decreasing and end at `adjacency.len()`. Neighbour slices must be
    /// sorted, duplicate-free, and loop-free. This is checked in debug
    /// builds; the public way to build a graph is [`crate::GraphBuilder`].
    pub(crate) fn from_csr(offsets: Vec<u32>, adjacency: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, adjacency.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(adjacency.len() % 2, 0);
        let num_edges = adjacency.len() / 2;
        let g = Graph {
            offsets,
            adjacency,
            num_edges,
        };
        #[cfg(debug_assertions)]
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            debug_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted/dup nbrs");
            debug_assert!(nbrs.iter().all(|&v| v != u), "self-loop");
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as usize
    }

    /// Sorted, duplicate-free slice of `u`'s neighbours.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// `true` iff the edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of all degrees (`2m`).
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Bytes of heap storage used by the CSR arrays — the space-accounting
    /// primitive behind the paper's O(n) vs O(n²) projection argument.
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.adjacency.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.degree_sum(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(3), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        assert_eq!(
            g.neighbors(NodeId(1)),
            &[NodeId(0), NodeId(2), NodeId(3)][..]
        );
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path3();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.nodes().all(|u| g.degree(u) == 0));
    }

    #[test]
    fn storage_accounting() {
        let g = path3();
        // offsets: 4 u32, adjacency: 4 NodeId.
        assert_eq!(g.storage_bytes(), 4 * 4 + 4 * 4);
    }
}
