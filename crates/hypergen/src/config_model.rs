//! Bipartite configuration model: a random hypergraph with prescribed
//! vertex and hyperedge degree sequences.

use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generate a hypergraph where vertex `v` has target degree
/// `vertex_degrees[v]` and hyperedge `f` has target size
/// `edge_degrees[f]`, by a random matching of stubs.
///
/// The two sequences must have equal sums. A vertex may be matched to the
/// same hyperedge twice; such duplicate pins are merged by the builder, so
/// realized degrees can fall slightly below target on dense inputs (the
/// usual configuration-model caveat). Deterministic in `seed`.
///
/// # Panics
/// If the degree sums differ.
pub fn configuration_hypergraph(
    vertex_degrees: &[u32],
    edge_degrees: &[u32],
    seed: u64,
) -> Hypergraph {
    let vsum: u64 = vertex_degrees.iter().map(|&d| d as u64).sum();
    let esum: u64 = edge_degrees.iter().map(|&d| d as u64).sum();
    assert_eq!(
        vsum, esum,
        "stub mismatch: vertex degrees sum to {vsum}, edge degrees to {esum}"
    );

    // Vertex stub multiset, shuffled once.
    let mut stubs: Vec<u32> = Vec::with_capacity(vsum as usize);
    for (v, &d) in vertex_degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d as usize));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    stubs.shuffle(&mut rng);

    let mut b = HypergraphBuilder::new(vertex_degrees.len());
    b.reserve_pins(stubs.len());
    let mut cursor = 0usize;
    for &size in edge_degrees {
        let end = cursor + size as usize;
        b.add_edge(stubs[cursor..end].iter().copied());
        cursor = end;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_when_no_collisions() {
        // Distinct small degrees on a sparse instance rarely collide; use
        // a case where collisions are impossible: every edge size 1.
        let vdeg = vec![2, 1, 1];
        let edeg = vec![1, 1, 1, 1];
        let h = configuration_hypergraph(&vdeg, &edeg, 3);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.num_pins(), 4);
        for (v, &d) in vdeg.iter().enumerate() {
            assert_eq!(h.vertex_degree(hypergraph::VertexId(v as u32)), d as usize);
        }
    }

    #[test]
    fn deterministic() {
        let vdeg: Vec<u32> = (0..48).map(|i| 1 + i % 3).collect();
        let total: u32 = vdeg.iter().sum(); // 96
        let edeg = vec![total / 12; 12];
        let h1 = configuration_hypergraph(&vdeg, &edeg, 11);
        let h2 = configuration_hypergraph(&vdeg, &edeg, 11);
        assert_eq!(
            hypergraph::io::write_hgr(&h1),
            hypergraph::io::write_hgr(&h2)
        );
    }

    #[test]
    fn pin_count_close_to_target() {
        let vdeg = vec![3u32; 100];
        let edeg = vec![10u32; 30];
        let h = configuration_hypergraph(&vdeg, &edeg, 5);
        // Duplicate merges can only shrink; shrinkage should be small.
        assert!(h.num_pins() <= 300);
        assert!(h.num_pins() >= 280, "pins = {}", h.num_pins());
    }

    #[test]
    #[should_panic(expected = "stub mismatch")]
    fn sum_mismatch_rejected() {
        let _ = configuration_hypergraph(&[1, 2], &[4], 0);
    }

    #[test]
    fn zero_degrees_allowed() {
        let h = configuration_hypergraph(&[0, 2, 0], &[2], 1);
        assert_eq!(h.vertex_degree(hypergraph::VertexId(0)), 0);
        assert_eq!(h.num_edges(), 1);
    }
}
