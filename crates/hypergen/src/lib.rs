//! `hypergen` — deterministic random generators for hypergraphs and
//! power-law graphs.
//!
//! Every generator takes an explicit `u64` seed and is bit-reproducible;
//! the reproduction harness uses fixed seeds so the paper experiments are
//! stable across runs. Provided models:
//!
//! * [`seq`] — truncated discrete power-law degree sequences;
//! * [`config_model`] — the bipartite configuration model: a hypergraph
//!   with prescribed vertex and hyperedge degree sequences;
//! * [`chung_lu`] — bipartite Chung–Lu hypergraphs and power-law plain
//!   graphs with given expected degrees;
//! * [`uniform`] — k-uniform Erdős–Rényi-style hypergraphs;
//! * [`planted`] — hypergraphs and graphs with a planted dense core of a
//!   chosen size and coreness (ground truth for k-core validation and for
//!   the DIP-calibrated PPI baselines).

pub mod chung_lu;
pub mod config_model;
pub mod planted;
pub mod seq;
pub mod stream;
pub mod uniform;

pub use chung_lu::{chung_lu_graph, chung_lu_hypergraph};
pub use config_model::configuration_hypergraph;
pub use planted::{planted_core_graph, planted_core_hypergraph};
pub use seq::{power_law_degrees, power_law_histogram_counts};
pub use stream::uniform_to_hgb;
pub use uniform::{uniform_edges, uniform_random_hypergraph};
