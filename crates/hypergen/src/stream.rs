//! Streaming `.hgb` emitters: generate a dataset straight into the
//! binary on-disk format without ever materializing the text form.
//!
//! The `.hgr` path for a generated dataset is generate → `Hypergraph`
//! → text → (later) parse → `Hypergraph` again; at a million vertices
//! that is two full CSR builds plus tens of megabytes of text. These
//! emitters feed [`hypergraph::HgbStreamWriter`] directly from the
//! generator's edge stream, so the only allocation is the CSR itself
//! and the output is already in the O(header) mmap-servable format.

use hypergraph::HgbStreamWriter;
use std::path::Path;

use crate::uniform::uniform_edges;

/// Generate the k-uniform random hypergraph
/// ([`crate::uniform_random_hypergraph`], identical RNG sequence) and
/// stream it to `path` as `.hgb`.
///
/// # Panics
/// If `k > n`.
pub fn uniform_to_hgb(n: usize, m: usize, k: usize, seed: u64, path: &Path) -> std::io::Result<()> {
    let mut w = HgbStreamWriter::new(n);
    w.reserve_pins(m * k);
    uniform_edges(n, m, k, seed, |pins| {
        w.add_edge(pins.iter().copied());
    });
    w.finish_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_random_hypergraph;
    use hypergraph::{open_hgb, HgbOpenMode, HgbOpenOptions};

    #[test]
    fn streamed_hgb_matches_in_memory_generator() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hypergen-stream-{}.hgb", std::process::id()));
        uniform_to_hgb(40, 25, 4, 99, &path).unwrap();
        let ds = open_hgb(
            &path,
            HgbOpenOptions {
                mode: HgbOpenMode::Owned,
                verify: true,
            },
        )
        .unwrap();
        let h = uniform_random_hypergraph(40, 25, 4, 99);
        assert_eq!(ds.hypergraph.num_vertices(), h.num_vertices());
        assert_eq!(ds.hypergraph.num_edges(), h.num_edges());
        assert_eq!(ds.hypergraph.num_pins(), h.num_pins());
        for f in h.edges() {
            assert_eq!(ds.hypergraph.pins(f), h.pins(f));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
