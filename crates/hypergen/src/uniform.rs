//! k-uniform Erdős–Rényi-style random hypergraphs.

use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// `m` hyperedges, each a uniformly random `k`-subset of `n` vertices
/// (distinct vertices within an edge; edges drawn independently, so
/// duplicate edges can occur). Deterministic in `seed`.
///
/// # Panics
/// If `k > n`.
pub fn uniform_random_hypergraph(n: usize, m: usize, k: usize, seed: u64) -> Hypergraph {
    let mut b = HypergraphBuilder::new(n);
    b.reserve_pins(m * k);
    uniform_edges(n, m, k, seed, |pins| {
        b.add_edge(pins.iter().copied());
    });
    b.build()
}

/// The edge stream behind [`uniform_random_hypergraph`]: invokes `emit`
/// once per hyperedge with its pins, drawing from the identical RNG
/// sequence — a sink that builds a [`Hypergraph`] reproduces
/// [`uniform_random_hypergraph`] bit for bit, and a sink that streams
/// into an `.hgb` writer never materializes the hypergraph (or its text
/// form) at all.
///
/// # Panics
/// If `k > n`.
pub fn uniform_edges(n: usize, m: usize, k: usize, seed: u64, mut emit: impl FnMut(&[u32])) {
    assert!(k <= n, "edge size {k} exceeds vertex count {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pins = vec![0u32; k];
    for _ in 0..m {
        for (slot, v) in pins.iter_mut().zip(sample(&mut rng, n, k)) {
            *slot = v as u32;
        }
        emit(&pins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let h = uniform_random_hypergraph(30, 12, 4, 3);
        assert_eq!(h.num_vertices(), 30);
        assert_eq!(h.num_edges(), 12);
        assert!(h.edges().all(|f| h.edge_degree(f) == 4));
        assert_eq!(h.num_pins(), 48);
    }

    #[test]
    fn deterministic() {
        let a = uniform_random_hypergraph(20, 8, 3, 77);
        let b = uniform_random_hypergraph(20, 8, 3, 77);
        assert_eq!(hypergraph::io::write_hgr(&a), hypergraph::io::write_hgr(&b));
    }

    #[test]
    fn k_equals_n_gives_full_edges() {
        let h = uniform_random_hypergraph(5, 3, 5, 0);
        assert!(h.edges().all(|f| h.edge_degree(f) == 5));
    }

    #[test]
    fn k_zero_gives_empty_edges() {
        let h = uniform_random_hypergraph(5, 2, 0, 0);
        assert_eq!(h.num_pins(), 0);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds vertex count")]
    fn oversized_k_rejected() {
        let _ = uniform_random_hypergraph(3, 1, 4, 0);
    }

    #[test]
    fn dense_uniform_has_deep_core() {
        // Many size-5 edges over few vertices: every vertex lands in many
        // edges, so the max core is deep.
        let h = uniform_random_hypergraph(12, 60, 5, 42);
        let mc = hypergraph::max_core(&h).expect("non-empty");
        assert!(mc.k >= 3, "max core k = {}", mc.k);
    }
}
