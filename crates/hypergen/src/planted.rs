//! Generators with a planted dense core — ground truth for k-core
//! algorithms and the scaffolding for the DIP-calibrated PPI baselines.

use graphcore::{Graph, GraphBuilder, NodeId};
use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Power-law graph with a planted `core_k`-core on vertices
/// `0..core_size`.
///
/// * The core is a circulant graph of degree exactly `core_k` (vertex `i`
///   joined to `i ± 1, …, i ± core_k/2` mod `core_size`), so the core's
///   own core number is exactly `core_k`.
/// * The periphery (`core_size..n`) is a Chung–Lu power-law graph with
///   exponent `gamma` and mean degree `periphery_mean`, whose weights are
///   capped so its coreness stays below `core_k`. The cap controls
///   expected degrees only, so random fluctuation still produces small
///   2- and 3-cores in the periphery: the planted core is the exact
///   maximum core only when `core_k` clears the periphery's natural
///   coreness (≈ `periphery_mean`; use `core_k >= 6` with the defaults —
///   the DIP baselines use 8 and 10 and assert exactness in their tests).
/// * Each periphery vertex also attaches to a random core vertex with
///   probability `attach_prob`, keeping the graph mostly connected without
///   deepening the core.
///
/// # Panics
/// If `core_size > n`, `core_k` is odd, or `core_k >= core_size`.
pub fn planted_core_graph(
    n: usize,
    core_size: usize,
    core_k: u32,
    gamma: f64,
    periphery_mean: f64,
    attach_prob: f64,
    seed: u64,
) -> Graph {
    assert!(core_size <= n, "core larger than graph");
    assert!(
        core_k % 2 == 0,
        "core_k must be even (circulant construction)"
    );
    assert!((core_k as usize) < core_size, "core_k must be < core_size");

    let mut b = GraphBuilder::new(n);

    // Planted circulant core.
    let half = (core_k / 2) as usize;
    for i in 0..core_size {
        for d in 1..=half {
            let j = (i + d) % core_size;
            b.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }

    // Power-law periphery via Chung–Lu (weights sorted non-increasing;
    // periphery vertex ids are assigned in weight order, which is fine —
    // ids carry no meaning beyond the core prefix).
    let np = n - core_size;
    if np > 0 {
        let mut weights: Vec<f64> = (1..=np)
            .map(|i| (i as f64).powf(-1.0 / (gamma - 1.0)))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let scale = periphery_mean * np as f64 / wsum;
        // Cap weights so no periphery vertex expects degree >= core_k.
        let cap = (core_k as f64 - 1.0).max(1.0);
        for w in &mut weights {
            *w = (*w * scale).min(cap);
        }
        let pg = crate::chung_lu::chung_lu_graph(&weights, seed ^ 0x9e3779b97f4a7c15);
        for (u, v) in pg.edges() {
            b.add_edge(
                NodeId((core_size + u.index()) as u32),
                NodeId((core_size + v.index()) as u32),
            );
        }

        let mut rng = StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95);
        for p in core_size..n {
            if rng.gen::<f64>() < attach_prob {
                let c = rng.gen_range(0..core_size);
                b.add_edge(NodeId(p as u32), NodeId(c as u32));
            }
        }
    }

    b.build()
}

/// Hypergraph with a planted core block: `core_vertices` vertices each
/// belonging to exactly `core_vertex_degree` of the `core_edges` core
/// hyperedges (round-robin), plus a sparse periphery of `extra_vertices`
/// leaves each attached to `leaf_degree` random core or periphery edges
/// of its own (pair edges). The planted block peels to a deep core; the
/// exact maximum-core value depends on the round-robin overlap pattern,
/// so callers assert the property they need.
pub fn planted_core_hypergraph(
    core_vertices: usize,
    core_edges: usize,
    core_vertex_degree: u32,
    extra_vertices: usize,
    seed: u64,
) -> Hypergraph {
    assert!(core_edges >= core_vertex_degree as usize);
    let n = core_vertices + extra_vertices;
    let mut rng = StdRng::seed_from_u64(seed);

    // Membership lists for the core edges.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); core_edges];
    for v in 0..core_vertices {
        // Spread each vertex's memberships with a varying stride so edge
        // contents differ and containment is unlikely. Strides that are
        // not coprime with core_edges revisit edges; top up linearly so
        // each vertex lands in exactly core_vertex_degree distinct edges.
        let stride = 1 + (v % (core_edges.max(2) - 1));
        let mut chosen: std::collections::BTreeSet<usize> = (0..core_vertex_degree as usize)
            .map(|j| (v + j * stride) % core_edges)
            .collect();
        let mut e = 0;
        while chosen.len() < core_vertex_degree as usize {
            chosen.insert(e);
            e += 1;
        }
        for e in chosen {
            members[e].push(v as u32);
        }
    }

    let mut b = HypergraphBuilder::new(n);
    for m in members {
        b.add_edge(m);
    }
    // Periphery: each extra vertex forms a pair edge with a random earlier
    // vertex (degree-1 leaves from the edge's perspective).
    for x in core_vertices..n {
        let other = rng.gen_range(0..x) as u32;
        b.add_edge([x as u32, other]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_core_is_exactly_planted() {
        let g = planted_core_graph(500, 33, 10, 2.5, 3.0, 0.3, 42);
        let d = graphcore::core_decomposition(&g);
        assert_eq!(d.max_core, 10);
        let core_nodes = d.max_core_nodes();
        assert_eq!(core_nodes.len(), 33);
        assert!(core_nodes.iter().all(|u| u.index() < 33));
    }

    #[test]
    fn graph_periphery_has_power_law_flavour() {
        let g = planted_core_graph(2000, 20, 8, 2.5, 3.0, 0.2, 7);
        let hist = graphcore::degree_histogram(&g);
        // Degree-1 and degree-2 nodes dominate.
        let low: usize = hist.iter().take(4).sum();
        assert!(low * 2 > g.num_nodes(), "low-degree count {low}");
    }

    #[test]
    fn graph_deterministic() {
        let a = planted_core_graph(300, 16, 6, 2.5, 2.0, 0.5, 3);
        let b = planted_core_graph(300, 16, 6, 2.5, 2.0, 0.5, 3);
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_core_k_rejected() {
        let _ = planted_core_graph(100, 10, 5, 2.5, 2.0, 0.1, 0);
    }

    #[test]
    fn hypergraph_core_survives_peeling() {
        let h = planted_core_hypergraph(30, 40, 6, 100, 11);
        let mc = hypergraph::max_core(&h).expect("non-empty max core");
        assert!(mc.k >= 4, "max core k = {}", mc.k);
        // Core consists only of planted vertices.
        assert!(mc.vertices.iter().all(|v| v.0 < 30));
    }

    #[test]
    fn hypergraph_shape() {
        let h = planted_core_hypergraph(10, 12, 3, 20, 0);
        assert_eq!(h.num_vertices(), 30);
        assert_eq!(h.num_edges(), 32);
        // Planted vertices belong to exactly the target number of *core*
        // edges (periphery pair edges may add more degree on top).
        for v in 0..10u32 {
            let core_deg = h
                .edges_of(hypergraph::VertexId(v))
                .iter()
                .filter(|f| f.index() < 12)
                .count();
            assert_eq!(core_deg, 3, "vertex {v}");
        }
    }
}
