//! Truncated discrete power-law degree sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `n` degrees from the truncated discrete power law
/// `P(d) ∝ d^(−gamma)` on `d ∈ [d_min, d_max]`, by inversion on the
/// cumulative mass. Deterministic in `seed`.
///
/// # Panics
/// If `d_min == 0`, `d_min > d_max`, or `gamma` is not finite.
pub fn power_law_degrees(n: usize, gamma: f64, d_min: u32, d_max: u32, seed: u64) -> Vec<u32> {
    assert!(d_min >= 1, "power law undefined at degree 0");
    assert!(d_min <= d_max, "d_min must not exceed d_max");
    assert!(gamma.is_finite(), "gamma must be finite");

    // Cumulative mass over the support.
    let mut cdf = Vec::with_capacity((d_max - d_min + 1) as usize);
    let mut acc = 0.0f64;
    for d in d_min..=d_max {
        acc += (d as f64).powf(-gamma);
        cdf.push(acc);
    }
    let total = acc;

    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u);
            d_min + (idx as u32).min(d_max - d_min)
        })
        .collect()
}

/// Deterministic (no sampling noise) power-law *histogram*: the count of
/// vertices at each degree `d ∈ [d_min, d_max]` is `round(c · d^(−gamma))`
/// with a floor of `min_count`. Returns `(degree, count)` pairs.
///
/// Used by the calibrated Cellzome generator, where the paper's Fig. 1
/// histogram shape (not a random draw from it) is the target.
pub fn power_law_histogram_counts(
    c: f64,
    gamma: f64,
    d_min: u32,
    d_max: u32,
    min_count: usize,
) -> Vec<(u32, usize)> {
    assert!(d_min >= 1 && d_min <= d_max);
    (d_min..=d_max)
        .map(|d| {
            let count = (c * (d as f64).powf(-gamma)).round() as usize;
            (d, count.max(min_count))
        })
        .collect()
}

/// Expand a `(degree, count)` histogram into a flat degree sequence.
pub fn histogram_to_sequence(hist: &[(u32, usize)]) -> Vec<u32> {
    let mut out = Vec::with_capacity(hist.iter().map(|&(_, c)| c).sum());
    for &(d, count) in hist {
        out.extend(std::iter::repeat_n(d, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds() {
        let seq = power_law_degrees(1000, 2.5, 1, 21, 42);
        assert_eq!(seq.len(), 1000);
        assert!(seq.iter().all(|&d| (1..=21).contains(&d)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = power_law_degrees(100, 2.5, 1, 20, 7);
        let b = power_law_degrees(100, 2.5, 1, 20, 7);
        let c = power_law_degrees(100, 2.5, 1, 20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn heavy_tail_shape() {
        // With gamma = 2.5, degree-1 should dominate strongly.
        let seq = power_law_degrees(10_000, 2.5, 1, 50, 1);
        let ones = seq.iter().filter(|&&d| d == 1).count();
        let fives = seq.iter().filter(|&&d| d == 5).count();
        assert!(ones > 5_000, "ones = {ones}");
        assert!(ones > 10 * fives.max(1));
    }

    #[test]
    fn degenerate_support() {
        let seq = power_law_degrees(50, 3.0, 4, 4, 1);
        assert!(seq.iter().all(|&d| d == 4));
    }

    #[test]
    #[should_panic(expected = "degree 0")]
    fn rejects_zero_dmin() {
        let _ = power_law_degrees(10, 2.0, 0, 5, 1);
    }

    #[test]
    fn histogram_counts_rounding_and_floor() {
        let hist = power_law_histogram_counts(100.0, 2.0, 1, 5, 1);
        assert_eq!(hist[0], (1, 100));
        assert_eq!(hist[1], (2, 25));
        assert_eq!(hist[4], (5, 4));
        // Floor applies when the law rounds to zero.
        let hist = power_law_histogram_counts(1.0, 3.0, 1, 4, 1);
        assert!(hist.iter().all(|&(_, c)| c >= 1));
    }

    #[test]
    fn histogram_to_sequence_expands() {
        let seq = histogram_to_sequence(&[(1, 3), (4, 2)]);
        assert_eq!(seq, vec![1, 1, 1, 4, 4]);
    }
}
