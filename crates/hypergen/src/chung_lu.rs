//! Chung–Lu style random models with prescribed expected degrees.

use graphcore::{Graph, GraphBuilder, NodeId};
use hypergraph::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bipartite Chung–Lu hypergraph: vertex `v` has weight `w_v`, hyperedge
/// `f` has weight `u_f`; `v ∈ f` independently with probability
/// `min(1, w_v · u_f / S)` where `S = Σ w_v` (so expected vertex degree
/// ≈ `w_v · Σ u_f / S`). Sampling is done per hyperedge with weighted
/// inversion, O(d(f) log |V|) per edge in expectation.
pub fn chung_lu_hypergraph(vertex_weights: &[f64], edge_weights: &[f64], seed: u64) -> Hypergraph {
    assert!(vertex_weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
    assert!(edge_weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
    let s: f64 = vertex_weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(vertex_weights.len());

    // Cumulative weights for proportional vertex sampling.
    let mut cum = Vec::with_capacity(vertex_weights.len());
    let mut acc = 0.0;
    for &w in vertex_weights {
        acc += w;
        cum.push(acc);
    }

    for &uf in edge_weights {
        // Expected size uf (weights normalized so Σu_f ≈ Σ sizes): draw a
        // Poisson-ish count via repeated Bernoulli on a weighted sample.
        // Practical approximation: sample round(uf) members proportionally
        // to w_v, plus one extra with probability frac(uf); dedup.
        let base = uf.floor() as usize;
        let extra = usize::from(rng.gen::<f64>() < uf.fract());
        let mut pins = Vec::with_capacity(base + extra);
        if s > 0.0 {
            for _ in 0..(base + extra) {
                let t = rng.gen::<f64>() * s;
                let v = cum
                    .partition_point(|&c| c < t)
                    .min(vertex_weights.len() - 1);
                pins.push(v as u32);
            }
        }
        b.add_edge(pins);
    }
    b.build()
}

/// Chung–Lu power-law *graph* with expected degree `weights[v]` for node
/// `v`: edge `{u, v}` present independently with probability
/// `min(1, w_u w_v / S)`, `S = Σ w`. Implemented with the
/// Miller–Hagberg skip-ahead so the cost is O(n + m), not O(n²):
/// weights must be supplied in **non-increasing** order.
///
/// # Panics
/// If weights are not sorted non-increasing, or not finite/non-negative.
pub fn chung_lu_graph(weights: &[f64], seed: u64) -> Graph {
    assert!(
        weights.windows(2).all(|w| w[0] >= w[1]),
        "weights must be non-increasing"
    );
    assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
    let n = weights.len();
    let s: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if s == 0.0 {
        return b.build();
    }

    for u in 0..n {
        let wu = weights[u];
        if wu == 0.0 {
            break; // sorted: all the rest are zero too
        }
        // Walk candidates v > u with geometric skips calibrated to the
        // largest probability in the remaining tail (p = wu*wv/S is
        // non-increasing in v).
        let mut v = u + 1;
        let mut p = (wu * weights.get(v).copied().unwrap_or(0.0) / s).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                // Skip ahead geometrically with the current p.
                let r: f64 = rng.gen::<f64>();
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                let skip = if skip.is_finite() { skip as usize } else { n };
                v = v.saturating_add(skip.min(n));
            }
            if v >= n {
                break;
            }
            // Accept with the corrected probability q/p for the actual v.
            let q = (wu * weights[v] / s).min(1.0);
            if rng.gen::<f64>() < q / p {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
            p = q;
            v += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypergraph_sizes_near_weights() {
        let vw = vec![1.0; 200];
        let ew = vec![8.0; 50];
        let h = chung_lu_hypergraph(&vw, &ew, 9);
        assert_eq!(h.num_edges(), 50);
        let mean_size = h.num_pins() as f64 / 50.0;
        assert!((mean_size - 8.0).abs() < 1.0, "mean size = {mean_size}");
    }

    #[test]
    fn hypergraph_weighted_vertices_get_higher_degree() {
        let mut vw = vec![1.0; 100];
        vw[0] = 50.0;
        let ew = vec![5.0; 60];
        let h = chung_lu_hypergraph(&vw, &ew, 10);
        let hub = h.vertex_degree(hypergraph::VertexId(0));
        let mean: f64 = (1..100)
            .map(|v| h.vertex_degree(hypergraph::VertexId(v)) as f64)
            .sum::<f64>()
            / 99.0;
        assert!(hub as f64 > 5.0 * mean, "hub {hub} vs mean {mean}");
    }

    #[test]
    fn graph_mean_degree_close_to_expected() {
        let n = 2000;
        let weights = vec![6.0; n];
        let g = chung_lu_graph(&weights, 4);
        let mean = g.degree_sum() as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.8, "mean degree = {mean}");
    }

    #[test]
    fn graph_power_law_weights_give_heavy_tail() {
        // w_v ∝ v^(-1/(gamma-1)) gives a gamma power-law expected-degree
        // sequence; check the realized max degree dwarfs the median.
        let n = 3000usize;
        let gamma = 2.5f64;
        let mut weights: Vec<f64> = (1..=n)
            .map(|i| 40.0 * (i as f64).powf(-1.0 / (gamma - 1.0)))
            .collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let g = chung_lu_graph(&weights, 12);
        let mut degs: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        degs.sort_unstable();
        let median = degs[n / 2];
        let max = degs[n - 1];
        assert!(max >= 10 * median.max(1), "max {max}, median {median}");
    }

    #[test]
    fn graph_deterministic() {
        let weights = vec![3.0; 100];
        let a = chung_lu_graph(&weights, 5);
        let b = chung_lu_graph(&weights, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn zero_weights_yield_empty() {
        let g = chung_lu_graph(&[0.0; 10], 1);
        assert_eq!(g.num_edges(), 0);
        let h = chung_lu_hypergraph(&[0.0; 5], &[3.0; 4], 1);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.num_pins(), 0);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn graph_requires_sorted_weights() {
        let _ = chung_lu_graph(&[1.0, 2.0], 0);
    }
}
