//! Property-based tests for the generators.

use proptest::prelude::*;

use hypergraph::validate::check_structure;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Power-law sequences respect their bounds for any parameters.
    #[test]
    fn power_law_bounds(
        n in 1usize..300,
        gamma in 0.5f64..4.0,
        d_min in 1u32..5,
        width in 0u32..30,
        seed in any::<u64>(),
    ) {
        let d_max = d_min + width;
        let seq = hypergen::power_law_degrees(n, gamma, d_min, d_max, seed);
        prop_assert_eq!(seq.len(), n);
        prop_assert!(seq.iter().all(|&d| (d_min..=d_max).contains(&d)));
    }

    /// The configuration model uses every stub: pin count equals the
    /// degree sum minus merged duplicates, and never exceeds it; realized
    /// vertex degrees never exceed targets.
    #[test]
    fn configuration_model_respects_degrees(
        (vdeg, edeg, seed) in (1usize..40, 1usize..15, any::<u64>()).prop_map(|(n, m, seed)| {
            // Build degree sequences with equal sums.
            let vdeg: Vec<u32> = (0..n).map(|i| 1 + (i % 3) as u32).collect();
            let total: u32 = vdeg.iter().sum();
            let base = total / m as u32;
            let mut edeg = vec![base; m];
            edeg[0] += total - base * m as u32;
            (vdeg, edeg, seed)
        })
    ) {
        let h = hypergen::configuration_hypergraph(&vdeg, &edeg, seed);
        check_structure(&h).unwrap();
        prop_assert_eq!(h.num_vertices(), vdeg.len());
        prop_assert_eq!(h.num_edges(), edeg.len());
        let total: usize = vdeg.iter().map(|&d| d as usize).sum();
        prop_assert!(h.num_pins() <= total);
        for (v, &target) in vdeg.iter().enumerate() {
            prop_assert!(
                h.vertex_degree(hypergraph::VertexId(v as u32)) <= target as usize
            );
        }
        for (f, &target) in edeg.iter().enumerate() {
            prop_assert!(
                h.edge_degree(hypergraph::EdgeId(f as u32)) <= target as usize
            );
        }
    }

    /// Uniform hypergraphs are k-uniform and structurally valid.
    #[test]
    fn uniform_is_uniform(
        n in 1usize..50,
        m in 0usize..30,
        seed in any::<u64>(),
    ) {
        let k = (n / 2).min(6);
        let h = hypergen::uniform_random_hypergraph(n, m, k, seed);
        check_structure(&h).unwrap();
        prop_assert!(h.edges().all(|f| h.edge_degree(f) == k));
    }

    /// Chung–Lu graphs: simple, within bounds, deterministic.
    #[test]
    fn chung_lu_graph_valid(
        n in 2usize..120,
        w in 0.5f64..8.0,
        seed in any::<u64>(),
    ) {
        let weights = vec![w; n];
        let g = hypergen::chung_lu_graph(&weights, seed);
        prop_assert_eq!(g.num_nodes(), n);
        // Simple graph invariants hold by construction; determinism:
        let g2 = hypergen::chung_lu_graph(&weights, seed);
        prop_assert!(g.edges().eq(g2.edges()));
    }

    /// Planted-core graphs contain their core exactly, provided the
    /// planted coreness clears the periphery's natural coreness (a
    /// Chung–Lu graph of mean degree ~2 develops 2- and 3-cores of its
    /// own, so the guarantee starts at core_k >= 6 — the DIP baselines
    /// use 8 and 10).
    #[test]
    fn planted_graph_core_exact(
        seed in any::<u64>(),
        core_k in (3u32..6).prop_map(|x| x * 2),
        extra in 0usize..400,
    ) {
        let core_size = (core_k as usize + 2).max(10);
        let n = core_size + extra;
        let g = hypergen::planted_core_graph(n, core_size, core_k, 2.5, 2.0, 0.3, seed);
        let d = graphcore::core_decomposition(&g);
        prop_assert_eq!(d.max_core, core_k);
        let core_nodes = d.max_core_nodes();
        prop_assert_eq!(core_nodes.len(), core_size);
        prop_assert!(core_nodes.iter().all(|u| u.index() < core_size));
    }

    /// Planted-core hypergraphs keep their planted vertices in the max
    /// core.
    #[test]
    fn planted_hypergraph_core_contained(seed in any::<u64>()) {
        let h = hypergen::planted_core_hypergraph(20, 30, 5, 60, seed);
        check_structure(&h).unwrap();
        let mc = hypergraph::max_core(&h).expect("non-empty");
        prop_assert!(mc.k >= 3);
        prop_assert!(mc.vertices.iter().all(|v| v.0 < 20));
    }
}
