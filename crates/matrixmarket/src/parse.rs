//! Matrix Market coordinate-format parser.
//!
//! Supports `matrix coordinate {real|integer|pattern|complex}` with
//! `{general|symmetric|skew-symmetric|hermitian}` symmetry. Symmetric
//! variants are expanded to full storage. Array (dense) format is
//! rejected — the Table 1 matrices are all sparse.

use crate::CoordMatrix;

/// Error from parsing `.mtx` text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MtxError(pub String);

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatrixMarket parse error: {}", self.0)
    }
}

impl std::error::Error for MtxError {}

fn err(msg: impl Into<String>) -> MtxError {
    MtxError(msg.into())
}

/// Parse Matrix Market coordinate text into a [`CoordMatrix`].
pub fn parse_mtx(text: &str) -> Result<CoordMatrix, MtxError> {
    let mut lines = text.lines();
    let banner = lines.next().ok_or_else(|| err("empty document"))?;
    let fields: Vec<String> = banner
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" {
        return Err(err(format!("bad banner: `{banner}`")));
    }
    if fields[1] != "matrix" {
        return Err(err(format!("unsupported object `{}`", fields[1])));
    }
    if fields[2] != "coordinate" {
        return Err(err(format!(
            "unsupported format `{}` (only coordinate)",
            fields[2]
        )));
    }
    let field = fields[3].as_str();
    let values_per_entry = match field {
        "real" | "integer" => 1,
        "pattern" => 0,
        "complex" => 2,
        other => return Err(err(format!("unsupported field `{other}`"))),
    };
    let symmetry = fields[4].as_str();
    let (mirror, skew) = match symmetry {
        "general" => (false, false),
        "symmetric" | "hermitian" => (true, false),
        "skew-symmetric" => (true, true),
        other => return Err(err(format!("unsupported symmetry `{other}`"))),
    };

    // Size line: first non-comment, non-blank line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| err("missing size line"))?;
    let mut it = size_line.split_whitespace();
    let nrows: usize = it
        .next()
        .ok_or_else(|| err("missing row count"))?
        .parse()
        .map_err(|e| err(format!("bad row count: {e}")))?;
    let ncols: usize = it
        .next()
        .ok_or_else(|| err("missing column count"))?
        .parse()
        .map_err(|e| err(format!("bad column count: {e}")))?;
    let nnz: usize = it
        .next()
        .ok_or_else(|| err("missing nnz count"))?
        .parse()
        .map_err(|e| err(format!("bad nnz count: {e}")))?;

    let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(if mirror { 2 * nnz } else { nnz });
    let mut parsed = 0usize;
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if parsed == nnz {
            return Err(err(format!("more than {nnz} entry lines")));
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| err("entry missing row"))?
            .parse()
            .map_err(|e| err(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| err("entry missing column"))?
            .parse()
            .map_err(|e| err(format!("bad column index: {e}")))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(err(format!(
                "entry ({r}, {c}) out of 1..={nrows} x 1..={ncols}"
            )));
        }
        let v = match values_per_entry {
            0 => 1.0,
            1 => it
                .next()
                .ok_or_else(|| err("entry missing value"))?
                .parse::<f64>()
                .map_err(|e| err(format!("bad value: {e}")))?,
            _ => {
                // Complex: store the real part's magnitude contribution as
                // the modulus, which is what the pattern-level algorithms
                // here care about.
                let re: f64 = it
                    .next()
                    .ok_or_else(|| err("complex entry missing real part"))?
                    .parse()
                    .map_err(|e| err(format!("bad value: {e}")))?;
                let im: f64 = it
                    .next()
                    .ok_or_else(|| err("complex entry missing imaginary part"))?
                    .parse()
                    .map_err(|e| err(format!("bad value: {e}")))?;
                (re * re + im * im).sqrt()
            }
        };
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        triplets.push((r0, c0, v));
        if mirror && r != c {
            triplets.push((c0, r0, if skew { -v } else { v }));
        }
        parsed += 1;
    }
    if parsed != nnz {
        return Err(err(format!("expected {nnz} entries, found {parsed}")));
    }
    Ok(CoordMatrix::from_triplets(nrows, ncols, triplets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 2.5\n\
                    2 3 -1\n\
                    3 1 4\n";
        let m = parse_mtx(text).unwrap();
        assert_eq!((m.nrows, m.ncols, m.nnz()), (3, 3, 3));
        assert_eq!(m.entries[0], (0, 0, 2.5));
        assert_eq!(m.entries[1], (1, 2, -1.0));
    }

    #[test]
    fn pattern_defaults_to_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = parse_mtx(text).unwrap();
        assert_eq!(m.entries, vec![(0, 1, 1.0), (1, 0, 1.0)]);
    }

    #[test]
    fn symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n";
        let m = parse_mtx(text).unwrap();
        assert_eq!(m.nnz(), 3); // (1,0), (0,1), (2,2)
        assert!(m.entries.contains(&(0, 1, 5.0)));
        assert!(m.entries.contains(&(1, 0, 5.0)));
        assert!(m.entries.contains(&(2, 2, 7.0)));
    }

    #[test]
    fn skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let m = parse_mtx(text).unwrap();
        assert!(m.entries.contains(&(0, 1, -3.0)));
        assert!(m.entries.contains(&(1, 0, 3.0)));
    }

    #[test]
    fn complex_takes_modulus() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 3 4\n";
        let m = parse_mtx(text).unwrap();
        assert_eq!(m.entries, vec![(0, 0, 5.0)]);
    }

    #[test]
    fn errors() {
        assert!(parse_mtx("").is_err());
        assert!(parse_mtx("%%MatrixMarket matrix array real general\n").is_err());
        assert!(
            parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n").is_err()
        );
        assert!(
            parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n").is_err()
        );
        assert!(
            parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n")
                .is_err()
        );
        assert!(parse_mtx("garbage\n1 1 0\n").is_err());
    }

    #[test]
    fn roundtrip_with_writer() {
        let m = CoordMatrix::from_triplets(3, 4, vec![(0, 3, 1.5), (2, 0, -2.0)]);
        let text = crate::write_mtx(&m);
        let m2 = parse_mtx(&text).unwrap();
        assert_eq!(m, m2);
    }
}
