//! `matrixmarket` — Matrix Market I/O and synthetic structured sparse
//! matrices, feeding the paper's Table 1 scalability study.
//!
//! The paper runs its hypergraph k-core algorithm on "larger hypergraphs
//! obtained from scientific computing applications (from the Matrix
//! Market)". This crate provides:
//!
//! * a parser/writer for the Matrix Market coordinate format ([`parse`],
//!   [`mod@write`]), so genuine `.mtx` files can be used when available;
//! * deterministic synthetic matrix families of the same flavours and
//!   scales as the (partly illegible) Table 1 matrices — banded waveguide,
//!   finite-element meshes, 3-D stiffness, unstructured tokamak-like
//!   ([`synth`]);
//! * conversion from a sparse matrix to a hypergraph by the row-net or
//!   column-net model ([`to_hypergraph`]).

pub mod parse;
pub mod synth;
pub mod to_hypergraph;
pub mod write;

pub use parse::{parse_mtx, MtxError};
pub use synth::{banded_matrix, fem_mesh_2d, stiffness_3d, table1_suite, tokamak_like};
pub use to_hypergraph::{column_net, row_net};
pub use write::write_mtx;

/// A sparse matrix in coordinate (triplet) form, 0-based indices,
/// duplicates merged, entries sorted by (row, col).
#[derive(Clone, Debug, PartialEq)]
pub struct CoordMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Sorted, duplicate-free `(row, col, value)` triplets.
    pub entries: Vec<(u32, u32, f64)>,
}

impl CoordMatrix {
    /// Build from raw triplets: sorts, merges duplicates by addition.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        mut triplets: Vec<(u32, u32, f64)>,
    ) -> CoordMatrix {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        for &(r, c, _) in &triplets {
            assert!(
                (r as usize) < nrows && (c as usize) < ncols,
                "entry ({r}, {c}) out of {nrows}x{ncols}"
            );
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match entries.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => entries.push((r, c, v)),
            }
        }
        CoordMatrix {
            nrows,
            ncols,
            entries,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Number of nonzeros in each row.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for &(r, _, _) in &self.entries {
            counts[r as usize] += 1;
        }
        counts
    }

    /// Number of nonzeros in each column.
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for &(_, c, _) in &self.entries {
            counts[c as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sorts_and_merges() {
        let m = CoordMatrix::from_triplets(
            3,
            3,
            vec![(2, 1, 1.0), (0, 0, 2.0), (2, 1, 3.0), (0, 2, 1.0)],
        );
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.entries, vec![(0, 0, 2.0), (0, 2, 1.0), (2, 1, 4.0)]);
    }

    #[test]
    fn counts() {
        let m = CoordMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        assert_eq!(m.row_counts(), vec![2, 1]);
        assert_eq!(m.col_counts(), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bounds_checked() {
        let _ = CoordMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CoordMatrix::from_triplets(0, 0, vec![]);
        assert_eq!(m.nnz(), 0);
        assert!(m.row_counts().is_empty());
    }
}
