//! Matrix Market coordinate-format writer.

use std::fmt::Write as _;

use crate::CoordMatrix;

/// Serialize a [`CoordMatrix`] as `matrix coordinate real general` text.
pub fn write_mtx(m: &CoordMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "%%MatrixMarket matrix coordinate real general");
    let _ = writeln!(out, "{} {} {}", m.nrows, m.ncols, m.nnz());
    for &(r, c, v) in &m.entries {
        let _ = writeln!(out, "{} {} {}", r + 1, c + 1, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_shape() {
        let m = CoordMatrix::from_triplets(2, 2, vec![(0, 1, 2.0)]);
        let text = write_mtx(&m);
        assert_eq!(
            text,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 2\n"
        );
    }

    #[test]
    fn empty() {
        let m = CoordMatrix::from_triplets(0, 0, vec![]);
        assert!(write_mtx(&m).contains("0 0 0"));
    }
}
