//! Sparse matrix → hypergraph conversion.
//!
//! Two standard models from sparse-matrix partitioning (the authors'
//! research area):
//!
//! * **row-net**: rows are hyperedges, columns are vertices; hyperedge `i`
//!   contains vertex `j` iff `a_ij ≠ 0`;
//! * **column-net**: columns are hyperedges, rows are vertices.
//!
//! Explicitly stored zeros are kept (they are structural nonzeros in the
//! Matrix Market sense).

use hypergraph::{Hypergraph, HypergraphBuilder};

use crate::CoordMatrix;

/// Row-net model: `|V| = ncols`, `|F| = nrows`.
pub fn row_net(m: &CoordMatrix) -> Hypergraph {
    let mut b = HypergraphBuilder::new(m.ncols);
    b.reserve_pins(m.nnz());
    // Entries are sorted by (row, col): walk rows in order.
    let mut i = 0usize;
    for r in 0..m.nrows as u32 {
        let start = i;
        while i < m.entries.len() && m.entries[i].0 == r {
            i += 1;
        }
        b.add_edge(m.entries[start..i].iter().map(|&(_, c, _)| c));
    }
    b.build()
}

/// Column-net model: `|V| = nrows`, `|F| = ncols`.
pub fn column_net(m: &CoordMatrix) -> Hypergraph {
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); m.ncols];
    for &(r, c, _) in &m.entries {
        cols[c as usize].push(r);
    }
    let mut b = HypergraphBuilder::new(m.nrows);
    b.reserve_pins(m.nnz());
    for col in cols {
        b.add_edge(col);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{EdgeId, VertexId};

    fn sample() -> CoordMatrix {
        // 3x4:
        // [x . x .]
        // [. x . .]
        // [x x . x]
        CoordMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 1.0),
                (1, 1, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn row_net_shape() {
        let h = row_net(&sample());
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_pins(), 6);
        assert_eq!(h.pins(EdgeId(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(h.pins(EdgeId(2)), &[VertexId(0), VertexId(1), VertexId(3)]);
    }

    #[test]
    fn column_net_is_transpose_of_row_net() {
        let m = sample();
        let h = column_net(&m);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.pins(EdgeId(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(h.pins(EdgeId(1)), &[VertexId(1), VertexId(2)]);
        assert_eq!(h.pins(EdgeId(2)), &[VertexId(0)]);
        assert_eq!(h.pins(EdgeId(3)), &[VertexId(2)]);
    }

    #[test]
    fn empty_rows_become_empty_edges() {
        let m = CoordMatrix::from_triplets(3, 2, vec![(0, 0, 1.0)]);
        let h = row_net(&m);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge_degree(EdgeId(1)), 0);
        assert_eq!(h.edge_degree(EdgeId(2)), 0);
    }

    #[test]
    fn pin_counts_match_nnz() {
        let m = sample();
        assert_eq!(row_net(&m).num_pins(), m.nnz());
        assert_eq!(column_net(&m).num_pins(), m.nnz());
    }
}
