//! Deterministic synthetic sparse-matrix families standing in for the
//! Matrix Market matrices of the paper's Table 1.
//!
//! The paper's table names are partly illegible in the surviving text
//! (bfw…, fdp…, stk…, utm…), but the families are recognizable Matrix
//! Market collections: **bfw** (bounded finline waveguide — banded,
//! complex), **fidap** (FIDAP finite-element fluid dynamics — 2-D
//! meshes), **stk** (structural stiffness — 3-D meshes), **utm**
//! (TOKAMAK plasma — unstructured). Each generator below produces a
//! matrix with the same structural signature at a comparable scale, and
//! is deterministic in its seed, so Table 1 regenerates bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CoordMatrix;

/// Banded matrix (bfw-like): entries within `bandwidth` of the diagonal,
/// present with probability `fill`, plus the full diagonal.
pub fn banded_matrix(n: usize, bandwidth: usize, fill: f64, seed: u64) -> CoordMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i as u32, i as u32, 4.0));
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth).min(n - 1);
        for j in lo..=hi {
            if j != i && rng.gen::<f64>() < fill {
                t.push((i as u32, j as u32, -1.0));
            }
        }
    }
    CoordMatrix::from_triplets(n, n, t)
}

/// 2-D finite-element mesh (fidap-like): 9-point stencil on an
/// `nx × ny` grid, with a fraction `drop` of off-diagonal couplings
/// removed to mimic irregular element shapes.
pub fn fem_mesh_2d(nx: usize, ny: usize, drop: f64, seed: u64) -> CoordMatrix {
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut t = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            t.push((i, i, 8.0));
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    if rng.gen::<f64>() >= drop {
                        t.push((i, idx(xx as usize, yy as usize), -1.0));
                    }
                }
            }
        }
    }
    CoordMatrix::from_triplets(n, n, t)
}

/// 3-D stiffness matrix (stk-like): 27-point stencil on an
/// `nx × ny × nz` grid.
pub fn stiffness_3d(nx: usize, ny: usize, nz: usize) -> CoordMatrix {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    let mut t = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let v = if dx == 0 && dy == 0 && dz == 0 {
                                26.0
                            } else {
                                -1.0
                            };
                            t.push((i, idx(xx as usize, yy as usize, zz as usize), v));
                        }
                    }
                }
            }
        }
    }
    CoordMatrix::from_triplets(n, n, t)
}

/// Unstructured tokamak-like matrix (utm-like): a ring of width-2 local
/// couplings (the torus cross-sections) plus heavy-tailed long-range
/// couplings whose per-row counts vary widely, giving the irregular row
/// degrees typical of plasma simulation matrices.
pub fn tokamak_like(n: usize, mean_extra: f64, seed: u64) -> CoordMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Vec::new();
    for i in 0..n {
        let iu = i as u32;
        t.push((iu, iu, 10.0));
        for d in 1..=2usize {
            let j = ((i + d) % n) as u32;
            t.push((iu, j, -1.0));
            t.push((j, iu, -1.0));
        }
        // Heavy-tailed extra couplings: count ~ mean_extra / u, capped.
        let u: f64 = rng.gen::<f64>().max(1e-3);
        let extra = ((mean_extra * 0.5 / u) as usize).min(64);
        for _ in 0..extra {
            let j = rng.gen_range(0..n) as u32;
            if j != iu {
                t.push((iu, j, -0.5));
            }
        }
    }
    CoordMatrix::from_triplets(n, n, t)
}

/// The five Table 1 stand-ins, scaled like the originals: name, matrix.
///
/// | name          | family               | n       |
/// |---------------|----------------------|---------|
/// | bfw782s       | banded waveguide     | 782     |
/// | fdp2880s      | 2-D FE mesh          | 2 880   |
/// | stk10648s     | 3-D stiffness        | 10 648  |
/// | utm5940m      | unstructured tokamak | 5 940   |
/// | fdp22500h     | large 2-D FE mesh    | 22 500  |
pub fn table1_suite() -> Vec<(&'static str, CoordMatrix)> {
    vec![
        ("bfw782s", banded_matrix(782, 25, 0.35, 0xbf01)),
        ("fdp2880s", fem_mesh_2d(60, 48, 0.15, 0xfd02)),
        ("stk10648s", stiffness_3d(22, 22, 22)),
        ("utm5940m", tokamak_like(5940, 6.0, 0x0103)),
        ("fdp22500h", fem_mesh_2d(150, 150, 0.10, 0xfd04)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_stays_in_band() {
        let m = banded_matrix(50, 3, 0.5, 1);
        assert!(m
            .entries
            .iter()
            .all(|&(r, c, _)| (r as i64 - c as i64).abs() <= 3));
        // Diagonal complete.
        let diag = m.entries.iter().filter(|&&(r, c, _)| r == c).count();
        assert_eq!(diag, 50);
    }

    #[test]
    fn fem_mesh_row_degrees_bounded_by_stencil() {
        let m = fem_mesh_2d(10, 10, 0.0, 0);
        let counts = m.row_counts();
        assert!(counts.iter().all(|&c| (4..=9).contains(&c)));
        // Interior nodes see the full 9-point stencil.
        assert_eq!(counts[5 * 10 + 5], 9);
    }

    #[test]
    fn stiffness_interior_has_27() {
        let m = stiffness_3d(5, 5, 5);
        let counts = m.row_counts();
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(counts[center], 27);
        assert_eq!(counts[0], 8); // corner
    }

    #[test]
    fn tokamak_rows_vary() {
        let m = tokamak_like(500, 6.0, 2);
        let counts = m.row_counts();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(min >= &3);
        assert!(max > &20, "max row count {max}");
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table1_suite();
        let b = table1_suite();
        for ((na, ma), (nb, mb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn suite_scales_match_labels() {
        for (name, m) in table1_suite() {
            let n: usize = name
                .trim_start_matches(|c: char| c.is_alphabetic())
                .trim_end_matches(|c: char| c.is_alphabetic())
                .parse()
                .unwrap();
            assert_eq!(m.nrows, n, "{name}");
            assert_eq!(m.ncols, n, "{name}");
            assert!(m.nnz() > n, "{name} too sparse");
        }
    }
}
