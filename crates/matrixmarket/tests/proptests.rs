//! Property-based tests for MatrixMarket I/O and hypergraph conversion.

use proptest::prelude::*;

use matrixmarket::{column_net, parse_mtx, row_net, write_mtx, CoordMatrix};

fn arb_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CoordMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -100i32..100), 0..=max_nnz).prop_map(
            move |trip| {
                CoordMatrix::from_triplets(
                    r,
                    c,
                    trip.into_iter().map(|(i, j, v)| (i, j, v as f64)).collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triplet normalization: sorted, in-bounds, duplicate-free.
    #[test]
    fn from_triplets_normalizes(m in arb_matrix(12, 40)) {
        prop_assert!(m.entries.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        prop_assert!(m
            .entries
            .iter()
            .all(|&(r, c, _)| (r as usize) < m.nrows && (c as usize) < m.ncols));
        prop_assert_eq!(m.row_counts().iter().sum::<usize>(), m.nnz());
        prop_assert_eq!(m.col_counts().iter().sum::<usize>(), m.nnz());
    }

    /// Text round-trip is exact (values are written losslessly enough
    /// for integer-valued doubles).
    #[test]
    fn mtx_roundtrip(m in arb_matrix(12, 40)) {
        let text = write_mtx(&m);
        let m2 = parse_mtx(&text).unwrap();
        prop_assert_eq!(m, m2);
    }

    /// Row-net and column-net are transposes of each other.
    #[test]
    fn nets_transpose(m in arb_matrix(10, 30)) {
        let r = row_net(&m);
        let c = column_net(&m);
        hypergraph::validate::check_structure(&r).unwrap();
        hypergraph::validate::check_structure(&c).unwrap();
        prop_assert_eq!(r.num_pins(), m.nnz());
        prop_assert_eq!(c.num_pins(), m.nnz());
        prop_assert_eq!(r.num_vertices(), m.ncols);
        prop_assert_eq!(c.num_vertices(), m.nrows);
        for f in r.edges() {
            for &v in r.pins(f) {
                prop_assert!(c
                    .pins(hypergraph::EdgeId(v.0))
                    .contains(&hypergraph::VertexId(f.0)));
            }
        }
    }

    /// Synthetic generators are deterministic in their seeds.
    #[test]
    fn generators_deterministic(seed in any::<u64>()) {
        let a = matrixmarket::banded_matrix(60, 5, 0.4, seed);
        let b = matrixmarket::banded_matrix(60, 5, 0.4, seed);
        prop_assert_eq!(a, b);
        let a = matrixmarket::tokamak_like(80, 3.0, seed);
        let b = matrixmarket::tokamak_like(80, 3.0, seed);
        prop_assert_eq!(a, b);
    }

    /// Row degrees of the banded generator stay within the band.
    #[test]
    fn banded_in_band(n in 2usize..80, bw in 1usize..6, seed in any::<u64>()) {
        let m = matrixmarket::banded_matrix(n, bw, 0.5, seed);
        prop_assert!(m
            .entries
            .iter()
            .all(|&(r, c, _)| (r as i64 - c as i64).unsigned_abs() as usize <= bw));
        // Full diagonal present.
        let diag = m.entries.iter().filter(|&&(r, c, _)| r == c).count();
        prop_assert_eq!(diag, n);
    }
}
