//! Property tests for the serving layer:
//!
//! * routing a query stream through the sharded result cache must
//!   never change an answer — the cached engine replays the exact
//!   lookup/insert discipline `server::route` uses, with a budget
//!   small enough that eviction and recomputation both happen;
//! * the bucketed latency histograms behind `/metrics` must bracket
//!   the exact order statistic of the observations within one bucket.

use std::sync::Arc;

use proptest::prelude::*;

use hgobs::HistSummary;
use hgserve::{Query, ShardedLru};
use hypergraph::{Hypergraph, HypergraphBuilder};

fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

/// A stream of well-formed queries whose parameters stay in range for a
/// hypergraph with `n` vertices (external ids are 1-based). The vendored
/// proptest has no `prop_oneof!`, so a selector integer picks the variant.
fn arb_queries(n: usize, len: usize) -> impl Strategy<Value = Vec<Query>> {
    let n = n as u32;
    let one = (0u32..9, 0u32..6, 1..=n, 1..=n).prop_map(|(sel, k, from, to)| match sel {
        0 => Query::Stats,
        1 => Query::Degrees,
        2 => Query::Components,
        3 => Query::KCore { k: Some(k) },
        4 => Query::KCore { k: None },
        5 => Query::Distance { from, to },
        6 => Query::Diameter,
        7 => Query::PowerLaw,
        _ => Query::Cover,
    });
    proptest::collection::vec(one, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Cache-on and cache-off engines return byte-identical bodies for
    /// every query in an arbitrary stream.
    #[test]
    fn cached_answers_equal_uncached(
        (h, queries) in arb_hypergraph(12, 10, 5)
            .prop_flat_map(|h| {
                let n = h.num_vertices().max(1);
                (Just(h), arb_queries(n, 24))
            }),
        capacity in 256usize..4096,
        shards in 1usize..5,
    ) {
        let cache = ShardedLru::new(capacity, shards);
        for q in &queries {
            let direct = q.run(&h);
            let key = format!("prop@1:{}", q.canonical());
            let cached = match cache.get(&key) {
                Some(body) => Ok(body.to_string()),
                None => {
                    let r = q.run(&h);
                    if let Ok(body) = &r {
                        cache.insert(&key, Arc::new(body.clone()));
                    }
                    r
                }
            };
            prop_assert_eq!(direct, cached, "query {:?}", q);
        }
        let st = cache.stats();
        prop_assert!(st.bytes <= st.capacity_bytes, "{:?}", st);
    }

    /// The bucketed histogram's p99 (and other quantiles) bracket the
    /// exact sorted-vector order statistic within one bucket: the exact
    /// value lies in `[lo, hi]` from `quantile_bounds`, and the bucket's
    /// relative width is at most 50% of its lower bound — the error bar
    /// `/metrics` consumers inherit.
    #[test]
    fn bucketed_quantiles_bracket_exact_order_statistic(
        values in proptest::collection::vec(0u64..2_000_000, 1..400),
    ) {
        let h = HistSummary::from_values(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = h.quantile_bounds(q);
            prop_assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside bucket [{lo}, {hi}]"
            );
            // One-bucket bracket: relative width <= 50% of the lower
            // bound for values past the exact-bucket range.
            if lo >= 2 {
                prop_assert!((hi - lo) * 2 <= lo, "q={q}: bucket [{lo}, {hi}] too wide");
            }
            // The point estimate never exceeds the observed max.
            prop_assert!(h.quantile(q) <= h.max);
        }
    }
}
