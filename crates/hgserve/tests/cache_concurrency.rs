//! Sharded-cache behavior under concurrent access from scoped OS
//! threads (via `parcore::scoped_run`), plus cross-thread invariants
//! the per-shard unit tests cannot see.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hgserve::ShardedLru;

#[test]
fn concurrent_mixed_workload_keeps_invariants() {
    const THREADS: usize = 8;
    const OPS: usize = 2_000;
    // Small budget so eviction happens constantly under contention.
    let cache = ShardedLru::new(16 * 1024, THREADS);
    let gets = AtomicU64::new(0);

    parcore::scoped_run(THREADS, |t| {
        // Each thread works a rolling window of keys that overlaps its
        // neighbors', so threads race on shared keys, not disjoint sets.
        for j in 0..OPS {
            let key = format!("key-{}", (t * OPS / 2 + j) % 500);
            if j % 3 == 0 {
                cache.insert(&key, Arc::new(format!("value-of-{key}")));
            } else {
                gets.fetch_add(1, Ordering::Relaxed);
                if let Some(v) = cache.get(&key) {
                    // A hit must never observe another key's value.
                    assert_eq!(v.as_str(), &format!("value-of-{key}"), "corrupt read");
                }
            }
        }
    });

    let st = cache.stats();
    assert_eq!(
        st.hits + st.misses,
        gets.load(Ordering::Relaxed),
        "every get is exactly one hit or one miss: {st:?}"
    );
    assert!(st.bytes <= st.capacity_bytes, "over budget: {st:?}");
    assert!(st.hits > 0, "workload should produce some hits: {st:?}");
    assert!(st.evictions > 0, "tiny budget should evict: {st:?}");
}

#[test]
fn concurrent_inserts_of_same_key_settle_on_one_entry() {
    let cache = ShardedLru::new(1 << 20, 4);
    parcore::scoped_run(8, |t| {
        for _ in 0..500 {
            cache.insert("contended", Arc::new(format!("writer-{t}")));
        }
    });
    let st = cache.stats();
    assert_eq!(st.entries, 1, "{st:?}");
    let v = cache.get("contended").expect("present");
    assert!(v.starts_with("writer-"), "{v}");
    // Exactly one insertion counted: the other 3999 were replacements.
    assert_eq!(st.insertions, 1, "{st:?}");
}

#[test]
fn reads_scale_across_shards_without_poisoning() {
    let cache = ShardedLru::new(1 << 20, 8);
    for i in 0..256 {
        cache.insert(&format!("warm-{i}"), Arc::new("x".repeat(64)));
    }
    let results = parcore::scoped_run(8, |t| {
        let mut hits = 0u64;
        for j in 0..1_000 {
            if cache
                .get(&format!("warm-{}", (t * 131 + j) % 256))
                .is_some()
            {
                hits += 1;
            }
        }
        hits
    });
    // Capacity is ample: nothing was evicted, so every read hits.
    assert_eq!(results.iter().sum::<u64>(), 8_000);
    assert_eq!(cache.stats().entries, 256);
}
