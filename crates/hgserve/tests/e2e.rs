//! End-to-end acceptance test: boot the server on an ephemeral port,
//! drive it with the load generator's concurrent mixed workload, prove
//! the cache serves repeats without re-running the algorithms (via the
//! hgobs BFS work counter), exercise dataset upload, and shut down
//! gracefully with a request in flight.
//!
//! Everything lives in one `#[test]` because the hgobs registry and
//! its work counters are process-global: parallel test threads would
//! race the before/after counter comparisons.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hgserve::loadgen::{self, fetch_metric, Client, LoadgenConfig};
use hgserve::{parse_mix, Format, Registry, ServerConfig};
use hypergraph::io::write_hgr;

fn hgr_text(n: usize, m: usize, k: usize, seed: u64) -> String {
    write_hgr(&hypergen::uniform_random_hypergraph(n, m, k, seed))
}

#[test]
fn end_to_end_serve_loadgen_cache_and_drain() {
    let registry = Arc::new(Registry::new());
    registry
        .insert_text("gen", Format::Hgr, &hgr_text(300, 220, 5, 42), "e2e")
        .expect("preload gen");
    registry
        .insert_text("fresh", Format::Hgr, &hgr_text(800, 600, 5, 7), "e2e")
        .expect("preload fresh");

    let handle = hgserve::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            cache_bytes: 8 << 20,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    )
    .expect("server boots on an ephemeral port");
    let addr = handle.addr().to_string();

    let mut client = Client::new(&addr);
    let (status, body) = client.get("/healthz").expect("healthz reachable");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // Concurrent mixed workload: every response must be a correct 2xx.
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        dataset: "gen".to_string(),
        concurrency: 6,
        requests: 240,
        mix: parse_mix(
            "stats=4,degrees=2,components=2,kcore=2,kcore?k=2=1,powerlaw=2,diameter=1,cover=1",
        )
        .unwrap(),
        deadline_ms: None,
        idle_connections: 24,
    })
    .expect("loadgen runs");
    assert_eq!(report.sent, 240, "{}", report.render_text());
    assert_eq!(report.ok, 240, "{}", report.render_text());
    assert_eq!(report.http_errors, 0, "{}", report.render_text());
    assert_eq!(report.transport_errors, 0, "{}", report.render_text());
    // The idle fleet parks on the event loop for the whole run: every
    // socket connects and none get dropped while queries are answered.
    assert_eq!(report.idle_connected, 24, "{}", report.render_text());
    assert_eq!(report.idle_connect_errors, 0, "{}", report.render_text());
    assert_eq!(report.idle_resets, 0, "{}", report.render_text());
    assert!(
        report.cache_hits_delta.unwrap_or(0) > 0,
        "repeated queries must hit the cache: {}",
        report.render_text()
    );

    // Repeat-query speedup, proven by work counters: the first diameter
    // query on `fresh` runs the full BFS sweep; the second must be
    // answered from the cache without a single additional BFS source.
    let bfs_before = fetch_metric(&addr, "hg_bfs_sources_total").expect("bfs counter exported");
    let t0 = Instant::now();
    let (status, first) = client.get("/v1/fresh/diameter").expect("first diameter");
    let cold = t0.elapsed();
    assert_eq!(status, 200, "{first}");
    let bfs_mid = fetch_metric(&addr, "hg_bfs_sources_total").unwrap();
    assert!(
        bfs_mid >= bfs_before + 800,
        "cold query must sweep all 800 sources ({bfs_before} -> {bfs_mid})"
    );

    let t1 = Instant::now();
    let (status, second) = client.get("/v1/fresh/diameter").expect("second diameter");
    let warm = t1.elapsed();
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second, "cached body must be byte-identical");
    let bfs_after = fetch_metric(&addr, "hg_bfs_sources_total").unwrap();
    assert_eq!(
        bfs_mid, bfs_after,
        "cache hit must not re-run the BFS sweep"
    );
    assert!(
        warm < cold,
        "cached repeat should be measurably faster (cold {cold:?}, warm {warm:?})"
    );

    // Upload a dataset over HTTP, then query it; a replacement bumps the
    // epoch so stale cache entries can never be served.
    let (status, body) = client
        .post(
            "/datasets?name=uploaded&format=hgr",
            &hgr_text(40, 30, 4, 3),
        )
        .expect("upload");
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"epoch\":0"), "{body}");
    let (status, body) = client.get("/v1/uploaded/stats").expect("query upload");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"vertices\":40"), "{body}");

    // Malformed upload: structured parse error with the offending line.
    let (status, body) = client
        .post("/datasets?name=bad&format=hgr", "2 2\n1 2\n1 nope\n")
        .expect("bad upload answered");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("line 3"), "error should cite line 3: {body}");
    assert!(registry.get("bad").is_none(), "malformed dataset not kept");

    // Acceptance: a traced diameter on the paper's Cellzome-scale
    // dataset (sequential path: 1361 vertices sits under the parallel
    // threshold) embeds per-phase events whose summed durations account
    // for at least 90% of the request's recorded latency — `total_us`
    // in the block is byte-for-byte the `serve.latency_us` observation.
    let cellzome = proteome::cellzome::cellzome_like(proteome::cellzome::CELLZOME_SEED);
    registry
        .insert_text(
            "cellzome",
            Format::Hgr,
            &write_hgr(&cellzome.hypergraph),
            "e2e",
        )
        .expect("preload cellzome");
    let (status, traced) = client
        .get("/v1/cellzome/diameter?trace=1")
        .expect("traced diameter");
    assert_eq!(status, 200, "{traced}");
    let header_id = client
        .last_trace_id()
        .expect("every response carries X-Trace-Id")
        .to_string();
    let block = &traced[traced.find("\"trace\":").expect("trace block embedded")..];
    let trace = hgobs::trace::parse_trace(block).expect("trace block parses");
    assert_eq!(trace.id, header_id, "body id matches the response header");
    let total = trace.total_us.expect("trace carries total_us") as f64;
    let phase_sum: u64 = trace.events.iter().map(|e| e.end_us - e.start_us).sum();
    assert!(
        !trace.events.is_empty()
            && trace.events.iter().any(|e| e.phase == "msbfs.batch")
            && phase_sum as f64 >= 0.9 * total,
        "kernel phases must account for >=90% of the {total}us request: \
         sum {phase_sum}us over {} events: {traced}",
        trace.events.len()
    );

    // The traced request is retained by the slow-query log under the
    // same id, and the endpoint answers well-formed JSON.
    let (status, slowlog) = client.get("/debug/slowlog").expect("slowlog");
    assert_eq!(status, 200, "{slowlog}");
    assert!(slowlog.contains("\"schema\":\"hg-slowlog/1\""), "{slowlog}");
    assert!(
        slowlog.contains(&header_id),
        "slowlog should retain trace {header_id}: {slowlog}"
    );

    // Graceful shutdown with a request in flight: the uncached diameter
    // on `gen2` is dispatched, then shutdown starts; the worker must
    // finish and deliver the complete response before draining.
    registry
        .insert_text("gen2", Format::Hgr, &hgr_text(800, 600, 5, 99), "e2e")
        .expect("preload gen2");
    let inflight = std::thread::spawn({
        let addr = addr.clone();
        move || Client::new(&addr).get("/v1/gen2/diameter")
    });
    std::thread::sleep(Duration::from_millis(20));
    let t2 = Instant::now();
    handle.shutdown();
    assert!(
        t2.elapsed() < Duration::from_secs(10),
        "drain must not hang on idle keep-alive connections"
    );
    let (status, body) = inflight
        .join()
        .expect("in-flight thread")
        .expect("in-flight request completes during drain");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"diameter\""), "complete body: {body}");

    // The listener is gone: new requests fail.
    assert!(
        Client::new(&addr).get("/healthz").is_err(),
        "server should refuse connections after shutdown"
    );
}
