//! Robustness acceptance tests: deadline-bounded queries answer 504
//! promptly, a saturated server sheds with 503 + `Retry-After`, and a
//! deadline-carrying loadgen run never observes a latency far past its
//! budget.
//!
//! Kept separate from `e2e.rs` on purpose: that test asserts *exact*
//! process-global hgobs counter deltas, which the extra traffic here
//! would break. Everything asserted below is per-server (`AppState`)
//! state or observed client-side, so the tests in this file can share
//! one process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hgserve::loadgen::{self, Client, LoadgenConfig};
use hgserve::{parse_mix, Format, Registry, ServerConfig, ServerHandle};
use hypergraph::io::write_hgr;

/// Debug builds run the kernels ~10-30x slower; scale the latency
/// bounds so the assertions stay meaningful in release without being
/// flaky under `cargo test` defaults.
fn scale_ms(release_ms: u64) -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(release_ms * 10)
    } else {
        Duration::from_millis(release_ms)
    }
}

fn boot(config: ServerConfig, vertices: usize, edges: usize, seed: u64) -> (ServerHandle, String) {
    let registry = Arc::new(Registry::new());
    let text = write_hgr(&hypergen::uniform_random_hypergraph(
        vertices, edges, 5, seed,
    ));
    registry
        .insert_text("big", Format::Hgr, &text, "robustness")
        .expect("preload dataset");
    let handle = hgserve::start(&config, registry).expect("server boots");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn tight_deadline_answers_504_promptly() {
    let (handle, addr) = boot(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        },
        6_000,
        4_800,
        17,
    );

    let mut client = Client::new(&addr).with_deadline_ms(Some(1));
    let t0 = Instant::now();
    let (status, body) = client.get("/v1/big/diameter").expect("answered");
    let elapsed = t0.elapsed();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline exceeded"), "{body}");
    // The cooperative checks fire within one CHECK_INTERVAL of vertex
    // pops, so the answer should arrive within ~deadline + scheduling
    // slack — not after the full multi-second sweep.
    assert!(
        elapsed < scale_ms(250),
        "504 should be prompt, took {elapsed:?}"
    );
    assert_eq!(handle.state().deadline_exceeded_total(), 1);

    // A 504 must never be cached: without the header the same query
    // completes (unbounded) and answers 200.
    let mut unbounded = Client::new(&addr);
    let (status, body) = unbounded.get("/v1/big/diameter").expect("answered");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"diameter\""), "{body}");

    handle.shutdown();
}

#[test]
fn saturated_server_sheds_with_503_and_retry_after() {
    // One worker, one queue slot. Idle connections are free under the
    // event loop, so saturation needs real in-flight compute: requests
    // A and B are slow uncacheable diameter sweeps (`?trace=1` bypasses
    // the result cache) that pin the worker and fill the queue slot;
    // request C then has nowhere to go and must be shed by the event
    // loop without waiting on either.
    let (handle, addr) = boot(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
        12_000,
        9_600,
        5,
    );

    let slow_request =
        |path: &str| format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    let mut conn_a = TcpStream::connect(&addr).expect("conn A");
    conn_a
        .write_all(slow_request("/v1/big/diameter?trace=1").as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut conn_b = TcpStream::connect(&addr).expect("conn B");
    conn_b
        .write_all(slow_request("/v1/big/diameter?trace=1&pad=b").as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // Conn C must be rejected immediately with 503 + Retry-After.
    let mut conn_c = TcpStream::connect(&addr).expect("conn C");
    conn_c
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn_c
        .write_all(b"GET /v1/big/stats HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let t0 = Instant::now();
    let mut raw = String::new();
    conn_c.read_to_string(&mut raw).expect("read 503");
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("\r\nRetry-After: 1\r\n"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    // The shed happens in the event loop while the worker is busy: it
    // must not wait for the multi-hundred-ms sweeps to finish.
    assert!(
        t0.elapsed() < scale_ms(150),
        "503 should be immediate, took {:?}",
        t0.elapsed()
    );

    assert!(
        handle.state().shed_total() >= 1,
        "shed counter must record the rejection"
    );

    // A and B were admitted and eventually answer 200 in full.
    for (label, conn) in [("A", &mut conn_a), ("B", &mut conn_b)] {
        conn.set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw)
            .unwrap_or_else(|e| panic!("read response {label}: {e}"));
        assert!(raw.starts_with("HTTP/1.1 200 "), "{label}: {raw}");
        assert!(raw.contains("\"diameter\""), "{label}: {raw}");
    }

    handle.shutdown();
}

#[test]
fn idle_keepalive_connections_do_not_pin_workers() {
    // With the old thread-per-connection design, 50 parked keep-alive
    // connections starved a single-worker server. The event loop holds
    // them for free: a live query must still answer promptly.
    let (handle, addr) = boot(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
        200,
        160,
        7,
    );

    let idle: Vec<TcpStream> = (0..50)
        .map(|i| TcpStream::connect(&addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut client = Client::new(&addr);
    let t0 = Instant::now();
    let (status, body) = client.get("/v1/big/stats").expect("served among idles");
    assert_eq!(status, 200, "{body}");
    assert!(
        t0.elapsed() < scale_ms(500),
        "query stuck behind idle connections: {:?}",
        t0.elapsed()
    );

    let [idle_gauge, _, _, _] = handle.state().open_connections();
    assert!(
        idle_gauge >= 50,
        "open-connection gauge should count the parked fleet, saw {idle_gauge}"
    );
    assert!(handle.state().accept_total() >= 51);

    drop(idle);
    handle.shutdown();
}

#[test]
fn trickling_header_answers_408_and_closes() {
    // Slow-loris: a request head that stalls past --header-timeout-ms
    // gets 408 from the event loop's timer, not a pinned worker.
    let (handle, addr) = boot(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            header_timeout_ms: 300,
            ..ServerConfig::default()
        },
        200,
        160,
        9,
    );

    let mut conn = TcpStream::connect(&addr).expect("conn");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"GET /v1/big/stats HTT").unwrap(); // head never completes
    let t0 = Instant::now();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 408");
    let elapsed = t0.elapsed();
    assert!(raw.starts_with("HTTP/1.1 408 "), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    assert!(
        elapsed >= Duration::from_millis(250),
        "408 must not fire before the timeout, took {elapsed:?}"
    );
    assert!(
        elapsed < scale_ms(2_000),
        "408 should fire promptly after the timeout, took {elapsed:?}"
    );

    // The connection is gone; the server still serves new clients.
    let mut client = Client::new(&addr);
    let (status, _) = client.get("/healthz").expect("alive after 408");
    assert_eq!(status, 200);

    handle.shutdown();
}

#[test]
fn loadgen_with_deadline_never_blows_the_budget() {
    let (handle, addr) = boot(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            ..ServerConfig::default()
        },
        12_000,
        9_600,
        23,
    );

    let deadline_ms = 5u64;
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        dataset: "big".to_string(),
        concurrency: 3,
        requests: 12,
        mix: parse_mix("diameter=1").unwrap(),
        deadline_ms: Some(deadline_ms),
        idle_connections: 0,
    })
    .expect("loadgen runs");

    assert_eq!(report.sent, 12, "{}", report.render_text());
    assert_eq!(report.transport_errors, 0, "{}", report.render_text());
    // A 12k-vertex full diameter sweep cannot finish in 5ms, and 504s
    // are never cached, so every request must report the deadline.
    assert_eq!(
        report.deadline_exceeded,
        report.sent,
        "{}",
        report.render_text()
    );
    // No request may overshoot its budget by more than scheduling and
    // check-interval slack.
    let max = Duration::from_micros(report.latencies_us.last().copied().unwrap_or(0));
    let bound = Duration::from_millis(deadline_ms) + scale_ms(200);
    assert!(
        max <= bound,
        "worst latency {max:?} exceeds deadline+slack {bound:?}\n{}",
        report.render_text()
    );
    // The JSON report carries the robustness counters for ci.sh.
    let json = report.render_json();
    assert!(json.contains("\"deadline_exceeded\":12"), "{json}");

    handle.shutdown();
}
