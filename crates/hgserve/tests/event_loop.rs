//! Event-loop I/O acceptance tests: the nonblocking connection engine
//! must answer fragmented, pipelined, oversized, and truncated input
//! exactly like the blocking reader used to — the incremental parser
//! is equivalence-tested against `read_request` in unit tests; here the
//! same cases run against a live server over real sockets.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hgserve::{Format, Registry, ServerConfig, ServerHandle};
use hypergraph::HypergraphBuilder;

fn boot() -> (ServerHandle, String) {
    let registry = Arc::new(Registry::new());
    let mut b = HypergraphBuilder::new(4);
    b.add_edge([0, 1]);
    b.add_edge([1, 2]);
    b.add_edge([2, 3]);
    let text = hypergraph::io::write_hgr(&b.build());
    registry
        .insert_text("toy", Format::Hgr, &text, "event-loop test")
        .expect("preload dataset");
    let handle = hgserve::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("server boots");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn connect(addr: &str) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    conn
}

/// Read exactly one `Content-Length`-framed response off the stream.
/// Bytes past the frame (the next pipelined response) stay in `carry`
/// for the following call.
fn read_response_carry(conn: &mut TcpStream, carry: &mut Vec<u8>) -> String {
    let mut raw = std::mem::take(carry);
    let mut buf = [0u8; 4096];
    loop {
        // Head complete?
        if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("framed response")
                .trim()
                .parse()
                .expect("numeric content length");
            let body_have = raw.len() - (head_end + 4);
            if body_have >= content_length {
                let frame_end = head_end + 4 + content_length;
                *carry = raw.split_off(frame_end);
                return String::from_utf8_lossy(&raw).to_string();
            }
        }
        let n = conn.read(&mut buf).expect("read response bytes");
        assert!(n > 0, "connection closed mid-response: {raw:?}");
        raw.extend_from_slice(&buf[..n]);
    }
}

fn read_response(conn: &mut TcpStream) -> String {
    read_response_carry(conn, &mut Vec::new())
}

#[test]
fn byte_at_a_time_request_parses_and_answers_200() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    let request = b"GET /v1/toy/stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    for &byte in request.iter() {
        conn.write_all(&[byte]).expect("write one byte");
        conn.flush().unwrap();
    }
    let raw = read_response(&mut conn);
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");
    assert!(raw.contains("\"vertices\":4"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    handle.shutdown();
}

#[test]
fn fragmented_post_body_is_reassembled() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    let head = b"POST /datasets?name=frag HTTP/1.1\r\nHost: x\r\nContent-Length: 8\r\n\r\n";
    let body = b"1 2\n1 2\n";
    conn.write_all(head).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    conn.write_all(&body[..3]).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    conn.write_all(&body[3..]).unwrap();
    let raw = read_response(&mut conn);
    assert!(raw.starts_with("HTTP/1.1 201 "), "{raw}");
    assert!(raw.contains("\"name\":\"frag\""), "{raw}");
    handle.shutdown();
}

#[test]
fn two_pipelined_requests_in_one_write_answer_in_order() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    conn.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
          GET /v1/toy/stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut carry = Vec::new();
    let first = read_response_carry(&mut conn, &mut carry);
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert!(first.contains("Connection: keep-alive"), "{first}");
    let second = read_response_carry(&mut conn, &mut carry);
    assert!(carry.is_empty(), "bytes past second response: {carry:?}");
    assert!(second.contains("\"vertices\":4"), "{second}");
    assert!(second.contains("Connection: close"), "{second}");
    // The server closes after the second response (Connection: close).
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
    handle.shutdown();
}

#[test]
fn oversized_headers_answer_431_and_close() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    conn.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Pad: {}\r\n", "y".repeat(120));
    // Never send the terminating blank line: the parser must reject on
    // size alone once the head can no longer fit.
    for _ in 0..200 {
        if conn.write_all(filler.as_bytes()).is_err() {
            break; // server already rejected and closed
        }
    }
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 431");
    assert!(raw.starts_with("HTTP/1.1 431 "), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    handle.shutdown();
}

#[test]
fn mid_request_fin_answers_400() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    conn.write_all(b"GET /v1/toy/stats HTT").unwrap();
    conn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 400");
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("truncated request"), "{raw}");
    handle.shutdown();
}

#[test]
fn clean_fin_on_idle_connection_just_closes() {
    let (handle, addr) = boot();
    let mut conn = connect(&addr);
    // One complete exchange, then a clean client close with no partial
    // request buffered: the server must close without an error reply.
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let first = read_response(&mut conn);
    assert!(first.starts_with("HTTP/1.1 200 "), "{first}");
    conn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "unexpected bytes after FIN: {rest:?}");
    handle.shutdown();
}
