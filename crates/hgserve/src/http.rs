//! Minimal hand-rolled HTTP/1.1 request/response handling.
//!
//! Supports exactly what the analytics server and its load generator
//! need: `GET`/`POST` with headers, `Content-Length` bodies, query
//! strings with percent-decoding, and keep-alive. No chunked encoding,
//! no TLS, no HTTP/2 — requests that need those get a clean 4xx/5xx
//! instead of undefined behavior.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path without the query string, e.g. `/v1/yeast/stats`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// No bytes arrived before the socket read timeout; the connection
    /// is idle between keep-alive requests. Not an error condition —
    /// the server uses it to poll its shutdown flag.
    Idle,
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// Malformed or oversized input; carries the status to answer with.
    Bad { status: u16, message: String },
    /// Underlying transport failure; the connection is unusable.
    Io(String),
}

impl HttpError {
    fn bad(status: u16, message: impl Into<String>) -> Self {
        HttpError::Bad {
            status,
            message: message.into(),
        }
    }
}

/// Decode `%XX` escapes and `+` (as space) in a URL component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push(h << 4 | l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a request target into (decoded path, decoded query pairs).
pub fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Outcome of parsing one request out of a connection's accumulated
/// read buffer ([`parse_request_bytes`]).
#[derive(Clone, Debug)]
pub enum ParseOutcome {
    /// A complete request, plus the number of buffer bytes it consumed
    /// (head and body); the caller advances its buffer by that much.
    Complete(Request, usize),
    /// Only a prefix has arrived; read more bytes and parse again.
    Partial,
    /// Malformed or oversized input; answer `status` and close.
    Error { status: u16, message: String },
}

/// Parse one request from the front of `buf` without consuming input —
/// the nonblocking twin of [`read_request`], sharing its grammar and
/// status mapping (400 malformed, 431 oversized head, 413 oversized
/// body, 505 bad version). The buffer may hold a partial request
/// ([`ParseOutcome::Partial`]) or several pipelined ones: callers loop,
/// advancing by the consumed count of each [`ParseOutcome::Complete`].
pub fn parse_request_bytes(buf: &[u8], max_body: usize) -> ParseOutcome {
    let bad = |status: u16, message: String| ParseOutcome::Error { status, message };
    let mut pos = 0usize;
    let mut request_line: Option<(String, String)> = None; // (method, target)
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut head_complete = false;
    while let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') {
        let line_end = pos + nl;
        let mut line = &buf[pos..line_end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        pos = line_end + 1;
        let text = String::from_utf8_lossy(line);
        if request_line.is_none() {
            // Validate the request line eagerly, in the same order as
            // the blocking reader (505 beats any later header error).
            let mut parts = text.split_whitespace();
            let Some(method) = parts.next() else {
                return bad(400, "empty request line".to_string());
            };
            let Some(target) = parts.next() else {
                return bad(400, "missing request target".to_string());
            };
            let version = parts.next().unwrap_or("HTTP/1.1");
            if !version.starts_with("HTTP/1.") {
                return bad(505, format!("unsupported {version}"));
            }
            request_line = Some((method.to_string(), target.to_string()));
            continue;
        }
        if line.is_empty() {
            head_complete = true;
            break;
        }
        if pos > MAX_HEAD_BYTES {
            return bad(431, "headers too large".to_string());
        }
        let Some((name, value)) = text.split_once(':') else {
            return bad(400, format!("malformed header `{text}`"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if !head_complete {
        // No blank line yet: either keep reading or reject a head that
        // can no longer fit under the cap.
        if buf.len() > MAX_HEAD_BYTES {
            return bad(431, "headers too large".to_string());
        }
        return ParseOutcome::Partial;
    }
    let (method, target) = request_line.expect("head_complete implies a request line");

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => match v.parse() {
            Ok(n) => n,
            Err(_) => return bad(400, format!("bad content-length `{v}`")),
        },
        None => 0,
    };
    if content_length > max_body {
        return bad(
            413,
            format!("body of {content_length} bytes exceeds limit {max_body}"),
        );
    }
    if buf.len() < pos + content_length {
        return ParseOutcome::Partial;
    }
    let body = buf[pos..pos + content_length].to_vec();
    let (path, query) = split_target(&target);
    ParseOutcome::Complete(
        Request {
            method,
            path,
            query,
            headers,
            body,
        },
        pos + content_length,
    )
}

/// Read one request from `reader`.
///
/// Distinguishes a clean close ([`HttpError::Eof`]), an idle timeout
/// with no bytes read ([`HttpError::Idle`]), malformed input
/// ([`HttpError::Bad`]), and transport errors ([`HttpError::Io`]).
///
/// `head_timeout` bounds the wall-clock time between the first byte of
/// the request head and its final blank line (slow-loris protection):
/// a peer that trickles bytes slower than that gets a 408. The clock
/// only starts once at least one byte has arrived — a connection idle
/// *between* requests still surfaces as [`HttpError::Idle`] forever.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
    head_timeout: Duration,
) -> Result<Request, HttpError> {
    let mut head_started: Option<Instant> = None;
    let mut line = String::new();
    match read_line_crlf(reader, &mut line, true, &mut head_started, head_timeout) {
        Ok(0) => return Err(HttpError::Eof),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    head_started.get_or_insert_with(Instant::now);
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad(400, "missing request target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(505, format!("unsupported {version}")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        match read_line_crlf(reader, &mut h, false, &mut head_started, head_timeout) {
            Ok(0) => return Err(HttpError::bad(400, "truncated headers")),
            Ok(n) => head_bytes += n,
            Err(e) => return Err(e),
        }
        if h.is_empty() {
            break;
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::bad(431, "headers too large"));
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| HttpError::bad(400, format!("malformed header `{h}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| HttpError::bad(400, format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::bad(
            413,
            format!("body of {content_length} bytes exceeds limit {max_body}"),
        ));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| HttpError::Io(format!("reading body: {e}")))?;
    }

    let (path, query) = split_target(&target);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read one `\r\n`- (or `\n`-) terminated line into `buf`, stripped.
/// Returns the number of raw bytes consumed; 0 means EOF before any
/// byte. `first_line` maps a timeout with *no head bytes at all* to
/// [`HttpError::Idle`]; once any byte has arrived, `head_started` is
/// stamped and further stalls are judged against `head_timeout`.
fn read_line_crlf(
    reader: &mut impl BufRead,
    buf: &mut String,
    first_line: bool,
    head_started: &mut Option<Instant>,
    head_timeout: Duration,
) -> Result<usize, HttpError> {
    let mut raw = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(0);
                }
                return Err(HttpError::bad(400, "truncated line"));
            }
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    break;
                }
                // Partial line: the head has begun; start its clock.
                head_started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if first_line && raw.is_empty() && head_started.is_none() {
                    return Err(HttpError::Idle);
                }
                // Mid-request stall: keep waiting, but only up to the
                // head timeout — a trickling peer must not pin a worker.
                let started = head_started.get_or_insert_with(Instant::now);
                if started.elapsed() >= head_timeout {
                    return Err(HttpError::bad(408, "request header read timed out"));
                }
                continue;
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    let n = raw.len();
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *buf = String::from_utf8_lossy(&raw).into_owned();
    Ok(n)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// One response, written with `Content-Length` framing.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// When set, emitted as a `Retry-After: <seconds>` header — used by
    /// the 503 shed path so well-behaved clients back off.
    pub retry_after: Option<u32>,
    /// Additional response headers, e.g. `X-Trace-Id`. Names must be
    /// valid header tokens; values must not contain CR/LF.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// Attach a `Retry-After: <seconds>` header.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Attach an arbitrary response header (e.g. `X-Trace-Id`).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        body.push_str(&hgobs::json::quote(message));
        body.push_str("}\n");
        Response::json(status, body)
    }

    /// Render the status line and header block (through the final blank
    /// line). One source of truth for both the blocking [`write_to`]
    /// path and the event loop's [`to_bytes`] chunks.
    ///
    /// [`write_to`]: Response::write_to
    /// [`to_bytes`]: Response::to_bytes
    fn head_string(&self, close: bool) -> String {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(128);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        if let Some(seconds) = self.retry_after {
            let _ = write!(head, "Retry-After: {seconds}\r\n");
        }
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        head
    }

    /// Serialize onto `w`. `close` controls the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> std::io::Result<()> {
        w.write_all(self.head_string(close).as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }

    /// Serialize into `(head, body)` byte chunks for the event loop's
    /// vectored nonblocking writeout.
    pub fn to_bytes(&self, close: bool) -> (Vec<u8>, Vec<u8>) {
        (
            self.head_string(close).into_bytes(),
            self.body.clone().into_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(
            &mut BufReader::new(raw.as_bytes()),
            1024,
            Duration::from_secs(5),
        )
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/yeast/kcore?k=3&x=a%20b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/yeast/kcore");
        assert_eq!(r.param("k"), Some("3"));
        assert_eq!(r.param("x"), Some("a b"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r =
            parse("POST /datasets?name=t HTTP/1.1\r\nContent-Length: 7\r\n\r\n2 2\n1 2").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(std::str::from_utf8(&r.body).unwrap(), "2 2\n1 2");
    }

    #[test]
    fn connection_close_detected_case_insensitively() {
        let r = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(r.wants_close());
    }

    #[test]
    fn eof_and_errors() {
        assert_eq!(parse("").unwrap_err(), HttpError::Eof);
        assert!(matches!(
            parse("GET\r\n\r\n").unwrap_err(),
            HttpError::Bad { status: 400, .. }
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n").unwrap_err(),
            HttpError::Bad { status: 505, .. }
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbogus\r\n\r\n").unwrap_err(),
            HttpError::Bad { status: 400, .. }
        ));
    }

    #[test]
    fn oversized_body_is_413() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Bad { status: 413, .. }));
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let r = parse("GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c%zz"), "a/b c%zz");
        let (path, q) = split_target("/x%20y?a=1&b&c=2");
        assert_eq!(path, "/x y");
        assert_eq!(
            q,
            vec![
                ("a".into(), "1".into()),
                ("b".into(), String::new()),
                ("c".into(), "2".into())
            ]
        );
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(!s.contains("Retry-After"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn retry_after_header_emitted_before_body() {
        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_retry_after(2)
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        let (head, body) = s.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("\r\nRetry-After: 2"), "{head}");
        assert!(body.contains("overloaded"), "{body}");
    }

    #[test]
    fn extra_headers_emitted_before_body() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .with_header("X-Trace-Id", "00000000deadbeef".into())
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        let (head, _) = s.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("\r\nX-Trace-Id: 00000000deadbeef"), "{head}");
    }

    #[test]
    fn new_status_reasons() {
        assert_eq!(status_reason(408), "Request Timeout");
        assert_eq!(status_reason(504), "Gateway Timeout");
    }

    /// Oracle check: the incremental parser must classify `raw` exactly
    /// like the blocking whole-stream reader does.
    fn assert_matches_oracle(raw: &str) {
        let oracle = parse(raw);
        match parse_request_bytes(raw.as_bytes(), 1024) {
            ParseOutcome::Complete(req, consumed) => {
                let expect = oracle.expect("oracle parsed");
                assert_eq!(req.method, expect.method, "{raw:?}");
                assert_eq!(req.path, expect.path, "{raw:?}");
                assert_eq!(req.query, expect.query, "{raw:?}");
                assert_eq!(req.headers, expect.headers, "{raw:?}");
                assert_eq!(req.body, expect.body, "{raw:?}");
                assert!(consumed <= raw.len(), "{raw:?}");
            }
            ParseOutcome::Error { status, .. } => {
                let err = oracle.expect_err("oracle rejected");
                match err {
                    HttpError::Bad { status: s, .. } => assert_eq!(status, s, "{raw:?}"),
                    other => panic!("oracle gave {other:?} for {raw:?}"),
                }
            }
            ParseOutcome::Partial => panic!("complete input parsed as partial: {raw:?}"),
        }
    }

    #[test]
    fn incremental_parser_agrees_with_blocking_reader() {
        for raw in [
            "GET /v1/yeast/kcore?k=3&x=a%20b HTTP/1.1\r\nHost: x\r\n\r\n",
            "POST /datasets?name=t HTTP/1.1\r\nContent-Length: 7\r\n\r\n2 2\n1 2",
            "GET / HTTP/1.1\r\nConnection: Close\r\n\r\n",
            "GET /healthz HTTP/1.1\nHost: y\n\n",
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/2\r\nbogus\r\n\r\n",
            "GET / HTTP/1.1\r\nbogus\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: frogs\r\n\r\n",
        ] {
            assert_matches_oracle(raw);
        }
    }

    #[test]
    fn incremental_parser_every_byte_prefix_is_partial() {
        // Byte-at-a-time delivery: every strict prefix must come back
        // Partial (never a premature Complete or spurious Error), and
        // the full buffer must parse to the same request as the oracle.
        let raw = "POST /datasets?name=t HTTP/1.1\r\nContent-Length: 7\r\n\r\n2 2\n1 2";
        for cut in 0..raw.len() {
            match parse_request_bytes(&raw.as_bytes()[..cut], 1024) {
                ParseOutcome::Partial => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
        assert_matches_oracle(raw);
    }

    #[test]
    fn incremental_parser_consumes_pipelined_requests_in_order() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseOutcome::Complete(first, used) = parse_request_bytes(raw.as_bytes(), 1024) else {
            panic!("first request did not parse");
        };
        assert_eq!(first.path, "/healthz");
        let ParseOutcome::Complete(second, used2) =
            parse_request_bytes(&raw.as_bytes()[used..], 1024)
        else {
            panic!("second request did not parse");
        };
        assert_eq!(second.path, "/metrics");
        assert!(second.wants_close());
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn incremental_parser_rejects_oversized_head_with_431() {
        // A header block that can no longer fit under MAX_HEAD_BYTES is
        // rejected even before the terminating blank line arrives, so a
        // slow-loris peer cannot grow the buffer without bound.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        while raw.len() <= MAX_HEAD_BYTES {
            raw.push_str("X-Pad: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
        }
        match parse_request_bytes(raw.as_bytes(), 1024) {
            ParseOutcome::Error { status: 431, .. } => {}
            other => panic!("unterminated oversized head gave {other:?}"),
        }
        raw.push_str("\r\n");
        match parse_request_bytes(raw.as_bytes(), 1024) {
            ParseOutcome::Error { status: 431, .. } => {}
            other => panic!("terminated oversized head gave {other:?}"),
        }
        // The blocking reader agrees on the status.
        assert!(matches!(
            parse(&raw).unwrap_err(),
            HttpError::Bad { status: 431, .. }
        ));
    }

    #[test]
    fn response_to_bytes_matches_write_to() {
        for close in [true, false] {
            let resp = Response::json(200, "{\"ok\":true}\n".into())
                .with_retry_after(1)
                .with_header("X-Trace-Id", "0011223344556677".into());
            let mut blocking = Vec::new();
            resp.write_to(&mut blocking, close).unwrap();
            let (head, body) = resp.to_bytes(close);
            let mut chunked = head;
            chunked.extend_from_slice(&body);
            assert_eq!(chunked, blocking);
        }
    }
}
