//! The analytics daemon: acceptor thread → fixed worker pool →
//! registry lookup → result cache → algorithms.
//!
//! ```text
//!            ┌──────────┐   mpsc    ┌─────────┐
//!  accept ──▶│ acceptor │──────────▶│ worker 0│──┐
//!            │ (1 thread│   queue   │   …     │  │   ┌──────────┐
//!            │ nonblock)│──────────▶│ worker N│──┼──▶│ registry │
//!            └──────────┘           └─────────┘  │   ├──────────┤
//!                 ▲ shutdown flag (AtomicBool)   └──▶│ LRU cache│
//!                 └── SIGINT / POST /admin/shutdown  └──────────┘
//! ```
//!
//! Graceful shutdown: the flag stops the acceptor, the closed channel
//! drains the workers, and each worker finishes its in-flight request
//! (answering `Connection: close`) before exiting. `ServerHandle::
//! shutdown` joins everything, so when it returns no request is lost.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hgobs::trace::trace_id;
use hgobs::{Deadline, TraceCtx};

use crate::cache::ShardedLru;
use crate::http::{read_request, HttpError, Request, Response};
use crate::query::{ExecOpts, Query};
use crate::registry::{Format, Registry};
use crate::slowlog::{unix_ms_now, SlowLog, SlowLogEntry};

/// Server tunables, all CLI-exposed.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Result-cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Largest accepted `POST /datasets` body.
    pub max_body_bytes: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// starts shedding with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Default per-request compute budget in milliseconds; `0` disables
    /// the default (requests without `X-Deadline-Ms` run unbounded).
    pub deadline_ms: u64,
    /// Upper cap applied to client-requested `X-Deadline-Ms` values;
    /// `0` means uncapped.
    pub max_deadline_ms: u64,
    /// Wall-clock budget for reading one request head (slow-loris
    /// protection); exceeded → `408`.
    pub header_timeout_ms: u64,
    /// Datasets with at least this many vertices route their heavy
    /// queries (diameter, kcore) through the `parcore` kernels.
    pub par_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_bytes: 64 << 20,
            max_body_bytes: 64 << 20,
            queue_depth: 64,
            deadline_ms: 0,
            max_deadline_ms: 60_000,
            header_timeout_ms: 5_000,
            par_threshold: 4_096,
        }
    }
}

/// State shared by every worker.
pub struct AppState {
    pub registry: Arc<Registry>,
    pub cache: ShardedLru,
    /// Retained traces of the slowest and most recent requests,
    /// served at `GET /debug/slowlog`.
    pub slowlog: SlowLog,
    pub started: Instant,
    /// Sequence number feeding each request's deterministic trace id.
    trace_seq: AtomicU64,
    shutdown: AtomicBool,
    max_body_bytes: usize,
    /// Connections rejected with 503 because the accept queue was full.
    shed: AtomicU64,
    /// Requests answered 504 because their deadline fired mid-compute.
    deadline_hits: AtomicU64,
    /// Connections currently sitting in the accept queue.
    queued: AtomicU64,
    queue_capacity: usize,
    deadline_ms: u64,
    max_deadline_ms: u64,
    header_timeout: Duration,
    par_threshold: usize,
}

impl AppState {
    fn from_config(config: &ServerConfig, registry: Arc<Registry>) -> AppState {
        AppState {
            registry,
            cache: ShardedLru::new(config.cache_bytes, config.threads.max(1) * 2),
            slowlog: SlowLog::new(),
            started: Instant::now(),
            trace_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
            shed: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            queue_capacity: config.queue_depth.max(1),
            deadline_ms: config.deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
            header_timeout: Duration::from_millis(config.header_timeout_ms.max(1)),
            par_threshold: config.par_threshold,
        }
    }

    /// Connections shed with 503 so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests that answered 504 so far.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_hits.load(Ordering::Relaxed)
    }

    /// The [`Deadline`] governing one request: an explicit
    /// `X-Deadline-Ms` header (clamped to the server cap) wins over the
    /// server-wide default; `0` (or no header and no default) means
    /// unlimited. Unparseable header values are ignored.
    pub fn request_deadline(&self, req: &Request) -> Deadline {
        let requested = req
            .header("x-deadline-ms")
            .and_then(|v| v.trim().parse::<u64>().ok());
        let ms = match requested {
            Some(ms) if self.max_deadline_ms > 0 => ms.min(self.max_deadline_ms),
            Some(ms) => ms,
            None => self.deadline_ms,
        };
        if ms == 0 {
            Deadline::none()
        } else {
            Deadline::after_ms(ms)
        }
    }

    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Request a graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// One-line lifetime summary for shutdown logs.
    pub fn state_line(&self) -> String {
        let requests = hgobs::snapshot_report()
            .counters
            .get("serve.requests")
            .copied()
            .unwrap_or(0);
        let cs = self.cache.stats();
        format!(
            "{requests} requests, cache {} hits / {} misses / {} evictions",
            cs.hits, cs.misses, cs.evictions
        )
    }
}

/// A running server; dropping it without `shutdown()` detaches threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Signal shutdown, drain connections, and join every thread.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until something (SIGINT handler, `/admin/shutdown`) requests
    /// shutdown, then drain and join.
    pub fn wait(self) {
        while !self.state.shutting_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

/// How long a worker blocks on an idle keep-alive socket before
/// re-checking the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Bind and start the server. Enables the hgobs sink — the server's
/// `/metrics` endpoint is cumulative over the process lifetime.
pub fn start(config: &ServerConfig, registry: Arc<Registry>) -> std::io::Result<ServerHandle> {
    hgobs::enable();
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let state = Arc::new(AppState::from_config(config, registry));

    // A *bounded* queue is the admission-control valve: when every
    // worker is busy and `queue_depth` connections are already waiting,
    // the acceptor sheds new arrivals immediately instead of letting
    // latency grow without bound.
    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
        std::sync::mpsc::sync_channel(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<_> = (0..config.threads.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("hgserve-worker-{i}"))
                .spawn(move || loop {
                    let conn = rx.lock().unwrap().recv();
                    match conn {
                        Ok(stream) => {
                            state.queued.fetch_sub(1, Ordering::Relaxed);
                            handle_connection(&state, stream);
                        }
                        Err(_) => break, // acceptor gone: drained
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("hgserve-acceptor".to_string())
            .spawn(move || {
                while !state.shutting_down() {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            hgobs::counter!("serve.connections");
                            state.queued.fetch_add(1, Ordering::Relaxed);
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(stream)) => {
                                    state.queued.fetch_sub(1, Ordering::Relaxed);
                                    shed_connection(&state, stream);
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                // Dropping `tx` here closes the queue; workers finish
                // whatever is already queued, then exit.
            })
            .expect("spawn acceptor")
    };

    hgobs::log::info(|| format!("hgserve listening on {addr}"));
    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Reject one connection with `503 Service Unavailable` + `Retry-After`.
///
/// Runs on a short-lived helper thread, not the acceptor: the helper
/// first reads (and discards) the request head so the peer's bytes are
/// consumed before we close — closing with unread data queued makes the
/// kernel send RST, which would destroy the 503 before the client reads
/// it. The helper count is bounded; past the cap a flood of connections
/// is simply dropped (they were being shed anyway).
fn shed_connection(state: &AppState, stream: TcpStream) {
    let shed_total = state.shed.fetch_add(1, Ordering::Relaxed) + 1;
    hgobs::counter!("serve.shed");
    hgobs::log::warn(|| {
        format!("shedding connection with 503: accept queue full ({shed_total} shed so far)")
    });
    static SHEDDERS: AtomicU64 = AtomicU64::new(0);
    const MAX_SHEDDERS: u64 = 64;
    if SHEDDERS.fetch_add(1, Ordering::Relaxed) >= MAX_SHEDDERS {
        SHEDDERS.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let spawned = std::thread::Builder::new()
        .name("hgserve-shed".to_string())
        .spawn(move || {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut head = [0u8; 1024];
            let _ = std::io::Read::read(&mut &stream, &mut head);
            let mut writer = BufWriter::new(&stream);
            let _ = Response::error(503, "server overloaded; queue full")
                .with_retry_after(1)
                .write_to(&mut writer, true);
            drop(writer);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            SHEDDERS.fetch_sub(1, Ordering::Relaxed);
        });
    if spawned.is_err() {
        SHEDDERS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serve one connection: keep-alive loop until close/EOF/shutdown.
fn handle_connection(state: &AppState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    loop {
        match read_request(&mut reader, state.max_body_bytes, state.header_timeout) {
            Ok(req) => {
                let close = req.wants_close() || state.shutting_down();
                let response = route(state, &req);
                if response.write_to(&mut writer, close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Idle) => {
                if state.shutting_down() {
                    return;
                }
            }
            Err(HttpError::Eof) => return,
            Err(HttpError::Bad { status, message }) => {
                hgobs::counter!("serve.bad_requests");
                if status == 408 {
                    hgobs::log::warn(|| format!("closing slow connection with 408: {message}"));
                }
                let _ = Response::error(status, &message).write_to(&mut writer, true);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

/// Does the client want the trace block embedded in the response body?
/// Either `?trace=1` or an `X-Trace: 1` header opts in.
fn wants_trace(req: &Request) -> bool {
    req.param("trace").is_some_and(|v| v == "1")
        || req.header("x-trace").is_some_and(|v| v.trim() == "1")
}

/// Dispatch one request to its handler, recording request counters, a
/// per-endpoint latency histogram, and a slow-query-log entry carrying
/// the request's trace. Every response gets an `X-Trace-Id` header;
/// `?trace=1` (or `X-Trace: 1`) additionally embeds the trace block —
/// with `total_us` equal to the latency observation — in a 200 body.
pub fn route(state: &AppState, req: &Request) -> Response {
    let t0 = Instant::now();
    hgobs::counter!("serve.requests");
    let seq = state.trace_seq.fetch_add(1, Ordering::Relaxed);
    let trace = TraceCtx::new(trace_id(&[req.method.as_str(), req.path.as_str()], seq));
    let explicit = wants_trace(req);
    let (mut resp, endpoint) = route_inner(state, req, &trace, explicit);
    let us = t0.elapsed().as_micros() as u64;
    hgobs::record_hist(&format!("serve.latency_us.{endpoint}"), us);
    if resp.status >= 400 {
        hgobs::add_counter(&format!("serve.errors.{}", resp.status), 1);
    }
    if resp.status == 504 {
        state.deadline_hits.fetch_add(1, Ordering::Relaxed);
        hgobs::counter!("serve.deadline_exceeded");
        hgobs::log::warn(|| {
            format!(
                "deadline exceeded: {} {} answered 504 after {us}us (trace {})",
                req.method,
                req.path,
                trace.id_hex()
            )
        });
    }
    let mut w = hgobs::json::JsonWriter::new();
    trace.write_json(&mut w, Some(us));
    let trace_json = w.finish();
    if explicit && resp.status == 200 && resp.content_type == "application/json" {
        if let Some(stripped) = resp.body.strip_suffix("}\n") {
            let mut body = stripped.to_string();
            if !body.ends_with('{') {
                body.push(',');
            }
            body.push_str("\"trace\":");
            body.push_str(&trace_json);
            body.push_str("}\n");
            resp.body = body;
        }
    }
    // Only real work lands in the slow-query log: health/metrics
    // polling and the log endpoint itself would drown it in noise.
    if !matches!(endpoint, "healthz" | "metrics" | "slowlog") {
        state.slowlog.record(SlowLogEntry {
            id: trace.id_hex(),
            endpoint,
            status: resp.status,
            total_us: us,
            unix_ms: unix_ms_now(),
            trace_json,
        });
    }
    resp.with_header("X-Trace-Id", trace.id_hex())
}

fn route_inner(
    state: &AppState,
    req: &Request,
    trace: &TraceCtx,
    explicit_trace: bool,
) -> (Response, &'static str) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (healthz(state), "healthz"),
        ("GET", ["metrics"]) => (metrics(state), "metrics"),
        ("GET", ["debug", "slowlog"]) => {
            (Response::json(200, state.slowlog.render_json()), "slowlog")
        }
        ("GET", ["datasets"]) => (Response::json(200, state.registry.list_json()), "datasets"),
        ("POST", ["datasets"]) => (post_dataset(state, req), "post_dataset"),
        ("POST", ["admin", "shutdown"]) => {
            state.request_shutdown();
            (
                Response::json(200, "{\"status\":\"shutting down\"}\n".to_string()),
                "shutdown",
            )
        }
        ("GET", ["v1", dataset, endpoint]) => {
            query(state, dataset, endpoint, req, trace, explicit_trace)
        }
        (_, ["healthz" | "metrics" | "v1", ..]) | (_, ["datasets"]) => (
            Response::error(405, &format!("method {} not allowed here", req.method)),
            "method_not_allowed",
        ),
        _ => (
            Response::error(404, &format!("no route for {}", req.path)),
            "other",
        ),
    }
}

fn healthz(state: &AppState) -> Response {
    let mut w = hgobs::json::JsonWriter::new();
    w.begin_object();
    w.key("status").string("ok");
    w.key("datasets").uint(state.registry.len() as u64);
    w.key("uptime_seconds")
        .float(state.started.elapsed().as_secs_f64());
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    Response::json(200, body)
}

/// Cumulative metrics: the hgobs registry (counters, histograms, spans)
/// rendered as Prometheus text, followed by cache and uptime gauges.
fn metrics(state: &AppState) -> Response {
    let mut body = hgobs::snapshot_report().render_prometheus();
    let cs = state.cache.stats();
    body.push_str(&format!(
        "hgserve_cache_hits {}\nhgserve_cache_misses {}\nhgserve_cache_insertions {}\n\
         hgserve_cache_evictions {}\nhgserve_cache_entries {}\nhgserve_cache_bytes {}\n\
         hgserve_cache_capacity_bytes {}\nhgserve_uptime_seconds {:.3}\n",
        cs.hits,
        cs.misses,
        cs.insertions,
        cs.evictions,
        cs.entries,
        cs.bytes,
        cs.capacity_bytes,
        state.started.elapsed().as_secs_f64(),
    ));
    body.push_str(&format!(
        "hgserve_shed_total {}\nhgserve_deadline_exceeded_total {}\n\
         hgserve_queue_depth {}\nhgserve_queue_capacity {}\n",
        state.shed.load(Ordering::Relaxed),
        state.deadline_hits.load(Ordering::Relaxed),
        state.queued.load(Ordering::Relaxed),
        state.queue_capacity,
    ));
    // Per-dataset CSR memory (labelled gauge) plus the fleet total. For
    // mmap-backed datasets the value is the mapped length — an upper
    // bound on actual resident pages.
    let mut total_resident = 0u64;
    for name in state.registry.names() {
        if let Some(d) = state.registry.get(&name) {
            let bytes = d.resident_bytes() as u64;
            total_resident += bytes;
            body.push_str(&format!(
                "hgserve_dataset_resident_bytes{{dataset=\"{}\",storage=\"{}\"}} {bytes}\n",
                d.name,
                d.storage.as_str(),
            ));
            body.push_str(&format!(
                "hgserve_dataset_load_us{{dataset=\"{}\"}} {}\n",
                d.name, d.load_us,
            ));
        }
    }
    body.push_str(&format!(
        "hgserve_datasets_resident_bytes_total {total_resident}\n"
    ));
    Response::text(200, body)
}

fn post_dataset(state: &AppState, req: &Request) -> Response {
    let Some(name) = req.param("name").map(str::to_string) else {
        return Response::error(400, "POST /datasets requires `name` parameter");
    };
    let format = match req.param("format") {
        Some(f) => match Format::from_name(f) {
            Some(f) => f,
            None => return Response::error(400, &format!("unknown format `{f}` (hgr|pajek|mtx)")),
        },
        None => Format::Hgr,
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "dataset body must be UTF-8 text");
    };
    match state.registry.insert_text(&name, format, text, "upload") {
        Ok(ds) => {
            hgobs::counter!("serve.datasets_loaded");
            let mut w = hgobs::json::JsonWriter::new();
            w.begin_object();
            w.key("name").string(&ds.name);
            w.key("epoch").uint(ds.epoch);
            w.key("vertices").uint(ds.hypergraph.num_vertices() as u64);
            w.key("hyperedges").uint(ds.hypergraph.num_edges() as u64);
            w.key("pins").uint(ds.hypergraph.num_pins() as u64);
            w.end_object();
            let mut body = w.finish();
            body.push('\n');
            Response::json(201, body)
        }
        Err(msg) => Response::error(400, &msg),
    }
}

fn query(
    state: &AppState,
    dataset: &str,
    endpoint: &str,
    req: &Request,
    trace: &TraceCtx,
    explicit_trace: bool,
) -> (Response, &'static str) {
    let Some(ds) = state.registry.get(dataset) else {
        return (
            Response::error(404, &format!("unknown dataset `{dataset}`")),
            "unknown_dataset",
        );
    };
    let q = match Query::parse(endpoint, |k| req.param(k).map(str::to_string)) {
        Ok(q) => q,
        Err(e) => return (Response::error(e.status, &e.message), "bad_query"),
    };
    let label = q.endpoint();
    let key = format!("{}:{}", ds.cache_prefix(), q.canonical());
    // An explicit `?trace=1` request bypasses the cache entirely (both
    // lookup and insert): its trace block must describe the compute
    // that produced *this* body, and the freshly traced body must not
    // displace the cached untraced answer other clients share.
    if !explicit_trace {
        if let Some(body) = state.cache.get(&key) {
            hgobs::counter!("serve.cache.hit");
            return (Response::json(200, body.as_str().to_string()), label);
        }
        hgobs::counter!("serve.cache.miss");
    }
    let opts = ExecOpts {
        deadline: state.request_deadline(req),
        parallel: ds.hypergraph.num_vertices() >= state.par_threshold,
        trace: trace.clone(),
        relabel: ds.relabeling.clone(),
    };
    // Only successful bodies are cached: a 504 reflects this request's
    // budget, not the dataset, and must never mask a later answer.
    match q.run_opts(&ds.hypergraph, &opts) {
        Ok(body) => {
            let body = Arc::new(body);
            if !explicit_trace {
                state.cache.insert(&key, Arc::clone(&body));
            }
            (Response::json(200, body.as_str().to_string()), label)
        }
        Err(e) => (Response::error(e.status, &e.message), label),
    }
}

/// Install a `SIGINT` handler that flips the returned flag on Ctrl-C.
/// Pure `std` + a direct `signal(2)` declaration; the handler body is a
/// single atomic store, which is async-signal-safe.
#[cfg(unix)]
pub fn install_sigint_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigint(_sig: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let handler: extern "C" fn(i32) = on_sigint;
    unsafe {
        signal(SIGINT, handler as usize);
    }
    &FLAG
}

/// Non-unix fallback: a flag nothing ever sets (shutdown then comes
/// from `/admin/shutdown` only).
#[cfg(not(unix))]
pub fn install_sigint_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::HypergraphBuilder;

    fn toy_state() -> AppState {
        let registry = Arc::new(Registry::new());
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        let text = hypergraph::io::write_hgr(&b.build());
        registry
            .insert_text("toy", Format::Hgr, &text, "test")
            .unwrap();
        AppState::from_config(
            &ServerConfig {
                threads: 2,
                cache_bytes: 1 << 20,
                max_body_bytes: 1 << 20,
                ..ServerConfig::default()
            },
            registry,
        )
    }

    fn get(path: &str) -> Request {
        let (path, query) = crate::http::split_target(path);
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routing_table() {
        let state = toy_state();
        assert_eq!(route(&state, &get("/healthz")).status, 200);
        assert_eq!(route(&state, &get("/datasets")).status, 200);
        assert_eq!(route(&state, &get("/metrics")).status, 200);
        assert_eq!(route(&state, &get("/v1/toy/stats")).status, 200);
        assert_eq!(route(&state, &get("/v1/toy/kcore?k=1")).status, 200);
        assert_eq!(route(&state, &get("/v1/none/stats")).status, 404);
        assert_eq!(route(&state, &get("/v1/toy/bogus")).status, 404);
        assert_eq!(route(&state, &get("/v1/toy/kcore?k=no")).status, 400);
        assert_eq!(route(&state, &get("/nope")).status, 404);
        let mut post = get("/datasets");
        post.method = "DELETE".to_string();
        assert_eq!(route(&state, &post).status, 405);
    }

    #[test]
    fn repeated_query_hits_cache() {
        let state = toy_state();
        let r1 = route(&state, &get("/v1/toy/diameter"));
        let r2 = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(r1.status, 200);
        assert_eq!(r1.body, r2.body);
        let cs = state.cache.stats();
        assert_eq!(cs.hits, 1, "{cs:?}");
        assert_eq!(cs.misses, 1, "{cs:?}");
        assert_eq!(cs.entries, 1, "{cs:?}");
    }

    #[test]
    fn post_dataset_then_query_and_epoch_isolation() {
        let state = toy_state();
        let mut req = get("/datasets?name=up&format=hgr");
        req.method = "POST".to_string();
        req.body = b"1 2\n1 2\n".to_vec();
        let r = route(&state, &req);
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"epoch\":0"));

        let r = route(&state, &get("/v1/up/stats"));
        assert!(r.body.contains("\"hyperedges\":1"), "{}", r.body);

        // Replace the dataset: epoch bumps, cached answer must not leak.
        req.body = b"2 3\n1 2\n2 3\n".to_vec();
        let r = route(&state, &req);
        assert!(r.body.contains("\"epoch\":1"), "{}", r.body);
        let r = route(&state, &get("/v1/up/stats"));
        assert!(r.body.contains("\"hyperedges\":2"), "{}", r.body);
    }

    #[test]
    fn post_malformed_hgr_is_400_with_line_number() {
        let state = toy_state();
        let mut req = get("/datasets?name=bad");
        req.method = "POST".to_string();
        req.body = b"2 3\n1 2\nwat\n".to_vec();
        let r = route(&state, &req);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("line 3"), "{}", r.body);
    }

    #[test]
    fn metrics_exposes_cache_and_hgobs_counters() {
        let state = toy_state();
        let _ = route(&state, &get("/v1/toy/stats"));
        let _ = route(&state, &get("/v1/toy/stats"));
        let r = route(&state, &get("/metrics"));
        assert!(r.body.contains("hgserve_cache_hits "), "{}", r.body);
        assert!(r.body.contains("hgserve_cache_capacity_bytes "));
        assert!(r.body.contains("hgserve_shed_total 0"), "{}", r.body);
        assert!(
            r.body.contains("hgserve_deadline_exceeded_total "),
            "{}",
            r.body
        );
        assert!(r.body.contains("hgserve_queue_depth 0"), "{}", r.body);
        assert!(r.body.contains("hgserve_queue_capacity 64"), "{}", r.body);
        assert!(
            r.body
                .contains("hgserve_dataset_resident_bytes{dataset=\"toy\",storage=\"owned\"}"),
            "{}",
            r.body
        );
        assert!(
            r.body.contains("hgserve_dataset_load_us{dataset=\"toy\"}"),
            "{}",
            r.body
        );
        assert!(
            r.body.contains("hgserve_datasets_resident_bytes_total "),
            "{}",
            r.body
        );
    }

    fn with_header(mut req: Request, name: &str, value: &str) -> Request {
        req.headers.push((name.to_string(), value.to_string()));
        req
    }

    #[test]
    fn request_deadline_resolution() {
        let state = toy_state();
        // No header, no default → unlimited.
        assert!(state
            .request_deadline(&get("/v1/toy/diameter"))
            .is_unlimited());
        // Header wins and is clamped to max_deadline_ms (60s default).
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "999999999");
        let dl = state.request_deadline(&req);
        assert_eq!(dl.budget(), Some(Duration::from_secs(60)));
        // Unparseable header values fall back to the server default.
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "soon");
        assert!(state.request_deadline(&req).is_unlimited());
        // Explicit 0 disables the deadline for this request.
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "0");
        assert!(state.request_deadline(&req).is_unlimited());
    }

    #[test]
    fn every_response_carries_a_trace_id() {
        let state = toy_state();
        for path in ["/healthz", "/v1/toy/stats", "/nope"] {
            let r = route(&state, &get(path));
            assert!(
                r.extra_headers
                    .iter()
                    .any(|(n, v)| *n == "X-Trace-Id" && v.len() == 16),
                "{path}: {:?}",
                r.extra_headers
            );
        }
    }

    #[test]
    fn traced_query_embeds_trace_and_bypasses_cache() {
        let state = toy_state();
        let plain = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(plain.status, 200);
        assert!(!plain.body.contains("\"trace\""), "{}", plain.body);
        let traced = route(&state, &get("/v1/toy/diameter?trace=1"));
        assert_eq!(traced.status, 200);
        assert!(
            traced.body.contains("\"trace\":{\"id\":\""),
            "{}",
            traced.body
        );
        assert!(traced.body.contains("\"total_us\":"), "{}", traced.body);
        assert!(traced.body.contains("msbfs.batch"), "{}", traced.body);
        // The plain request warmed the cache; the traced one bypassed
        // both lookup and insert, so no hit was recorded.
        let cs = state.cache.stats();
        assert_eq!(cs.hits, 0, "{cs:?}");
        assert_eq!(cs.misses, 1, "{cs:?}");
        assert_eq!(cs.insertions, 1, "{cs:?}");
    }

    #[test]
    fn x_trace_header_also_opts_in() {
        let state = toy_state();
        let req = with_header(get("/v1/toy/stats"), "x-trace", "1");
        let r = route(&state, &req);
        assert!(r.body.contains("\"trace\":{\"id\":\""), "{}", r.body);
    }

    #[test]
    fn slowlog_retains_query_traces_but_not_probes() {
        let state = toy_state();
        let _ = route(&state, &get("/v1/toy/diameter"));
        let _ = route(&state, &get("/healthz"));
        let _ = route(&state, &get("/metrics"));
        let r = route(&state, &get("/debug/slowlog"));
        assert_eq!(r.status, 200);
        assert!(
            r.body.starts_with("{\"schema\":\"hg-slowlog/1\""),
            "{}",
            r.body
        );
        assert!(r.body.contains("\"endpoint\":\"diameter\""), "{}", r.body);
        assert!(!r.body.contains("\"endpoint\":\"healthz\""), "{}", r.body);
        assert!(!r.body.contains("\"endpoint\":\"metrics\""), "{}", r.body);
    }

    #[test]
    fn cached_answer_bypasses_the_deadline() {
        // A cached 200 is served even under a tight deadline — the
        // budget bounds *compute*, and a hit costs none. (The 504 path
        // itself is deterministic in the query-layer tests.)
        let state = toy_state();
        let ok = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(ok.status, 200);
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "1");
        let again = route(&state, &req);
        assert_eq!(again.status, 200, "cache hit should bypass the deadline");
        assert_eq!(again.body, ok.body);
    }
}
