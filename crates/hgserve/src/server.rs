//! The analytics daemon: readiness event loop → fixed worker pool →
//! registry lookup → result cache → algorithms.
//!
//! ```text
//!              ┌────────────────────────────────┐  bounded   ┌─────────┐
//!   accept ───▶│ event loop (1 thread, epoll)   │── mpsc ───▶│ worker 0│──┐
//!   read  ◀──▶│ conn slab:                      │  job queue │   …     │  │ ┌──────────┐
//!   write ◀──▶│  idle → reading → dispatched →  │            │ worker N│──┼▶│ registry │
//!   close ───▶│  writing → idle  (per conn)     │◀─ completions + wake ─┘  │ ├──────────┤
//!              └────────────────────────────────┘   (eventfd)             └▶│ LRU cache│
//!                     ▲ waker wakeups                                       └──────────┘
//!                     └── SIGINT handler / POST /admin/shutdown / workers
//! ```
//!
//! One nonblocking event loop owns the listener and every connection:
//! it accepts, drains reads into per-connection buffers, parses
//! complete requests with the incremental HTTP parser, and writes
//! serialized responses back with vectored writes — so thousands of
//! idle keep-alive connections cost zero threads and zero syscalls
//! until bytes actually move. Compute stays on the worker pool: a
//! parsed request is enqueued (bounded — the admission-control valve),
//! a worker runs [`route`] and hands the serialized response back via
//! a completion queue plus a waker write. The loop itself answers the
//! protocol-robustness errors (`503` queue-full, `408` slow-loris,
//! `400`/`413`/`431` parse failures) without touching a worker.
//!
//! Graceful shutdown: the flag wakes the loop, which closes the
//! listener and idle connections, lets dispatched and mid-read
//! requests finish (answering `Connection: close`) within a drain
//! grace period, then exits; the dropped job queue drains the workers.
//! `ServerHandle::shutdown` joins everything, so when it returns no
//! request is lost.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hgobs::trace::trace_id;
use hgobs::{Deadline, TraceCtx};

use crate::cache::ShardedLru;
use crate::http::{parse_request_bytes, ParseOutcome, Request, Response};
use crate::poller::{self, Interest, Poller, Waker};
use crate::query::{ExecOpts, Query};
use crate::registry::{Format, Registry};
use crate::slowlog::{unix_ms_now, SlowLog, SlowLogEntry};

/// Server tunables, all CLI-exposed.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Result-cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Largest accepted `POST /datasets` body.
    pub max_body_bytes: usize,
    /// Parsed requests waiting for a worker before the event loop
    /// starts shedding new ones with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Default per-request compute budget in milliseconds; `0` disables
    /// the default (requests without `X-Deadline-Ms` run unbounded).
    pub deadline_ms: u64,
    /// Upper cap applied to client-requested `X-Deadline-Ms` values;
    /// `0` means uncapped.
    pub max_deadline_ms: u64,
    /// Wall-clock budget for reading one request head (slow-loris
    /// protection); exceeded → `408`.
    pub header_timeout_ms: u64,
    /// Datasets with at least this many vertices route their heavy
    /// queries (diameter, kcore) through the `parcore` kernels.
    pub par_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_bytes: 64 << 20,
            max_body_bytes: 64 << 20,
            queue_depth: 64,
            deadline_ms: 0,
            max_deadline_ms: 60_000,
            header_timeout_ms: 5_000,
            par_threshold: 4_096,
        }
    }
}

/// State shared by the event loop and every worker.
pub struct AppState {
    pub registry: Arc<Registry>,
    pub cache: ShardedLru,
    /// Retained traces of the slowest and most recent requests,
    /// served at `GET /debug/slowlog`.
    pub slowlog: SlowLog,
    pub started: Instant,
    /// Sequence number feeding each request's deterministic trace id.
    trace_seq: AtomicU64,
    shutdown: AtomicBool,
    max_body_bytes: usize,
    /// Requests rejected with 503 because the job queue was full.
    shed: AtomicU64,
    /// Requests answered 504 because their deadline fired mid-compute.
    deadline_hits: AtomicU64,
    /// Parsed requests currently sitting in the job queue.
    queued: AtomicU64,
    queue_capacity: usize,
    /// Connections accepted over the process lifetime.
    accepts: AtomicU64,
    /// Live connections by event-loop state, indexed by [`ConnState`];
    /// rendered as the labelled `hgserve_open_connections` gauge.
    conn_states: [AtomicU64; 4],
    /// The event loop's waker, so shutdown requests (workers handling
    /// `/admin/shutdown`, `ServerHandle`) interrupt a blocked wait.
    /// Holding the `Waker` keeps the descriptor alive for the life of
    /// this state, so a late wake can never hit a recycled fd.
    loop_waker: Mutex<Option<Waker>>,
    deadline_ms: u64,
    max_deadline_ms: u64,
    header_timeout: Duration,
    par_threshold: usize,
}

impl AppState {
    fn from_config(config: &ServerConfig, registry: Arc<Registry>) -> AppState {
        AppState {
            registry,
            cache: ShardedLru::new(config.cache_bytes, config.threads.max(1) * 2),
            slowlog: SlowLog::new(),
            started: Instant::now(),
            trace_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
            shed: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            queue_capacity: config.queue_depth.max(1),
            accepts: AtomicU64::new(0),
            conn_states: Default::default(),
            loop_waker: Mutex::new(None),
            deadline_ms: config.deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
            header_timeout: Duration::from_millis(config.header_timeout_ms.max(1)),
            par_threshold: config.par_threshold,
        }
    }

    /// Requests shed with 503 so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn accept_total(&self) -> u64 {
        self.accepts.load(Ordering::Relaxed)
    }

    /// Live connections by event-loop state:
    /// `[idle, reading, dispatched, writing]`.
    pub fn open_connections(&self) -> [u64; 4] {
        std::array::from_fn(|i| self.conn_states[i].load(Ordering::Relaxed))
    }

    fn conn_gauge(&self, state: ConnState) -> &AtomicU64 {
        &self.conn_states[state as usize]
    }

    /// Requests that answered 504 so far.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_hits.load(Ordering::Relaxed)
    }

    /// The [`Deadline`] governing one request: an explicit
    /// `X-Deadline-Ms` header (clamped to the server cap) wins over the
    /// server-wide default; `0` (or no header and no default) means
    /// unlimited. Unparseable header values are ignored.
    pub fn request_deadline(&self, req: &Request) -> Deadline {
        let requested = req
            .header("x-deadline-ms")
            .and_then(|v| v.trim().parse::<u64>().ok());
        let ms = match requested {
            Some(ms) if self.max_deadline_ms > 0 => ms.min(self.max_deadline_ms),
            Some(ms) => ms,
            None => self.deadline_ms,
        };
        if ms == 0 {
            Deadline::none()
        } else {
            Deadline::after_ms(ms)
        }
    }

    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Request a graceful shutdown (idempotent) and wake the event
    /// loop so the drain starts immediately.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(guard) = self.loop_waker.lock() {
            if let Some(waker) = guard.as_ref() {
                waker.wake();
            }
        }
    }

    /// One-line lifetime summary for shutdown logs.
    pub fn state_line(&self) -> String {
        let requests = hgobs::snapshot_report()
            .counters
            .get("serve.requests")
            .copied()
            .unwrap_or(0);
        let cs = self.cache.stats();
        format!(
            "{requests} requests, cache {} hits / {} misses / {} evictions",
            cs.hits, cs.misses, cs.evictions
        )
    }
}

/// A running server; dropping it without `shutdown()` detaches threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    event_loop: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Signal shutdown, drain connections, and join every thread.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_all();
    }

    /// Block until something (SIGINT handler, `/admin/shutdown`)
    /// requests shutdown and the drain completes. No polling: this
    /// joins the event loop, which only exits once shutdown was
    /// requested and every in-flight request finished.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(l) = self.event_loop.take() {
            let _ = l.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Token the listener is registered under; connection tokens encode
/// `(generation << 32) | slab_index` and stay far below this.
const LISTENER_TOKEN: u64 = poller::RESERVED_TOKEN - 1;

/// How long a graceful shutdown waits for dispatched and mid-read
/// requests before closing whatever is left.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// SIGINT sets this flag (via [`install_sigint_flag`]'s handler); the
/// event loop translates it into a graceful shutdown request.
static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);
/// The live event loop's waker fd, for the signal handler (which can
/// only do an atomic load plus one `write(2)`).
static SIGINT_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

/// One connection's position in its lifecycle; doubles as the index
/// into the `hgserve_open_connections` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Parked keep-alive connection: zero cost until bytes arrive.
    Idle = 0,
    /// A partial request head (or body) is buffered; the slow-loris
    /// clock is running.
    Reading = 1,
    /// A complete request is on the job queue or under compute.
    Dispatched = 2,
    /// Response bytes are queued for (possibly partial) writeout.
    Writing = 3,
}

/// One request handed to the worker pool, tagged with the connection
/// token so the completion finds its way back (or is dropped if the
/// connection died meanwhile).
struct Job {
    token: u64,
    req: Request,
}

/// A serialized response traveling back from a worker: byte chunks for
/// the loop's vectored writeout plus the keep-alive decision.
struct Completion {
    token: u64,
    head: Vec<u8>,
    body: Vec<u8>,
    close: bool,
}

/// Per-connection state machine owned by the event loop.
struct Conn {
    stream: TcpStream,
    token: u64,
    state: ConnState,
    /// Accumulated unparsed input; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending response chunks; `wpos` is the written prefix of the
    /// front chunk.
    wqueue: VecDeque<Vec<u8>>,
    wpos: usize,
    /// When the current (incomplete) request head started arriving —
    /// the slow-loris clock behind the 408 timer.
    head_started: Option<Instant>,
    peer_closed: bool,
    close_after_flush: bool,
    /// Interest currently armed with the poller, to skip no-op MODs.
    armed: Interest,
}

fn raw_fd(stream: &TcpStream) -> poller::RawFd {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

fn listener_fd(listener: &TcpListener) -> poller::RawFd {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        listener.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        -1
    }
}

/// The readiness event loop: owns the listener, the connection slab,
/// and the poller; single-threaded, nonblocking throughout.
struct EventLoop {
    state: Arc<AppState>,
    poller: Poller,
    listener: Option<TcpListener>,
    /// Connection slab; freed slots are recycled via `free` with a
    /// bumped generation so stale completions can never hit a new
    /// connection that reused the index.
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    jobs: SyncSender<Job>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
}

impl EventLoop {
    fn conn_index(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        match self.conns.get(idx) {
            Some(Some(c)) if c.token == token => Some(idx),
            _ => None,
        }
    }

    fn set_state(&mut self, idx: usize, new: ConnState) {
        if let Some(conn) = self.conns[idx].as_mut() {
            if conn.state != new {
                self.state
                    .conn_gauge(conn.state)
                    .fetch_sub(1, Ordering::Relaxed);
                self.state.conn_gauge(new).fetch_add(1, Ordering::Relaxed);
                conn.state = new;
            }
        }
    }

    /// Re-arm the poller registration if the interest set changed.
    fn rearm(&mut self, idx: usize, interest: Interest) {
        if let Some(conn) = self.conns[idx].as_mut() {
            if conn.armed != interest {
                let (fd, token) = (raw_fd(&conn.stream), conn.token);
                if self.poller.modify(fd, token, interest).is_ok() {
                    conn.armed = interest;
                }
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.delete(raw_fd(&conn.stream));
            self.state
                .conn_gauge(conn.state)
                .fetch_sub(1, Ordering::Relaxed);
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.open -= 1;
            hgobs::gauge!("serve.conn.open", self.open as i64);
        }
    }

    /// Accept every pending connection (edge-triggered: drain to
    /// `WouldBlock`), register it, and probe for bytes that raced the
    /// registration.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.state.accepts.fetch_add(1, Ordering::Relaxed);
                    hgobs::counter!("serve.connections");
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.gens.push(0);
                        self.conns.len() - 1
                    });
                    assert!(idx < u32::MAX as usize, "connection slab overflow");
                    let token = (u64::from(self.gens[idx]) << 32) | idx as u64;
                    if self
                        .poller
                        .add(raw_fd(&stream), token, Interest::READ)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        token,
                        state: ConnState::Idle,
                        rbuf: Vec::new(),
                        rpos: 0,
                        wqueue: VecDeque::new(),
                        wpos: 0,
                        head_started: None,
                        peer_closed: false,
                        close_after_flush: false,
                        armed: Interest::READ,
                    });
                    self.open += 1;
                    self.state
                        .conn_gauge(ConnState::Idle)
                        .fetch_add(1, Ordering::Relaxed);
                    hgobs::gauge!("serve.conn.open", self.open as i64);
                    self.conn_readable(idx);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // EMFILE and friends: log, stop this round; the
                    // next arrival re-reports the listener readable.
                    hgobs::log::warn(|| format!("accept failed: {e}"));
                    return;
                }
            }
        }
    }

    /// Drain the socket into the read buffer (edge-triggered: until
    /// `WouldBlock` or EOF), then try to advance the state machine.
    fn conn_readable(&mut self, idx: usize) {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.advance(idx);
    }

    /// Try to move the connection forward: parse one buffered request
    /// and dispatch it, park it idle/reading, or answer a protocol
    /// error directly. At most one request is in flight per connection
    /// (responses stay in order); the next pipelined request is parsed
    /// when the current response finishes flushing.
    fn advance(&mut self, idx: usize) {
        enum Act {
            Busy,
            CloseNow,
            ParkIdle,
            ParkReading,
            Dispatch(Box<Request>),
            Respond { status: u16, message: String },
        }
        let max_body = self.state.max_body_bytes;
        let act = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if matches!(conn.state, ConnState::Dispatched | ConnState::Writing) {
                Act::Busy
            } else {
                // Compact the consumed prefix before growing further.
                if conn.rpos == conn.rbuf.len() {
                    conn.rbuf.clear();
                    conn.rpos = 0;
                } else if conn.rpos > 16 * 1024 {
                    conn.rbuf.drain(..conn.rpos);
                    conn.rpos = 0;
                }
                if conn.rbuf.len() == conn.rpos {
                    if conn.peer_closed {
                        Act::CloseNow
                    } else {
                        conn.head_started = None;
                        Act::ParkIdle
                    }
                } else {
                    match parse_request_bytes(&conn.rbuf[conn.rpos..], max_body) {
                        ParseOutcome::Complete(req, used) => {
                            conn.rpos += used;
                            conn.head_started = None;
                            Act::Dispatch(Box::new(req))
                        }
                        ParseOutcome::Partial => {
                            if conn.peer_closed {
                                Act::Respond {
                                    status: 400,
                                    message: "truncated request".to_string(),
                                }
                            } else {
                                conn.head_started.get_or_insert_with(Instant::now);
                                Act::ParkReading
                            }
                        }
                        ParseOutcome::Error { status, message } => Act::Respond { status, message },
                    }
                }
            }
        };
        match act {
            Act::Busy => {}
            Act::CloseNow => self.close_conn(idx),
            Act::ParkIdle => self.set_state(idx, ConnState::Idle),
            Act::ParkReading => self.set_state(idx, ConnState::Reading),
            Act::Dispatch(req) => self.dispatch(idx, *req),
            Act::Respond { status, message } => {
                hgobs::counter!("serve.bad_requests");
                let (head, body) = Response::error(status, &message).to_bytes(true);
                self.enqueue_write(idx, head, body, true);
            }
        }
    }

    /// Hand a parsed request to the worker pool, or answer `503` +
    /// `Retry-After` directly when the bounded queue is full — the
    /// admission-control valve, now entirely inside the event loop.
    fn dispatch(&mut self, idx: usize, req: Request) {
        let Some(token) = self.conns[idx].as_ref().map(|c| c.token) else {
            return;
        };
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        match self.jobs.try_send(Job { token, req }) {
            Ok(()) => self.set_state(idx, ConnState::Dispatched),
            Err(TrySendError::Full(_)) => {
                self.state.queued.fetch_sub(1, Ordering::Relaxed);
                let shed_total = self.state.shed.fetch_add(1, Ordering::Relaxed) + 1;
                hgobs::counter!("serve.shed");
                hgobs::log::warn(|| {
                    format!("shedding request with 503: job queue full ({shed_total} shed so far)")
                });
                let (head, body) = Response::error(503, "server overloaded; queue full")
                    .with_retry_after(1)
                    .to_bytes(true);
                self.enqueue_write(idx, head, body, true);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.state.queued.fetch_sub(1, Ordering::Relaxed);
                self.close_conn(idx);
            }
        }
    }

    /// Queue response chunks and start (or continue) writing them out.
    fn enqueue_write(&mut self, idx: usize, head: Vec<u8>, body: Vec<u8>, close: bool) {
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if !head.is_empty() {
                conn.wqueue.push_back(head);
            }
            if !body.is_empty() {
                conn.wqueue.push_back(body);
            }
            conn.close_after_flush |= close;
        }
        self.set_state(idx, ConnState::Writing);
        self.flush(idx);
    }

    /// Write queued chunks with vectored writes until drained or
    /// `WouldBlock` (then arm write interest and wait for the edge).
    /// A finished flush closes the connection or parses the next
    /// pipelined request from the buffer.
    fn flush(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.wqueue.is_empty() {
                conn.wpos = 0;
                break;
            }
            let slices: Vec<IoSlice<'_>> = conn
                .wqueue
                .iter()
                .enumerate()
                .map(|(i, chunk)| IoSlice::new(&chunk[if i == 0 { conn.wpos } else { 0 }..]))
                .collect();
            match conn.stream.write_vectored(&slices) {
                Ok(n) => {
                    let mut done = conn.wpos + n;
                    while let Some(front) = conn.wqueue.front() {
                        if done >= front.len() {
                            done -= front.len();
                            conn.wqueue.pop_front();
                        } else {
                            break;
                        }
                    }
                    conn.wpos = done;
                    if n == 0 {
                        self.close_conn(idx);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rearm(idx, Interest::READ_WRITE);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        let close = self.conns[idx]
            .as_ref()
            .is_some_and(|c| c.close_after_flush);
        if close {
            self.close_conn(idx);
            return;
        }
        self.rearm(idx, Interest::READ);
        self.set_state(idx, ConnState::Idle);
        self.advance(idx);
    }

    /// Hand worker results back to their connections.
    fn drain_completions(&mut self) {
        loop {
            let completion = self.completions.lock().unwrap().pop_front();
            let Some(c) = completion else { return };
            let Some(idx) = self.conn_index(c.token) else {
                continue; // connection died while the worker computed
            };
            self.enqueue_write(idx, c.head, c.body, c.close);
        }
    }

    /// Answer `408` on connections whose request head has been
    /// trickling in longer than the header timeout (slow-loris).
    fn check_head_timeouts(&mut self) {
        let budget = self.state.header_timeout;
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let expired = self.conns[idx].as_ref().is_some_and(|c| {
                c.state == ConnState::Reading
                    && c.head_started
                        .is_some_and(|t0| now.duration_since(t0) >= budget)
            });
            if expired {
                hgobs::counter!("serve.bad_requests");
                hgobs::log::warn(|| {
                    "closing slow connection with 408: request header read timed out".to_string()
                });
                let (head, body) =
                    Response::error(408, "request header read timed out").to_bytes(true);
                self.enqueue_write(idx, head, body, true);
            }
        }
    }

    /// The nearest timer deadline: the earliest slow-loris expiry,
    /// capped by the drain deadline during shutdown. `None` blocks
    /// until readiness or a wake.
    fn next_timeout(&self, drain_deadline: Option<Instant>) -> Option<Duration> {
        let mut next: Option<Instant> = drain_deadline;
        for conn in self.conns.iter().flatten() {
            if conn.state == ConnState::Reading {
                if let Some(t0) = conn.head_started {
                    let deadline = t0 + self.state.header_timeout;
                    next = Some(next.map_or(deadline, |n| n.min(deadline)));
                }
            }
        }
        next.map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// Start the graceful drain: stop accepting and drop parked idle
    /// connections; reading/dispatched/writing connections get the
    /// grace period to finish.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener_fd(&listener));
        }
        for idx in 0..self.conns.len() {
            if self.conns[idx]
                .as_ref()
                .is_some_and(|c| c.state == ConnState::Idle)
            {
                self.close_conn(idx);
            }
        }
    }

    fn run(&mut self) {
        let mut events: Vec<poller::Event> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if SIGINT_FLAG.load(Ordering::Relaxed) && !self.state.shutting_down() {
                self.state.request_shutdown();
            }
            if self.state.shutting_down() && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                self.begin_drain();
            }
            if let Some(deadline) = drain_deadline {
                if self.open == 0 {
                    break;
                }
                if Instant::now() >= deadline {
                    for idx in 0..self.conns.len() {
                        self.close_conn(idx);
                    }
                    break;
                }
            }
            let timeout = self.next_timeout(drain_deadline);
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                if let Some(idx) = self.conn_index(ev.token) {
                    if ev.readable {
                        self.conn_readable(idx);
                    }
                }
                if let Some(idx) = self.conn_index(ev.token) {
                    if ev.writable {
                        self.flush(idx);
                    }
                }
            }
            self.drain_completions();
            self.check_head_timeouts();
        }
        // Dropping self (and with it `jobs`) closes the queue; workers
        // finish whatever is already queued, then exit.
    }
}

/// Bind and start the server. Enables the hgobs sink — the server's
/// `/metrics` endpoint is cumulative over the process lifetime.
pub fn start(config: &ServerConfig, registry: Arc<Registry>) -> std::io::Result<ServerHandle> {
    hgobs::enable();
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut poller = Poller::new()?;
    poller.add(listener_fd(&listener), LISTENER_TOKEN, Interest::READ)?;

    let state = Arc::new(AppState::from_config(config, registry));
    let waker = poller.waker();
    *state.loop_waker.lock().unwrap() = Some(waker.clone());
    SIGINT_WAKE_FD.store(waker.raw_fd(), Ordering::SeqCst);

    // The *bounded* job queue is the admission-control valve: when
    // every worker is busy and `queue_depth` requests are already
    // waiting, the event loop sheds new requests immediately instead
    // of letting latency grow without bound.
    let (tx, rx): (SyncSender<Job>, Receiver<Job>) =
        std::sync::mpsc::sync_channel(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let completions = Arc::new(Mutex::new(VecDeque::new()));

    let workers: Vec<_> = (0..config.threads.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let completions = Arc::clone(&completions);
            let waker = waker.clone();
            std::thread::Builder::new()
                .name(format!("hgserve-worker-{i}"))
                .spawn(move || loop {
                    let job = rx.lock().unwrap().recv();
                    match job {
                        Ok(Job { token, req }) => {
                            state.queued.fetch_sub(1, Ordering::Relaxed);
                            let resp = route(&state, &req);
                            // Re-check the flag after routing so the
                            // response to `/admin/shutdown` itself
                            // already says `Connection: close`.
                            let close = req.wants_close() || state.shutting_down();
                            let (head, body) = resp.to_bytes(close);
                            completions.lock().unwrap().push_back(Completion {
                                token,
                                head,
                                body,
                                close,
                            });
                            waker.wake();
                        }
                        Err(_) => break, // event loop gone: drained
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    let event_loop = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("hgserve-events".to_string())
            .spawn(move || {
                let mut el = EventLoop {
                    state,
                    poller,
                    listener: Some(listener),
                    conns: Vec::new(),
                    gens: Vec::new(),
                    free: Vec::new(),
                    open: 0,
                    jobs: tx,
                    completions,
                };
                el.run();
            })
            .expect("spawn event loop")
    };

    hgobs::log::info(|| format!("hgserve listening on {addr}"));
    Ok(ServerHandle {
        addr,
        state,
        event_loop: Some(event_loop),
        workers,
    })
}

/// Does the client want the trace block embedded in the response body?
/// Either `?trace=1` or an `X-Trace: 1` header opts in.
fn wants_trace(req: &Request) -> bool {
    req.param("trace").is_some_and(|v| v == "1")
        || req.header("x-trace").is_some_and(|v| v.trim() == "1")
}

/// Dispatch one request to its handler, recording request counters, a
/// per-endpoint latency histogram, and a slow-query-log entry carrying
/// the request's trace. Every response gets an `X-Trace-Id` header;
/// `?trace=1` (or `X-Trace: 1`) additionally embeds the trace block —
/// with `total_us` equal to the latency observation — in a 200 body.
pub fn route(state: &AppState, req: &Request) -> Response {
    let t0 = Instant::now();
    hgobs::counter!("serve.requests");
    let seq = state.trace_seq.fetch_add(1, Ordering::Relaxed);
    let trace = TraceCtx::new(trace_id(&[req.method.as_str(), req.path.as_str()], seq));
    let explicit = wants_trace(req);
    let (mut resp, endpoint) = route_inner(state, req, &trace, explicit);
    let us = t0.elapsed().as_micros() as u64;
    hgobs::record_hist(&format!("serve.latency_us.{endpoint}"), us);
    if resp.status >= 400 {
        hgobs::add_counter(&format!("serve.errors.{}", resp.status), 1);
    }
    if resp.status == 504 {
        state.deadline_hits.fetch_add(1, Ordering::Relaxed);
        hgobs::counter!("serve.deadline_exceeded");
        hgobs::log::warn(|| {
            format!(
                "deadline exceeded: {} {} answered 504 after {us}us (trace {})",
                req.method,
                req.path,
                trace.id_hex()
            )
        });
    }
    let mut w = hgobs::json::JsonWriter::new();
    trace.write_json(&mut w, Some(us));
    let trace_json = w.finish();
    if explicit && resp.status == 200 && resp.content_type == "application/json" {
        if let Some(stripped) = resp.body.strip_suffix("}\n") {
            let mut body = stripped.to_string();
            if !body.ends_with('{') {
                body.push(',');
            }
            body.push_str("\"trace\":");
            body.push_str(&trace_json);
            body.push_str("}\n");
            resp.body = body;
        }
    }
    // Only real work lands in the slow-query log: health/metrics
    // polling and the log endpoint itself would drown it in noise.
    if !matches!(endpoint, "healthz" | "metrics" | "slowlog") {
        state.slowlog.record(SlowLogEntry {
            id: trace.id_hex(),
            endpoint,
            status: resp.status,
            total_us: us,
            unix_ms: unix_ms_now(),
            trace_json,
        });
    }
    resp.with_header("X-Trace-Id", trace.id_hex())
}

fn route_inner(
    state: &AppState,
    req: &Request,
    trace: &TraceCtx,
    explicit_trace: bool,
) -> (Response, &'static str) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (healthz(state), "healthz"),
        ("GET", ["metrics"]) => (metrics(state), "metrics"),
        ("GET", ["debug", "slowlog"]) => {
            (Response::json(200, state.slowlog.render_json()), "slowlog")
        }
        ("GET", ["datasets"]) => (Response::json(200, state.registry.list_json()), "datasets"),
        ("POST", ["datasets"]) => (post_dataset(state, req), "post_dataset"),
        ("POST", ["admin", "shutdown"]) => {
            state.request_shutdown();
            (
                Response::json(200, "{\"status\":\"shutting down\"}\n".to_string()),
                "shutdown",
            )
        }
        ("GET", ["v1", dataset, endpoint]) => {
            query(state, dataset, endpoint, req, trace, explicit_trace)
        }
        (_, ["healthz" | "metrics" | "v1", ..]) | (_, ["datasets"]) => (
            Response::error(405, &format!("method {} not allowed here", req.method)),
            "method_not_allowed",
        ),
        _ => (
            Response::error(404, &format!("no route for {}", req.path)),
            "other",
        ),
    }
}

fn healthz(state: &AppState) -> Response {
    let mut w = hgobs::json::JsonWriter::new();
    w.begin_object();
    w.key("status").string("ok");
    w.key("datasets").uint(state.registry.len() as u64);
    w.key("uptime_seconds")
        .float(state.started.elapsed().as_secs_f64());
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    Response::json(200, body)
}

/// Cumulative metrics: the hgobs registry (counters, histograms, spans)
/// rendered as Prometheus text, followed by cache and uptime gauges.
fn metrics(state: &AppState) -> Response {
    let mut body = hgobs::snapshot_report().render_prometheus();
    let cs = state.cache.stats();
    body.push_str(&format!(
        "hgserve_cache_hits {}\nhgserve_cache_misses {}\nhgserve_cache_insertions {}\n\
         hgserve_cache_evictions {}\nhgserve_cache_entries {}\nhgserve_cache_bytes {}\n\
         hgserve_cache_capacity_bytes {}\nhgserve_uptime_seconds {:.3}\n",
        cs.hits,
        cs.misses,
        cs.insertions,
        cs.evictions,
        cs.entries,
        cs.bytes,
        cs.capacity_bytes,
        state.started.elapsed().as_secs_f64(),
    ));
    body.push_str(&format!(
        "hgserve_shed_total {}\nhgserve_deadline_exceeded_total {}\n\
         hgserve_queue_depth {}\nhgserve_queue_capacity {}\n",
        state.shed.load(Ordering::Relaxed),
        state.deadline_hits.load(Ordering::Relaxed),
        state.queued.load(Ordering::Relaxed),
        state.queue_capacity,
    ));
    // Connection engine gauges: the slab population by state machine
    // position, plus lifetime accepts.
    let [idle, reading, dispatched, writing] = state.open_connections();
    body.push_str(&format!(
        "hgserve_open_connections{{state=\"idle\"}} {idle}\n\
         hgserve_open_connections{{state=\"reading\"}} {reading}\n\
         hgserve_open_connections{{state=\"dispatched\"}} {dispatched}\n\
         hgserve_open_connections{{state=\"writing\"}} {writing}\n\
         hgserve_accept_total {}\n",
        state.accept_total(),
    ));
    // Per-dataset CSR memory (labelled gauge) plus the fleet total. For
    // mmap-backed datasets the value is the mapped length — an upper
    // bound on actual resident pages.
    let mut total_resident = 0u64;
    for name in state.registry.names() {
        if let Some(d) = state.registry.get(&name) {
            let bytes = d.resident_bytes() as u64;
            total_resident += bytes;
            body.push_str(&format!(
                "hgserve_dataset_resident_bytes{{dataset=\"{}\",storage=\"{}\"}} {bytes}\n",
                d.name,
                d.storage.as_str(),
            ));
            body.push_str(&format!(
                "hgserve_dataset_load_us{{dataset=\"{}\"}} {}\n",
                d.name, d.load_us,
            ));
        }
    }
    body.push_str(&format!(
        "hgserve_datasets_resident_bytes_total {total_resident}\n"
    ));
    Response::text(200, body)
}

fn post_dataset(state: &AppState, req: &Request) -> Response {
    let Some(name) = req.param("name").map(str::to_string) else {
        return Response::error(400, "POST /datasets requires `name` parameter");
    };
    let format = match req.param("format") {
        Some(f) => match Format::from_name(f) {
            Some(f) => f,
            None => return Response::error(400, &format!("unknown format `{f}` (hgr|pajek|mtx)")),
        },
        None => Format::Hgr,
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "dataset body must be UTF-8 text");
    };
    match state.registry.insert_text(&name, format, text, "upload") {
        Ok(ds) => {
            hgobs::counter!("serve.datasets_loaded");
            let mut w = hgobs::json::JsonWriter::new();
            w.begin_object();
            w.key("name").string(&ds.name);
            w.key("epoch").uint(ds.epoch);
            w.key("vertices").uint(ds.hypergraph.num_vertices() as u64);
            w.key("hyperedges").uint(ds.hypergraph.num_edges() as u64);
            w.key("pins").uint(ds.hypergraph.num_pins() as u64);
            w.end_object();
            let mut body = w.finish();
            body.push('\n');
            Response::json(201, body)
        }
        Err(msg) => Response::error(400, &msg),
    }
}

fn query(
    state: &AppState,
    dataset: &str,
    endpoint: &str,
    req: &Request,
    trace: &TraceCtx,
    explicit_trace: bool,
) -> (Response, &'static str) {
    let Some(ds) = state.registry.get(dataset) else {
        return (
            Response::error(404, &format!("unknown dataset `{dataset}`")),
            "unknown_dataset",
        );
    };
    let q = match Query::parse(endpoint, |k| req.param(k).map(str::to_string)) {
        Ok(q) => q,
        Err(e) => return (Response::error(e.status, &e.message), "bad_query"),
    };
    let label = q.endpoint();
    let key = format!("{}:{}", ds.cache_prefix(), q.canonical());
    // An explicit `?trace=1` request bypasses the cache entirely (both
    // lookup and insert): its trace block must describe the compute
    // that produced *this* body, and the freshly traced body must not
    // displace the cached untraced answer other clients share.
    if !explicit_trace {
        if let Some(body) = state.cache.get(&key) {
            hgobs::counter!("serve.cache.hit");
            return (Response::json(200, body.as_str().to_string()), label);
        }
        hgobs::counter!("serve.cache.miss");
    }
    let opts = ExecOpts {
        deadline: state.request_deadline(req),
        parallel: ds.hypergraph.num_vertices() >= state.par_threshold,
        trace: trace.clone(),
        relabel: ds.relabeling.clone(),
    };
    // Only successful bodies are cached: a 504 reflects this request's
    // budget, not the dataset, and must never mask a later answer.
    match q.run_opts(&ds.hypergraph, &opts) {
        Ok(body) => {
            let body = Arc::new(body);
            if !explicit_trace {
                state.cache.insert(&key, Arc::clone(&body));
            }
            (Response::json(200, body.as_str().to_string()), label)
        }
        Err(e) => (Response::error(e.status, &e.message), label),
    }
}

/// Install a `SIGINT` handler that flips the returned flag on Ctrl-C
/// and wakes the event loop, which turns the flag into a graceful
/// shutdown. Pure `std` + a direct `signal(2)` declaration; the
/// handler body is one atomic store plus one `write(2)` on the waker
/// eventfd — both async-signal-safe.
#[cfg(unix)]
pub fn install_sigint_flag() -> &'static AtomicBool {
    extern "C" fn on_sigint(_sig: i32) {
        SIGINT_FLAG.store(true, Ordering::SeqCst);
        poller::wake_fd(SIGINT_WAKE_FD.load(Ordering::SeqCst));
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let handler: extern "C" fn(i32) = on_sigint;
    unsafe {
        signal(SIGINT, handler as usize);
    }
    &SIGINT_FLAG
}

/// Non-unix fallback: a flag nothing ever sets (shutdown then comes
/// from `/admin/shutdown` only).
#[cfg(not(unix))]
pub fn install_sigint_flag() -> &'static AtomicBool {
    &SIGINT_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::HypergraphBuilder;

    fn toy_state() -> AppState {
        let registry = Arc::new(Registry::new());
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        let text = hypergraph::io::write_hgr(&b.build());
        registry
            .insert_text("toy", Format::Hgr, &text, "test")
            .unwrap();
        AppState::from_config(
            &ServerConfig {
                threads: 2,
                cache_bytes: 1 << 20,
                max_body_bytes: 1 << 20,
                ..ServerConfig::default()
            },
            registry,
        )
    }

    fn get(path: &str) -> Request {
        let (path, query) = crate::http::split_target(path);
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routing_table() {
        let state = toy_state();
        assert_eq!(route(&state, &get("/healthz")).status, 200);
        assert_eq!(route(&state, &get("/datasets")).status, 200);
        assert_eq!(route(&state, &get("/metrics")).status, 200);
        assert_eq!(route(&state, &get("/v1/toy/stats")).status, 200);
        assert_eq!(route(&state, &get("/v1/toy/kcore?k=1")).status, 200);
        assert_eq!(route(&state, &get("/v1/none/stats")).status, 404);
        assert_eq!(route(&state, &get("/v1/toy/bogus")).status, 404);
        assert_eq!(route(&state, &get("/v1/toy/kcore?k=no")).status, 400);
        assert_eq!(route(&state, &get("/nope")).status, 404);
        let mut post = get("/datasets");
        post.method = "DELETE".to_string();
        assert_eq!(route(&state, &post).status, 405);
    }

    #[test]
    fn repeated_query_hits_cache() {
        let state = toy_state();
        let r1 = route(&state, &get("/v1/toy/diameter"));
        let r2 = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(r1.status, 200);
        assert_eq!(r1.body, r2.body);
        let cs = state.cache.stats();
        assert_eq!(cs.hits, 1, "{cs:?}");
        assert_eq!(cs.misses, 1, "{cs:?}");
        assert_eq!(cs.entries, 1, "{cs:?}");
    }

    #[test]
    fn post_dataset_then_query_and_epoch_isolation() {
        let state = toy_state();
        let mut req = get("/datasets?name=up&format=hgr");
        req.method = "POST".to_string();
        req.body = b"1 2\n1 2\n".to_vec();
        let r = route(&state, &req);
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"epoch\":0"));

        let r = route(&state, &get("/v1/up/stats"));
        assert!(r.body.contains("\"hyperedges\":1"), "{}", r.body);

        // Replace the dataset: epoch bumps, cached answer must not leak.
        req.body = b"2 3\n1 2\n2 3\n".to_vec();
        let r = route(&state, &req);
        assert!(r.body.contains("\"epoch\":1"), "{}", r.body);
        let r = route(&state, &get("/v1/up/stats"));
        assert!(r.body.contains("\"hyperedges\":2"), "{}", r.body);
    }

    #[test]
    fn post_malformed_hgr_is_400_with_line_number() {
        let state = toy_state();
        let mut req = get("/datasets?name=bad");
        req.method = "POST".to_string();
        req.body = b"2 3\n1 2\nwat\n".to_vec();
        let r = route(&state, &req);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("line 3"), "{}", r.body);
    }

    #[test]
    fn metrics_exposes_cache_and_hgobs_counters() {
        let state = toy_state();
        let _ = route(&state, &get("/v1/toy/stats"));
        let _ = route(&state, &get("/v1/toy/stats"));
        let r = route(&state, &get("/metrics"));
        assert!(r.body.contains("hgserve_cache_hits "), "{}", r.body);
        assert!(r.body.contains("hgserve_cache_capacity_bytes "));
        assert!(r.body.contains("hgserve_shed_total 0"), "{}", r.body);
        assert!(
            r.body.contains("hgserve_deadline_exceeded_total "),
            "{}",
            r.body
        );
        assert!(r.body.contains("hgserve_queue_depth 0"), "{}", r.body);
        assert!(r.body.contains("hgserve_queue_capacity 64"), "{}", r.body);
        assert!(
            r.body
                .contains("hgserve_open_connections{state=\"idle\"} 0"),
            "{}",
            r.body
        );
        assert!(
            r.body
                .contains("hgserve_open_connections{state=\"dispatched\"} 0"),
            "{}",
            r.body
        );
        assert!(r.body.contains("hgserve_accept_total 0"), "{}", r.body);
        assert!(
            r.body
                .contains("hgserve_dataset_resident_bytes{dataset=\"toy\",storage=\"owned\"}"),
            "{}",
            r.body
        );
        assert!(
            r.body.contains("hgserve_dataset_load_us{dataset=\"toy\"}"),
            "{}",
            r.body
        );
        assert!(
            r.body.contains("hgserve_datasets_resident_bytes_total "),
            "{}",
            r.body
        );
    }

    fn with_header(mut req: Request, name: &str, value: &str) -> Request {
        req.headers.push((name.to_string(), value.to_string()));
        req
    }

    #[test]
    fn request_deadline_resolution() {
        let state = toy_state();
        // No header, no default → unlimited.
        assert!(state
            .request_deadline(&get("/v1/toy/diameter"))
            .is_unlimited());
        // Header wins and is clamped to max_deadline_ms (60s default).
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "999999999");
        let dl = state.request_deadline(&req);
        assert_eq!(dl.budget(), Some(Duration::from_secs(60)));
        // Unparseable header values fall back to the server default.
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "soon");
        assert!(state.request_deadline(&req).is_unlimited());
        // Explicit 0 disables the deadline for this request.
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "0");
        assert!(state.request_deadline(&req).is_unlimited());
    }

    #[test]
    fn every_response_carries_a_trace_id() {
        let state = toy_state();
        for path in ["/healthz", "/v1/toy/stats", "/nope"] {
            let r = route(&state, &get(path));
            assert!(
                r.extra_headers
                    .iter()
                    .any(|(n, v)| *n == "X-Trace-Id" && v.len() == 16),
                "{path}: {:?}",
                r.extra_headers
            );
        }
    }

    #[test]
    fn traced_query_embeds_trace_and_bypasses_cache() {
        let state = toy_state();
        let plain = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(plain.status, 200);
        assert!(!plain.body.contains("\"trace\""), "{}", plain.body);
        let traced = route(&state, &get("/v1/toy/diameter?trace=1"));
        assert_eq!(traced.status, 200);
        assert!(
            traced.body.contains("\"trace\":{\"id\":\""),
            "{}",
            traced.body
        );
        assert!(traced.body.contains("\"total_us\":"), "{}", traced.body);
        assert!(traced.body.contains("msbfs.batch"), "{}", traced.body);
        // The plain request warmed the cache; the traced one bypassed
        // both lookup and insert, so no hit was recorded.
        let cs = state.cache.stats();
        assert_eq!(cs.hits, 0, "{cs:?}");
        assert_eq!(cs.misses, 1, "{cs:?}");
        assert_eq!(cs.insertions, 1, "{cs:?}");
    }

    #[test]
    fn x_trace_header_also_opts_in() {
        let state = toy_state();
        let req = with_header(get("/v1/toy/stats"), "x-trace", "1");
        let r = route(&state, &req);
        assert!(r.body.contains("\"trace\":{\"id\":\""), "{}", r.body);
    }

    #[test]
    fn slowlog_retains_query_traces_but_not_probes() {
        let state = toy_state();
        let _ = route(&state, &get("/v1/toy/diameter"));
        let _ = route(&state, &get("/healthz"));
        let _ = route(&state, &get("/metrics"));
        let r = route(&state, &get("/debug/slowlog"));
        assert_eq!(r.status, 200);
        assert!(
            r.body.starts_with("{\"schema\":\"hg-slowlog/1\""),
            "{}",
            r.body
        );
        assert!(r.body.contains("\"endpoint\":\"diameter\""), "{}", r.body);
        assert!(!r.body.contains("\"endpoint\":\"healthz\""), "{}", r.body);
        assert!(!r.body.contains("\"endpoint\":\"metrics\""), "{}", r.body);
    }

    #[test]
    fn cached_answer_bypasses_the_deadline() {
        // A cached 200 is served even under a tight deadline — the
        // budget bounds *compute*, and a hit costs none. (The 504 path
        // itself is deterministic in the query-layer tests.)
        let state = toy_state();
        let ok = route(&state, &get("/v1/toy/diameter"));
        assert_eq!(ok.status, 200);
        let req = with_header(get("/v1/toy/diameter"), "x-deadline-ms", "1");
        let again = route(&state, &req);
        assert_eq!(again.status, 200, "cache hit should bypass the deadline");
        assert_eq!(again.body, ok.body);
    }
}
