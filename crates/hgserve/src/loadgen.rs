//! Concurrent HTTP load generator for `hgserve`, used by `hg loadgen`
//! for manual benchmarking and by the end-to-end test for a mixed
//! workload with correctness assertions.
//!
//! Deterministic: worker `i` walks the weighted endpoint mix with its
//! own seeded LCG, so two runs with the same config issue the same
//! request sequences (timing aside). No external deps — the client is
//! a thin keep-alive wrapper over `std::net::TcpStream`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One weighted endpoint in the workload mix, e.g. `("stats", 3)`.
/// The endpoint is the path suffix under `/v1/{dataset}/`, optionally
/// with parameters (`kcore?k=2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEntry {
    pub endpoint: String,
    pub weight: u32,
}

/// Parse `stats=3,kcore?k=2=1,diameter=1` style mix specs: comma-split,
/// the portion after the **last** `=` is the weight.
pub fn parse_mix(spec: &str) -> Result<Vec<MixEntry>, String> {
    let mut mix = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (endpoint, weight) = part
            .rsplit_once('=')
            .ok_or_else(|| format!("mix entry `{part}` missing `=weight`"))?;
        let weight: u32 = weight
            .parse()
            .map_err(|e| format!("bad weight in `{part}`: {e}"))?;
        if endpoint.is_empty() || weight == 0 {
            return Err(format!(
                "mix entry `{part}` needs an endpoint and weight >= 1"
            ));
        }
        mix.push(MixEntry {
            endpoint: endpoint.to_string(),
            weight,
        });
    }
    if mix.is_empty() {
        return Err("empty mix".to_string());
    }
    Ok(mix)
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Dataset every query targets.
    pub dataset: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Weighted endpoint mix.
    pub mix: Vec<MixEntry>,
    /// When set, every request carries `X-Deadline-Ms: <ms>` and the
    /// report tallies the resulting 504s.
    pub deadline_ms: Option<u64>,
    /// Extra keep-alive connections opened before the query phase and
    /// held idle (no bytes sent) for the whole run — they exercise the
    /// event loop's parked-connection path. The report tallies how many
    /// connected, failed to connect, or were reset by the server.
    pub idle_connections: usize,
}

/// One tail-latency request: its latency and the server-assigned
/// trace id, so the matching trace can be pulled from
/// `GET /debug/slowlog` (or the request replayed with `?trace=1`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowSample {
    pub latency_us: u64,
    pub trace_id: String,
}

/// Outcome of one run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    pub sent: u64,
    /// 2xx responses with a parseable JSON body.
    pub ok: u64,
    /// Non-2xx HTTP responses (includes `shed` and `deadline_exceeded`).
    pub http_errors: u64,
    /// Connection-level failures.
    pub transport_errors: u64,
    /// 503 responses: the server's admission queue was full.
    pub shed: u64,
    /// 504 responses: the request's deadline fired mid-compute.
    pub deadline_exceeded: u64,
    pub elapsed: Duration,
    /// Sorted request latencies in microseconds.
    pub latencies_us: Vec<u64>,
    /// The p99-and-above outliers (slowest first, at most
    /// [`MAX_SLOW_SAMPLES`]) with their `X-Trace-Id`s.
    pub slowest: Vec<SlowSample>,
    /// `hgserve_cache_hits` delta over the run, when `/metrics` was
    /// reachable before and after.
    pub cache_hits_delta: Option<u64>,
    pub cache_misses_delta: Option<u64>,
    /// Idle keep-alive fleet ([`LoadgenConfig::idle_connections`]):
    /// how many were requested, actually connected, failed to connect,
    /// and were found closed or reset when probed after the run.
    pub idle_requested: u64,
    pub idle_connected: u64,
    pub idle_connect_errors: u64,
    pub idle_resets: u64,
}

/// Cap on [`LoadgenReport::slowest`].
pub const MAX_SLOW_SAMPLES: usize = 5;

impl LoadgenReport {
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (p / 100.0 * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    pub fn throughput_rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.sent as f64 / s
        }
    }

    /// Human-readable summary for the CLI.
    pub fn render_text(&self) -> String {
        let mean = if self.latencies_us.is_empty() {
            0.0
        } else {
            self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
        };
        let mut out = format!(
            "loadgen: {} requests in {:.3}s ({:.0} req/s)\n\
             responses: {} ok, {} http errors, {} transport errors\n\
             latency us: mean {:.0}, p50 {}, p95 {}, p99 {}, max {}\n",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            self.ok,
            self.http_errors,
            self.transport_errors,
            mean,
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0),
            self.latencies_us.last().copied().unwrap_or(0),
        );
        if self.shed > 0 || self.deadline_exceeded > 0 {
            let pct = |n: u64| {
                if self.sent == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / self.sent as f64
                }
            };
            out.push_str(&format!(
                "robustness: {} shed ({:.1}%), {} deadline exceeded ({:.1}%)\n",
                self.shed,
                pct(self.shed),
                self.deadline_exceeded,
                pct(self.deadline_exceeded),
            ));
        }
        if self.idle_requested > 0 {
            out.push_str(&format!(
                "idle connections: {} requested, {} connected, {} connect errors, {} resets\n",
                self.idle_requested,
                self.idle_connected,
                self.idle_connect_errors,
                self.idle_resets,
            ));
        }
        if !self.slowest.is_empty() {
            out.push_str("slowest traces:");
            for s in &self.slowest {
                out.push_str(&format!(" {}={}us", s.trace_id, s.latency_us));
            }
            out.push('\n');
        }
        if let (Some(h), Some(m)) = (self.cache_hits_delta, self.cache_misses_delta) {
            let total = h + m;
            let rate = if total == 0 {
                0.0
            } else {
                100.0 * h as f64 / total as f64
            };
            out.push_str(&format!(
                "cache: {h} hits, {m} misses ({rate:.1}% hit rate)\n"
            ));
        }
        out
    }

    /// Machine-readable one-line JSON summary for benchmark gating
    /// (`ci.sh --bench` extracts fields with `sed`).
    pub fn render_json(&self) -> String {
        let hit_rate = match (self.cache_hits_delta, self.cache_misses_delta) {
            (Some(h), Some(m)) if h + m > 0 => 100.0 * h as f64 / (h + m) as f64,
            _ => 0.0,
        };
        let mut w = hgobs::json::JsonWriter::new();
        w.begin_object();
        w.key("schema").string("hg-loadgen/2");
        w.key("sent").uint(self.sent);
        w.key("ok").uint(self.ok);
        w.key("http_errors").uint(self.http_errors);
        w.key("transport_errors").uint(self.transport_errors);
        w.key("shed").uint(self.shed);
        w.key("deadline_exceeded").uint(self.deadline_exceeded);
        w.key("elapsed_s").float(self.elapsed.as_secs_f64());
        w.key("throughput_rps").float(self.throughput_rps());
        w.key("p50_us").uint(self.percentile_us(50.0));
        w.key("p95_us").uint(self.percentile_us(95.0));
        w.key("p99_us").uint(self.percentile_us(99.0));
        w.key("max_us")
            .uint(self.latencies_us.last().copied().unwrap_or(0));
        w.key("cache_hit_rate_pct").float(hit_rate);
        w.key("idle_connections").begin_object();
        w.key("requested").uint(self.idle_requested);
        w.key("connected").uint(self.idle_connected);
        w.key("connect_errors").uint(self.idle_connect_errors);
        w.key("resets").uint(self.idle_resets);
        w.end_object();
        w.key("slowest").begin_array();
        for s in &self.slowest {
            w.begin_object();
            w.key("us").uint(s.latency_us);
            w.key("trace_id").string(&s.trace_id);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// A keep-alive HTTP/1.1 client for one connection.
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    deadline_ms: Option<u64>,
    last_trace_id: Option<String>,
}

impl Client {
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
            deadline_ms: None,
            last_trace_id: None,
        }
    }

    /// The `X-Trace-Id` header of the most recent response, if any.
    pub fn last_trace_id(&self) -> Option<&str> {
        self.last_trace_id.as_deref()
    }

    /// Send `X-Deadline-Ms: <ms>` with every subsequent request.
    pub fn with_deadline_ms(mut self, ms: Option<u64>) -> Client {
        self.deadline_ms = ms;
        self
    }

    fn connect(&mut self) -> Result<(), String> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    /// Issue `GET path`, reusing the connection; one reconnect attempt
    /// on failure. Returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> Result<(u16, String), String> {
        if self.stream.is_none() {
            self.connect()?;
        }
        match self.request("GET", path, "") {
            Ok(r) => Ok(r),
            Err(_) => {
                self.connect()?;
                self.request("GET", path, "")
            }
        }
    }

    /// Issue `POST path` with a text body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<(u16, String), String> {
        if self.stream.is_none() {
            self.connect()?;
        }
        match self.request("POST", path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.connect()?;
                self.request("POST", path, body)
            }
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let deadline_header = self
            .deadline_ms
            .map(|ms| format!("X-Deadline-Ms: {ms}\r\n"))
            .unwrap_or_default();
        let reader = self.stream.as_mut().ok_or("not connected")?;
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{deadline_header}\r\n{body}",
            self.addr,
            body.len(),
        );
        reader
            .get_mut()
            .write_all(raw.as_bytes())
            .map_err(|e| e.to_string())?;

        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(|e| e.to_string())?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line `{}`", status_line.trim()))?;

        let mut content_length = 0usize;
        let mut close = false;
        self.last_trace_id = None;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).map_err(|e| e.to_string())?;
            let h = h.trim();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().map_err(|e| format!("content-length: {e}"))?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if name == "x-trace-id" {
                    self.last_trace_id = Some(value.to_string());
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(|e| e.to_string())?;
        if close {
            self.stream = None;
        }
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// Fetch one `name value` line from `GET /metrics`.
pub fn fetch_metric(addr: &str, name: &str) -> Option<u64> {
    let (status, body) = Client::new(addr).get("/metrics").ok()?;
    if status != 200 {
        return None;
    }
    body.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        if n == name {
            v.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Fetch one dataset's load facts from `GET /datasets`: its storage
/// backing (`"owned"` / `"mmap"`), load time in microseconds, and
/// resident CSR bytes. `None` if the server is unreachable or the
/// dataset is not registered. Drives the CLI's machine-parseable
/// `LOAD=` startup line.
pub fn fetch_dataset_load(addr: &str, dataset: &str) -> Option<(String, u64, u64)> {
    let (status, body) = Client::new(addr).get("/datasets").ok()?;
    if status != 200 {
        return None;
    }
    // The /datasets body is flat and machine-generated; scrape the one
    // object for this dataset rather than growing a JSON parser.
    let needle = format!("\"name\":\"{dataset}\"");
    let start = body.find(&needle)?;
    let obj = &body[start..];
    let obj = &obj[..obj.find('}').unwrap_or(obj.len())];
    let find_u64 = |key: &str| -> Option<u64> {
        let k = format!("\"{key}\":");
        let i = obj.find(&k)? + k.len();
        let digits: String = obj[i..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    };
    let find_str = |key: &str| -> Option<String> {
        let k = format!("\"{key}\":\"");
        let i = obj.find(&k)? + k.len();
        let rest = &obj[i..];
        Some(rest[..rest.find('"')?].to_string())
    };
    Some((
        find_str("storage")?,
        find_u64("load_us")?,
        find_u64("resident_bytes")?,
    ))
}

/// Tiny deterministic LCG (Numerical Recipes constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// Run the workload and collect a report. A response counts as `ok`
/// when its status is 2xx and the body looks like a JSON object.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.concurrency == 0 || cfg.requests == 0 {
        return Err("concurrency and requests must be >= 1".to_string());
    }
    // Expand the weighted mix into a pick table.
    let mut table: Vec<&str> = Vec::new();
    for e in &cfg.mix {
        for _ in 0..e.weight {
            table.push(e.endpoint.as_str());
        }
    }
    if table.is_empty() {
        return Err("empty mix".to_string());
    }

    let hits_before = fetch_metric(&cfg.addr, "hgserve_cache_hits");
    let misses_before = fetch_metric(&cfg.addr, "hgserve_cache_misses");

    // Open the idle keep-alive fleet before the query phase and hold
    // it for the whole run: the sockets never send a byte, so every
    // one of them must be parked by the server's event loop at zero
    // worker cost while the live queries below are answered.
    let mut idle_connect_errors = 0u64;
    let idle_fleet: Vec<TcpStream> = (0..cfg.idle_connections)
        .filter_map(|_| match TcpStream::connect(&cfg.addr) {
            Ok(s) => Some(s),
            Err(_) => {
                idle_connect_errors += 1;
                None
            }
        })
        .collect();
    let idle_connected = idle_fleet.len() as u64;

    let ok = AtomicU64::new(0);
    let http_errors = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let started = Instant::now();

    let per_worker = cfg.requests.div_ceil(cfg.concurrency);
    let samples: Vec<Vec<(u64, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|w| {
                let table = &table;
                let ok = &ok;
                let http_errors = &http_errors;
                let transport_errors = &transport_errors;
                let shed = &shed;
                let deadline_exceeded = &deadline_exceeded;
                let budget = per_worker.min(cfg.requests.saturating_sub(w * per_worker));
                scope.spawn(move || {
                    let mut rng = Lcg(0x9e37_79b9 + w as u64);
                    let mut client = Client::new(&cfg.addr).with_deadline_ms(cfg.deadline_ms);
                    let mut lat = Vec::with_capacity(budget);
                    for _ in 0..budget {
                        let endpoint = table[(rng.next() as usize) % table.len()];
                        let path = format!("/v1/{}/{endpoint}", cfg.dataset);
                        let t0 = Instant::now();
                        match client.get(&path) {
                            Ok((status, body)) => {
                                lat.push((
                                    t0.elapsed().as_micros() as u64,
                                    client.last_trace_id().unwrap_or("").to_string(),
                                ));
                                if (200..300).contains(&status)
                                    && body.trim_start().starts_with('{')
                                {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    http_errors.fetch_add(1, Ordering::Relaxed);
                                    match status {
                                        503 => {
                                            shed.fetch_add(1, Ordering::Relaxed);
                                        }
                                        504 => {
                                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                        }
                                        _ => {}
                                    }
                                }
                            }
                            Err(_) => {
                                transport_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = started.elapsed();

    // Probe the fleet: a healthy idle keep-alive socket has nothing to
    // read (`WouldBlock`); EOF or a connection error means the server
    // dropped it mid-run.
    let mut idle_resets = 0u64;
    for conn in &idle_fleet {
        let alive = conn.set_nonblocking(true).is_ok()
            && matches!(
                (&*conn).read(&mut [0u8; 16]),
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
            );
        if !alive {
            idle_resets += 1;
        }
    }
    drop(idle_fleet);

    let mut samples: Vec<(u64, String)> = samples.into_iter().flatten().collect();
    samples.sort_unstable();
    let latencies_us: Vec<u64> = samples.iter().map(|(us, _)| *us).collect();
    // p99 tail with trace ids: the slowest requests at or above the p99
    // mark, slowest first — the ids to look up in `/debug/slowlog`.
    let p99 = {
        let tmp = LoadgenReport {
            latencies_us: latencies_us.clone(),
            ..LoadgenReport::default()
        };
        tmp.percentile_us(99.0)
    };
    let slowest: Vec<SlowSample> = samples
        .iter()
        .rev()
        .take_while(|(us, _)| *us >= p99)
        .take(MAX_SLOW_SAMPLES)
        .filter(|(_, id)| !id.is_empty())
        .map(|(us, id)| SlowSample {
            latency_us: *us,
            trace_id: id.clone(),
        })
        .collect();

    let hits_after = fetch_metric(&cfg.addr, "hgserve_cache_hits");
    let misses_after = fetch_metric(&cfg.addr, "hgserve_cache_misses");

    Ok(LoadgenReport {
        sent: (ok.load(Ordering::Relaxed)
            + http_errors.load(Ordering::Relaxed)
            + transport_errors.load(Ordering::Relaxed)),
        ok: ok.load(Ordering::Relaxed),
        http_errors: http_errors.load(Ordering::Relaxed),
        transport_errors: transport_errors.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        elapsed,
        latencies_us,
        slowest,
        cache_hits_delta: hits_before
            .zip(hits_after)
            .map(|(b, a)| a.saturating_sub(b)),
        cache_misses_delta: misses_before
            .zip(misses_after)
            .map(|(b, a)| a.saturating_sub(b)),
        idle_requested: cfg.idle_connections as u64,
        idle_connected,
        idle_connect_errors,
        idle_resets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parsing() {
        let mix = parse_mix("stats=3,kcore?k=2=1,diameter=1").unwrap();
        assert_eq!(
            mix,
            vec![
                MixEntry {
                    endpoint: "stats".into(),
                    weight: 3
                },
                MixEntry {
                    endpoint: "kcore?k=2".into(),
                    weight: 1
                },
                MixEntry {
                    endpoint: "diameter".into(),
                    weight: 1
                },
            ]
        );
        assert!(parse_mix("").is_err());
        assert!(parse_mix("stats").is_err());
        assert!(parse_mix("stats=0").is_err());
        assert!(parse_mix("stats=x").is_err());
    }

    #[test]
    fn lcg_is_deterministic() {
        let seq = |seed: u64| {
            let mut r = Lcg(seed);
            (0..8).map(|_| r.next()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn report_percentiles_and_render() {
        let r = LoadgenReport {
            sent: 4,
            ok: 4,
            elapsed: Duration::from_millis(100),
            latencies_us: vec![10, 20, 30, 1000],
            cache_hits_delta: Some(3),
            cache_misses_delta: Some(1),
            ..LoadgenReport::default()
        };
        assert_eq!(r.percentile_us(50.0), 30);
        assert_eq!(r.percentile_us(100.0), 1000);
        assert!((r.throughput_rps() - 40.0).abs() < 1.0);
        let text = r.render_text();
        assert!(text.contains("4 requests"));
        assert!(text.contains("75.0% hit rate"));
        assert!(!text.contains("robustness"), "{text}");
    }

    #[test]
    fn report_slowest_samples_render() {
        let r = LoadgenReport {
            sent: 3,
            ok: 3,
            latencies_us: vec![10, 20, 5000],
            slowest: vec![SlowSample {
                latency_us: 5000,
                trace_id: "00000000deadbeef".into(),
            }],
            ..LoadgenReport::default()
        };
        let text = r.render_text();
        assert!(
            text.contains("slowest traces: 00000000deadbeef=5000us"),
            "{text}"
        );
        let json = r.render_json();
        assert!(
            json.contains("\"slowest\":[{\"us\":5000,\"trace_id\":\"00000000deadbeef\"}]"),
            "{json}"
        );
    }

    #[test]
    fn report_shed_and_deadline_rates() {
        let r = LoadgenReport {
            sent: 10,
            ok: 7,
            http_errors: 3,
            shed: 2,
            deadline_exceeded: 1,
            elapsed: Duration::from_millis(50),
            latencies_us: vec![100, 200, 300],
            ..LoadgenReport::default()
        };
        let text = r.render_text();
        assert!(
            text.contains("robustness: 2 shed (20.0%), 1 deadline exceeded (10.0%)"),
            "{text}"
        );
        let json = r.render_json();
        assert!(json.contains("\"schema\":\"hg-loadgen/2\""), "{json}");
        assert!(json.contains("\"shed\":2"), "{json}");
        assert!(json.contains("\"deadline_exceeded\":1"), "{json}");
        assert!(json.contains("\"p99_us\":300"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn report_idle_connection_stats() {
        let quiet = LoadgenReport {
            sent: 1,
            ok: 1,
            latencies_us: vec![10],
            ..LoadgenReport::default()
        };
        assert!(
            !quiet.render_text().contains("idle connections"),
            "no idle line unless a fleet was requested"
        );
        assert!(
            quiet.render_json().contains(
                "\"idle_connections\":{\"requested\":0,\"connected\":0,\
                 \"connect_errors\":0,\"resets\":0}"
            ),
            "{}",
            quiet.render_json()
        );

        let r = LoadgenReport {
            sent: 1,
            ok: 1,
            latencies_us: vec![10],
            idle_requested: 2048,
            idle_connected: 2047,
            idle_connect_errors: 1,
            idle_resets: 3,
            ..LoadgenReport::default()
        };
        let text = r.render_text();
        assert!(
            text.contains(
                "idle connections: 2048 requested, 2047 connected, 1 connect errors, 3 resets"
            ),
            "{text}"
        );
        let json = r.render_json();
        assert!(
            json.contains(
                "\"idle_connections\":{\"requested\":2048,\"connected\":2047,\
                 \"connect_errors\":1,\"resets\":3}"
            ),
            "{json}"
        );
    }
}
