//! Readiness polling for the server's connection event loop.
//!
//! On Linux this is raw `epoll(7)` — edge-triggered, with an
//! `eventfd(2)` waker so worker threads (and the SIGINT handler) can
//! interrupt a blocked `epoll_wait`. Every other unix target gets a
//! portable `poll(2)` backend with a self-pipe waker; non-unix targets
//! get a stub whose constructor fails, which [`crate::server::start`]
//! surfaces as a clean bind error. In the style of
//! `hypergraph::storage`'s mmap shim, the syscalls are declared
//! directly with `extern "C"` — the workspace stays free of a libc
//! dependency.
//!
//! The interface is deliberately small: register a file descriptor
//! under a caller-chosen token, adjust its interest set, and block in
//! [`Poller::wait`] for readiness [`Event`]s. Waker wakeups are
//! consumed internally and surface as a plain (possibly event-free)
//! return from `wait`, so the caller's loop re-checks its own queues
//! after every return — the same discipline both edge- and
//! level-triggered backends need.

use std::io;
use std::sync::Arc;
use std::time::Duration;

#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

/// Token values at or above this are reserved for the poller itself
/// (the waker); callers must stay below.
pub const RESERVED_TOKEN: u64 = u64::MAX - 15;

const WAKER_TOKEN: u64 = u64::MAX;

/// Which readiness directions a registration asks for. Read interest
/// also reports peer hangup on both backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report. `readable`/`writable` include error and
/// hangup conditions so a stalled connection always makes progress
/// (the subsequent read/write observes the actual error).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer closed its end (or the socket errored): the connection
    /// should be drained and torn down.
    pub hangup: bool,
}

/// Syscalls shared by both unix backends.
#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// An owned waker file descriptor, closed on last drop. Shared by the
/// [`Poller`] and every [`Waker`] clone so a wake can never hit a
/// recycled descriptor after the loop exits.
#[cfg(unix)]
struct WakeFd(RawFd);

#[cfg(unix)]
impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.0);
        }
    }
}

/// Handle for interrupting [`Poller::wait`] from another thread.
/// Cheap to clone; safe to use from worker threads.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    fd: Arc<WakeFd>,
    #[cfg(not(unix))]
    _unused: Arc<()>,
}

impl Waker {
    /// Make the next (or current) `wait` return promptly.
    pub fn wake(&self) {
        #[cfg(unix)]
        wake_fd(self.fd.0);
    }

    /// The raw descriptor behind this waker, for contexts that cannot
    /// hold the `Waker` itself (the SIGINT handler stores it in an
    /// atomic and calls [`wake_fd`]).
    pub fn raw_fd(&self) -> RawFd {
        #[cfg(unix)]
        {
            self.fd.0
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }
}

/// Wake a raw waker descriptor: one `write(2)`, which is
/// async-signal-safe — this is the only call a signal handler makes.
/// Writing a `u64` of 1 satisfies both backends (an eventfd requires
/// exactly eight bytes; a pipe just buffers them).
#[cfg(unix)]
pub fn wake_fd(fd: RawFd) {
    if fd < 0 {
        return;
    }
    let one: u64 = 1;
    unsafe {
        sys::write(fd, (&one as *const u64).cast(), 8);
    }
}

#[cfg(not(unix))]
pub fn wake_fd(_fd: RawFd) {}

/// Drain a nonblocking waker fd until empty; wakeups coalesce.
#[cfg(unix)]
fn drain_fd(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        let n = unsafe { sys::read(fd, buf.as_mut_ptr(), buf.len()) };
        if n < buf.len() as isize {
            return;
        }
    }
}

/// Millisecond timeout for `epoll_wait`/`poll`: `None` blocks forever
/// (-1); sub-millisecond durations round *up* so timer deadlines are
/// never spun on at zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    }
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
mod epoll_sys {
    // Layout matches the kernel ABI: packed on x86 only, like the
    // uapi headers declare it.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, max: i32, timeout_ms: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    pub const EFD_NONBLOCK: i32 = 0x800;
    pub const EFD_CLOEXEC: i32 = 0x80000;
}

/// Edge-triggered `epoll` poller. Registrations carry `EPOLLET`, so
/// the event loop must always drain reads and writes to `WouldBlock`
/// before the next `wait` — a readiness edge is reported once.
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: RawFd,
    waker: Waker,
    buf: Vec<epoll_sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        use epoll_sys::*;
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wfd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if wfd < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLET,
            data: WAKER_TOKEN,
        };
        if unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wfd, &mut ev) } != 0 {
            let err = io::Error::last_os_error();
            unsafe {
                sys::close(wfd);
                sys::close(epfd);
            }
            return Err(err);
        }
        Ok(Poller {
            epfd,
            waker: Waker {
                fd: Arc::new(WakeFd(wfd)),
            },
            buf: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    fn events_mask(interest: Interest) -> u32 {
        use epoll_sys::*;
        let mut ev = EPOLLET | EPOLLRDHUP;
        if interest.readable {
            ev |= EPOLLIN;
        }
        if interest.writable {
            ev |= EPOLLOUT;
        }
        ev
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: Self::events_mask(interest),
            data: token,
        };
        if unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` (edge-triggered).
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < RESERVED_TOKEN);
        self.ctl(epoll_sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Re-arm `fd` with a new interest set (and/or token).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < RESERVED_TOKEN);
        self.ctl(epoll_sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Remove `fd` from the interest set (must precede closing it).
    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        // A dummy event for kernels that reject a null pointer on DEL.
        self.ctl(epoll_sys::EPOLL_CTL_DEL, fd, 0, Interest::READ)
    }

    /// Block until readiness, timeout, or a wake. `events` is cleared
    /// and refilled; waker wakeups and signal interrupts return with
    /// whatever (possibly zero) events arrived.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use epoll_sys::*;
        events.clear();
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        let n = n as usize;
        for i in 0..n {
            // Copy out of the (possibly packed) kernel struct first.
            let (mask, token) = {
                let e = self.buf[i];
                (e.events, e.data)
            };
            if token == WAKER_TOKEN {
                drain_fd(self.waker.fd.0);
                continue;
            }
            events.push(Event {
                token,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                writable: mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                hangup: mask & (EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        if n == self.buf.len() {
            // Saturated: double capacity so a big fleet drains in one
            // syscall next round.
            let len = self.buf.len() * 2;
            self.buf.resize(len, EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// ----------------------------------------------------------- poll(2)

#[cfg(all(unix, not(target_os = "linux")))]
mod poll_sys {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout_ms: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    // Identical across the unix targets this repo builds on.
    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    // O_NONBLOCK is 0x800 on Linux but 0x4 on the BSD family this
    // fallback actually serves (macOS and friends).
    pub const O_NONBLOCK: i32 = 0x4;
}

/// Level-triggered `poll(2)` poller with a self-pipe waker: the
/// portable fallback for unix targets without epoll. Registrations
/// live in a vector scanned per wait — fine for the fleet sizes a dev
/// laptop throws at it; Linux production serving uses the epoll
/// backend above.
#[cfg(all(unix, not(target_os = "linux")))]
pub struct Poller {
    fds: Vec<(RawFd, u64, Interest)>,
    wake_rx: WakeFd,
    waker: Waker,
    buf: Vec<poll_sys::PollFd>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        use poll_sys::*;
        let mut ends = [0i32; 2];
        if unsafe { pipe(ends.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in ends {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    sys::close(ends[0]);
                    sys::close(ends[1]);
                }
                return Err(err);
            }
        }
        Ok(Poller {
            fds: Vec::new(),
            wake_rx: WakeFd(ends[0]),
            waker: Waker {
                fd: Arc::new(WakeFd(ends[1])),
            },
            buf: Vec::new(),
        })
    }

    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < RESERVED_TOKEN);
        self.fds.push((fd, token, interest));
        Ok(())
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        for slot in &mut self.fds {
            if slot.0 == fd {
                *slot = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        self.fds.retain(|&(f, _, _)| f != fd);
        Ok(())
    }

    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use poll_sys::*;
        events.clear();
        self.buf.clear();
        self.buf.push(PollFd {
            fd: self.wake_rx.0,
            events: POLLIN,
            revents: 0,
        });
        for &(fd, _, interest) in &self.fds {
            let mut ev = 0i16;
            if interest.readable {
                ev |= POLLIN;
            }
            if interest.writable {
                ev |= POLLOUT;
            }
            self.buf.push(PollFd {
                fd,
                events: ev,
                revents: 0,
            });
        }
        let n = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len(), timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        if self.buf[0].revents & POLLIN != 0 {
            drain_fd(self.wake_rx.0);
        }
        for (slot, &(_, token, _)) in self.buf[1..].iter().zip(&self.fds) {
            let r = slot.revents;
            if r == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: r & (POLLIN | POLLERR | POLLHUP) != 0,
                writable: r & (POLLOUT | POLLERR | POLLHUP) != 0,
                hangup: r & (POLLERR | POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------- non-unix

/// Stub for non-unix targets: construction fails, so the server
/// reports readiness serving as unsupported instead of half-working.
#[cfg(not(unix))]
pub struct Poller;

#[cfg(not(unix))]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling requires a unix target",
        ))
    }

    pub fn waker(&self) -> Waker {
        Waker {
            _unused: Arc::new(()),
        }
    }

    pub fn add(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        unreachable!("Poller::new always fails on non-unix targets")
    }

    pub fn modify(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        unreachable!("Poller::new always fails on non-unix targets")
    }

    pub fn delete(&mut self, _fd: RawFd) -> io::Result<()> {
        unreachable!("Poller::new always fails on non-unix targets")
    }

    pub fn wait(&mut self, _events: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<()> {
        unreachable!("Poller::new always fails on non-unix targets")
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_rounds_up_and_blocks_map_to_minus_one() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no event before a client connects");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );
    }

    #[test]
    fn connected_stream_reports_data_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .add(served.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let mut readable = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.readable) {
                readable = true;
                break;
            }
        }
        assert!(readable, "data must surface as readability");

        // Drain so the next edge is the FIN, then close the peer.
        let mut buf = [0u8; 16];
        let _ = std::io::Read::read(&mut &served, &mut buf);
        drop(client);
        let mut hangup = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.hangup) {
                hangup = true;
                break;
            }
        }
        assert!(hangup, "peer close must surface as hangup");
        poller.delete(served.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        // No registered fds and no timeout: only the wake can end this.
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "wake should interrupt promptly"
        );
        assert!(events.is_empty(), "waker is internal: {events:?}");
        handle.join().unwrap();

        // Coalesced wakes drain in one wait; the next wait times out.
        poller.waker().wake();
        poller.waker().wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let t1 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(t1.elapsed() >= Duration::from_millis(15), "drained waker");
    }

    #[test]
    fn raw_fd_wake_works_like_the_waker() {
        let mut poller = Poller::new().unwrap();
        let fd = poller.waker().raw_fd();
        assert!(fd >= 0);
        wake_fd(fd);
        let t0 = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10));
    }
}
