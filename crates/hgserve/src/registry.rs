//! In-memory dataset registry: named, immutable, epoch-versioned
//! hypergraphs shared across worker threads.
//!
//! Datasets arrive either from disk at startup (`--preload`) or over
//! `POST /datasets`. Re-posting a name bumps its **epoch**; result-cache
//! keys embed the epoch, so stale cached answers are never served for a
//! replaced dataset and simply age out of the LRU.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use hypergraph::{Hypergraph, Relabeling, StorageKind};

/// Input formats the registry can parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// hMETIS-style `.hgr` (the repo's native format).
    Hgr,
    /// Pajek `.net`; each graph edge becomes a 2-pin hyperedge.
    Pajek,
    /// MatrixMarket coordinate `.mtx`; rows become hyperedges over
    /// column vertices (the row-net model).
    MatrixMarket,
    /// Binary on-disk CSR `.hgb` — file-path loads only (mmap-served);
    /// not accepted as a `POST /datasets` text body.
    Hgb,
}

impl Format {
    /// Parse a format name (`hgr` | `pajek`/`net` | `mtx`/`matrixmarket`
    /// | `hgb`).
    pub fn from_name(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "hgr" => Some(Format::Hgr),
            "pajek" | "net" => Some(Format::Pajek),
            "mtx" | "matrixmarket" => Some(Format::MatrixMarket),
            "hgb" => Some(Format::Hgb),
            _ => None,
        }
    }

    /// Infer from a file extension.
    pub fn from_path(path: &str) -> Option<Format> {
        let ext = path.rsplit('.').next()?;
        Format::from_name(ext)
    }
}

/// One loaded dataset. Immutable once registered; replacement creates a
/// new `Dataset` under the same name with a higher epoch.
#[derive(Debug)]
pub struct Dataset {
    pub name: String,
    /// Bumped each time this name is (re)registered.
    pub epoch: u64,
    pub hypergraph: Hypergraph,
    /// Provenance: `file:<path>` or `upload`.
    pub source: String,
    /// When the registry runs with relabeling (`hg serve --relabel`),
    /// `hypergraph` stores vertices in BFS discovery order for
    /// cache-local kernel sweeps and this mapping translates ids at the
    /// response boundary. `None` means ids are stored as submitted.
    pub relabeling: Option<Arc<Relabeling>>,
    /// How the CSR arrays are backed: owned heap `Vec`s or an mmap'd
    /// read-only `.hgb` file (reported as `"owned"` / `"mmap"`).
    pub storage: StorageKind,
    /// Wall-clock microseconds spent loading this dataset (parse +
    /// relabel for text formats; O(header) open for mapped `.hgb`).
    pub load_us: u64,
}

impl Dataset {
    /// The prefix every result-cache key for this dataset uses.
    pub fn cache_prefix(&self) -> String {
        format!("{}@{}", self.name, self.epoch)
    }

    /// Bytes of CSR data this dataset holds in memory. For mapped
    /// datasets this is the mapped file length — an *upper bound* on
    /// resident pages, since the OS pages lazily.
    pub fn resident_bytes(&self) -> usize {
        self.hypergraph.resident_bytes()
    }
}

/// Thread-safe name → dataset map.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<HashMap<String, Arc<Dataset>>>,
    /// Apply a BFS-order vertex relabeling to every dataset at load.
    relabel: bool,
}

/// Parse `text` in `format` into a hypergraph. Error strings are
/// user-facing (served as 400 bodies) and carry line numbers where the
/// underlying parser provides them.
pub fn parse_text(format: Format, text: &str) -> Result<Hypergraph, String> {
    match format {
        Format::Hgr => hypergraph::io::read_hgr(text).map_err(|e| e.to_string()),
        Format::Pajek => {
            let (g, _labels) =
                graphcore::pajek::parse_net(text).map_err(|e| format!("pajek parse error: {e}"))?;
            let mut b = hypergraph::HypergraphBuilder::new(g.num_nodes());
            for (u, v) in g.edges() {
                b.add_edge([u.0, v.0]);
            }
            Ok(b.build())
        }
        Format::MatrixMarket => {
            let m = matrixmarket::parse_mtx(text).map_err(|e| e.to_string())?;
            Ok(matrixmarket::row_net(&m))
        }
        Format::Hgb => {
            Err("binary .hgb datasets are loaded from a file path, not a text body".to_string())
        }
    }
}

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
    {
        return Err(format!(
            "invalid dataset name `{name}` (use [A-Za-z0-9._-]+)"
        ));
    }
    Ok(())
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry that relabels every dataset at load: vertices are
    /// renumbered in BFS discovery order (seeded from the highest-degree
    /// vertex) so CSR neighbor runs are cache-local for MS-BFS and the
    /// k-core peel. External 1-based ids are translated back at the
    /// query boundary via [`Dataset::relabeling`].
    pub fn with_relabeling(relabel: bool) -> Self {
        Registry {
            relabel,
            ..Registry::default()
        }
    }

    /// Register `text` under `name`, replacing (and epoch-bumping) any
    /// existing dataset of that name.
    pub fn insert_text(
        &self,
        name: &str,
        format: Format,
        text: &str,
        source: &str,
    ) -> Result<Arc<Dataset>, String> {
        validate_name(name)?;
        let started = std::time::Instant::now();
        let parsed = parse_text(format, text)?;
        let (hypergraph, relabeling) = if self.relabel && parsed.num_vertices() > 0 {
            let r = Relabeling::bfs_order(&parsed);
            let relabeled = r.apply(&parsed);
            (relabeled, Some(Arc::new(r)))
        } else {
            (parsed, None)
        };
        let load_us = started.elapsed().as_micros() as u64;
        self.register(name, hypergraph, relabeling, source, load_us)
    }

    /// Load a file from disk; the dataset name is the file stem.
    /// `.hgb` files are opened via mmap (O(header)); text formats are
    /// read and parsed.
    pub fn load_file(&self, path: &str) -> Result<Arc<Dataset>, String> {
        let format = Format::from_path(path)
            .ok_or_else(|| format!("cannot infer format of `{path}` (.hgr/.net/.mtx/.hgb)"))?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a dataset name from `{path}`"))?
            .to_string();
        let source = format!("file:{path}");
        if format == Format::Hgb {
            let started = std::time::Instant::now();
            let ds = hypergraph::open_hgb(
                std::path::Path::new(path),
                hypergraph::HgbOpenOptions::default(),
            )
            .map_err(|e| format!("{path}: {e}"))?;
            // A baked-in relabeling travels with the file and wins; a
            // bare file under `--relabel` is relabeled here, which
            // rebuilds the CSR into owned storage (the zero-copy path
            // is to bake the relabeling at `hg convert --relabel`).
            let (hypergraph, relabeling) = match ds.relabeling {
                Some(r) => (ds.hypergraph, Some(Arc::new(r))),
                None if self.relabel && ds.hypergraph.num_vertices() > 0 => {
                    let r = Relabeling::bfs_order(&ds.hypergraph);
                    let relabeled = r.apply(&ds.hypergraph);
                    (relabeled, Some(Arc::new(r)))
                }
                None => (ds.hypergraph, None),
            };
            let load_us = started.elapsed().as_micros() as u64;
            return self.register(&stem, hypergraph, relabeling, &source, load_us);
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        self.insert_text(&stem, format, &text, &source)
    }

    /// Validate the name, bump the epoch, and publish the dataset.
    fn register(
        &self,
        name: &str,
        hypergraph: Hypergraph,
        relabeling: Option<Arc<Relabeling>>,
        source: &str,
        load_us: u64,
    ) -> Result<Arc<Dataset>, String> {
        validate_name(name)?;
        hgobs::hist!("serve.dataset_load_us", load_us);
        let storage = hypergraph.storage_kind();
        let mut inner = self.inner.write().unwrap();
        let epoch = inner.get(name).map_or(0, |d| d.epoch + 1);
        let ds = Arc::new(Dataset {
            name: name.to_string(),
            epoch,
            hypergraph,
            source: source.to_string(),
            relabeling,
            storage,
            load_us,
        });
        inner.insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }

    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `GET /datasets` body: every dataset with its shape and
    /// provenance, name-sorted for stable output.
    pub fn list_json(&self) -> String {
        let mut w = hgobs::json::JsonWriter::new();
        w.begin_object();
        w.key("datasets").begin_array();
        for name in self.names() {
            if let Some(d) = self.get(&name) {
                w.begin_object();
                w.key("name").string(&d.name);
                w.key("epoch").uint(d.epoch);
                w.key("vertices").uint(d.hypergraph.num_vertices() as u64);
                w.key("hyperedges").uint(d.hypergraph.num_edges() as u64);
                w.key("pins").uint(d.hypergraph.num_pins() as u64);
                w.key("storage_bytes")
                    .uint(d.hypergraph.storage_bytes() as u64);
                w.key("storage").string(d.storage.as_str());
                w.key("resident_bytes").uint(d.resident_bytes() as u64);
                w.key("load_us").uint(d.load_us);
                w.key("relabeled").raw(if d.relabeling.is_some() {
                    "true"
                } else {
                    "false"
                });
                w.key("source").string(&d.source);
                w.end_object();
            }
        }
        w.end_array();
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY_HGR: &str = "2 3\n1 2\n2 3\n";

    #[test]
    fn insert_get_and_epoch_bump() {
        let r = Registry::new();
        let d0 = r
            .insert_text("toy", Format::Hgr, TOY_HGR, "upload")
            .unwrap();
        assert_eq!(d0.epoch, 0);
        assert_eq!(d0.hypergraph.num_vertices(), 3);
        assert_eq!(d0.cache_prefix(), "toy@0");

        let d1 = r
            .insert_text("toy", Format::Hgr, "1 2\n1 2\n", "upload")
            .unwrap();
        assert_eq!(d1.epoch, 1);
        assert_eq!(r.get("toy").unwrap().hypergraph.num_edges(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn bad_hgr_reports_line_number() {
        let r = Registry::new();
        let err = r
            .insert_text("bad", Format::Hgr, "2 3\n1 2\n9\n", "upload")
            .unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(r.get("bad").is_none());
    }

    #[test]
    fn invalid_names_rejected() {
        let r = Registry::new();
        assert!(r.insert_text("", Format::Hgr, TOY_HGR, "u").is_err());
        assert!(r.insert_text("a/b", Format::Hgr, TOY_HGR, "u").is_err());
        assert!(r
            .insert_text("ok-name.v2", Format::Hgr, TOY_HGR, "u")
            .is_ok());
    }

    #[test]
    fn pajek_and_mtx_formats() {
        let r = Registry::new();
        let net = "*Vertices 3\n1 \"a\"\n2 \"b\"\n3 \"c\"\n*Edges\n1 2\n2 3\n";
        let d = r.insert_text("net", Format::Pajek, net, "u").unwrap();
        assert_eq!(d.hypergraph.num_vertices(), 3);
        assert_eq!(d.hypergraph.num_edges(), 2);
        assert_eq!(d.hypergraph.max_edge_degree(), 2);

        let mtx =
            "%%MatrixMarket matrix coordinate real general\n2 3 3\n1 1 1.0\n1 2 1.0\n2 3 1.0\n";
        let d = r
            .insert_text("mtx", Format::MatrixMarket, mtx, "u")
            .unwrap();
        assert_eq!(d.hypergraph.num_edges(), 2);
    }

    #[test]
    fn format_inference() {
        assert_eq!(Format::from_path("x/y/z.hgr"), Some(Format::Hgr));
        assert_eq!(Format::from_path("a.net"), Some(Format::Pajek));
        assert_eq!(Format::from_path("a.mtx"), Some(Format::MatrixMarket));
        assert_eq!(Format::from_path("a.csv"), None);
        assert_eq!(Format::from_name("PAJEK"), Some(Format::Pajek));
    }

    #[test]
    fn list_json_is_sorted_and_stable() {
        let r = Registry::new();
        r.insert_text("zz", Format::Hgr, TOY_HGR, "u").unwrap();
        r.insert_text("aa", Format::Hgr, TOY_HGR, "u").unwrap();
        let j = r.list_json();
        assert!(j.find("\"aa\"").unwrap() < j.find("\"zz\"").unwrap());
        assert!(j.contains("\"vertices\":3"));
        assert!(j.contains("\"storage\":\"owned\""), "{j}");
        assert!(j.contains("\"resident_bytes\":"), "{j}");
        assert!(j.contains("\"load_us\":"), "{j}");
    }

    #[cfg(unix)]
    #[test]
    fn hgb_file_loads_as_mmap() {
        let h = parse_text(Format::Hgr, TOY_HGR).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hgserve-reg-{}.hgb", std::process::id()));
        hypergraph::write_hgb_file(&h, None, &path).unwrap();

        let r = Registry::new();
        let ds = r.load_file(path.to_str().unwrap()).unwrap();
        assert_eq!(ds.storage, StorageKind::Mapped);
        assert_eq!(ds.hypergraph.num_vertices(), 3);
        assert_eq!(
            ds.resident_bytes(),
            std::fs::metadata(&path).unwrap().len() as usize
        );
        assert!(r.list_json().contains("\"storage\":\"mmap\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn hgb_baked_relabeling_wins_over_flag() {
        let h = parse_text(Format::Hgr, TOY_HGR).unwrap();
        let rel = Relabeling::bfs_order(&h);
        let g = rel.apply(&h);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hgserve-rel-{}.hgb", std::process::id()));
        hypergraph::write_hgb_file(&g, Some(&rel), &path).unwrap();

        let r = Registry::with_relabeling(true);
        let ds = r.load_file(path.to_str().unwrap()).unwrap();
        // The file's relabeling is used directly — storage stays mapped.
        assert_eq!(ds.storage, StorageKind::Mapped);
        assert!(ds.relabeling.is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hgb_rejected_as_text_body() {
        let r = Registry::new();
        let err = r
            .insert_text("x", Format::Hgb, "junk", "upload")
            .unwrap_err();
        assert!(err.contains("file path"), "{err}");
    }
}
