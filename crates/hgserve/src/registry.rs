//! In-memory dataset registry: named, immutable, epoch-versioned
//! hypergraphs shared across worker threads.
//!
//! Datasets arrive either from disk at startup (`--preload`) or over
//! `POST /datasets`. Re-posting a name bumps its **epoch**; result-cache
//! keys embed the epoch, so stale cached answers are never served for a
//! replaced dataset and simply age out of the LRU.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use hypergraph::{Hypergraph, Relabeling};

/// Input formats the registry can parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// hMETIS-style `.hgr` (the repo's native format).
    Hgr,
    /// Pajek `.net`; each graph edge becomes a 2-pin hyperedge.
    Pajek,
    /// MatrixMarket coordinate `.mtx`; rows become hyperedges over
    /// column vertices (the row-net model).
    MatrixMarket,
}

impl Format {
    /// Parse a format name (`hgr` | `pajek`/`net` | `mtx`/`matrixmarket`).
    pub fn from_name(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "hgr" => Some(Format::Hgr),
            "pajek" | "net" => Some(Format::Pajek),
            "mtx" | "matrixmarket" => Some(Format::MatrixMarket),
            _ => None,
        }
    }

    /// Infer from a file extension.
    pub fn from_path(path: &str) -> Option<Format> {
        let ext = path.rsplit('.').next()?;
        Format::from_name(ext)
    }
}

/// One loaded dataset. Immutable once registered; replacement creates a
/// new `Dataset` under the same name with a higher epoch.
#[derive(Debug)]
pub struct Dataset {
    pub name: String,
    /// Bumped each time this name is (re)registered.
    pub epoch: u64,
    pub hypergraph: Hypergraph,
    /// Provenance: `file:<path>` or `upload`.
    pub source: String,
    /// When the registry runs with relabeling (`hg serve --relabel`),
    /// `hypergraph` stores vertices in BFS discovery order for
    /// cache-local kernel sweeps and this mapping translates ids at the
    /// response boundary. `None` means ids are stored as submitted.
    pub relabeling: Option<Arc<Relabeling>>,
}

impl Dataset {
    /// The prefix every result-cache key for this dataset uses.
    pub fn cache_prefix(&self) -> String {
        format!("{}@{}", self.name, self.epoch)
    }
}

/// Thread-safe name → dataset map.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<HashMap<String, Arc<Dataset>>>,
    /// Apply a BFS-order vertex relabeling to every dataset at load.
    relabel: bool,
}

/// Parse `text` in `format` into a hypergraph. Error strings are
/// user-facing (served as 400 bodies) and carry line numbers where the
/// underlying parser provides them.
pub fn parse_text(format: Format, text: &str) -> Result<Hypergraph, String> {
    match format {
        Format::Hgr => hypergraph::io::read_hgr(text).map_err(|e| e.to_string()),
        Format::Pajek => {
            let (g, _labels) =
                graphcore::pajek::parse_net(text).map_err(|e| format!("pajek parse error: {e}"))?;
            let mut b = hypergraph::HypergraphBuilder::new(g.num_nodes());
            for (u, v) in g.edges() {
                b.add_edge([u.0, v.0]);
            }
            Ok(b.build())
        }
        Format::MatrixMarket => {
            let m = matrixmarket::parse_mtx(text).map_err(|e| e.to_string())?;
            Ok(matrixmarket::row_net(&m))
        }
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry that relabels every dataset at load: vertices are
    /// renumbered in BFS discovery order (seeded from the highest-degree
    /// vertex) so CSR neighbor runs are cache-local for MS-BFS and the
    /// k-core peel. External 1-based ids are translated back at the
    /// query boundary via [`Dataset::relabeling`].
    pub fn with_relabeling(relabel: bool) -> Self {
        Registry {
            relabel,
            ..Registry::default()
        }
    }

    /// Register `text` under `name`, replacing (and epoch-bumping) any
    /// existing dataset of that name.
    pub fn insert_text(
        &self,
        name: &str,
        format: Format,
        text: &str,
        source: &str,
    ) -> Result<Arc<Dataset>, String> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
        {
            return Err(format!(
                "invalid dataset name `{name}` (use [A-Za-z0-9._-]+)"
            ));
        }
        let parsed = parse_text(format, text)?;
        let (hypergraph, relabeling) = if self.relabel && parsed.num_vertices() > 0 {
            let r = Relabeling::bfs_order(&parsed);
            let relabeled = r.apply(&parsed);
            (relabeled, Some(Arc::new(r)))
        } else {
            (parsed, None)
        };
        let mut inner = self.inner.write().unwrap();
        let epoch = inner.get(name).map_or(0, |d| d.epoch + 1);
        let ds = Arc::new(Dataset {
            name: name.to_string(),
            epoch,
            hypergraph,
            source: source.to_string(),
            relabeling,
        });
        inner.insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }

    /// Load a file from disk; the dataset name is the file stem.
    pub fn load_file(&self, path: &str) -> Result<Arc<Dataset>, String> {
        let format = Format::from_path(path)
            .ok_or_else(|| format!("cannot infer format of `{path}` (.hgr/.net/.mtx)"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a dataset name from `{path}`"))?;
        self.insert_text(stem, format, &text, &format!("file:{path}"))
    }

    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `GET /datasets` body: every dataset with its shape and
    /// provenance, name-sorted for stable output.
    pub fn list_json(&self) -> String {
        let mut w = hgobs::json::JsonWriter::new();
        w.begin_object();
        w.key("datasets").begin_array();
        for name in self.names() {
            if let Some(d) = self.get(&name) {
                w.begin_object();
                w.key("name").string(&d.name);
                w.key("epoch").uint(d.epoch);
                w.key("vertices").uint(d.hypergraph.num_vertices() as u64);
                w.key("hyperedges").uint(d.hypergraph.num_edges() as u64);
                w.key("pins").uint(d.hypergraph.num_pins() as u64);
                w.key("storage_bytes")
                    .uint(d.hypergraph.storage_bytes() as u64);
                w.key("relabeled").raw(if d.relabeling.is_some() {
                    "true"
                } else {
                    "false"
                });
                w.key("source").string(&d.source);
                w.end_object();
            }
        }
        w.end_array();
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY_HGR: &str = "2 3\n1 2\n2 3\n";

    #[test]
    fn insert_get_and_epoch_bump() {
        let r = Registry::new();
        let d0 = r
            .insert_text("toy", Format::Hgr, TOY_HGR, "upload")
            .unwrap();
        assert_eq!(d0.epoch, 0);
        assert_eq!(d0.hypergraph.num_vertices(), 3);
        assert_eq!(d0.cache_prefix(), "toy@0");

        let d1 = r
            .insert_text("toy", Format::Hgr, "1 2\n1 2\n", "upload")
            .unwrap();
        assert_eq!(d1.epoch, 1);
        assert_eq!(r.get("toy").unwrap().hypergraph.num_edges(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn bad_hgr_reports_line_number() {
        let r = Registry::new();
        let err = r
            .insert_text("bad", Format::Hgr, "2 3\n1 2\n9\n", "upload")
            .unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(r.get("bad").is_none());
    }

    #[test]
    fn invalid_names_rejected() {
        let r = Registry::new();
        assert!(r.insert_text("", Format::Hgr, TOY_HGR, "u").is_err());
        assert!(r.insert_text("a/b", Format::Hgr, TOY_HGR, "u").is_err());
        assert!(r
            .insert_text("ok-name.v2", Format::Hgr, TOY_HGR, "u")
            .is_ok());
    }

    #[test]
    fn pajek_and_mtx_formats() {
        let r = Registry::new();
        let net = "*Vertices 3\n1 \"a\"\n2 \"b\"\n3 \"c\"\n*Edges\n1 2\n2 3\n";
        let d = r.insert_text("net", Format::Pajek, net, "u").unwrap();
        assert_eq!(d.hypergraph.num_vertices(), 3);
        assert_eq!(d.hypergraph.num_edges(), 2);
        assert_eq!(d.hypergraph.max_edge_degree(), 2);

        let mtx =
            "%%MatrixMarket matrix coordinate real general\n2 3 3\n1 1 1.0\n1 2 1.0\n2 3 1.0\n";
        let d = r
            .insert_text("mtx", Format::MatrixMarket, mtx, "u")
            .unwrap();
        assert_eq!(d.hypergraph.num_edges(), 2);
    }

    #[test]
    fn format_inference() {
        assert_eq!(Format::from_path("x/y/z.hgr"), Some(Format::Hgr));
        assert_eq!(Format::from_path("a.net"), Some(Format::Pajek));
        assert_eq!(Format::from_path("a.mtx"), Some(Format::MatrixMarket));
        assert_eq!(Format::from_path("a.csv"), None);
        assert_eq!(Format::from_name("PAJEK"), Some(Format::Pajek));
    }

    #[test]
    fn list_json_is_sorted_and_stable() {
        let r = Registry::new();
        r.insert_text("zz", Format::Hgr, TOY_HGR, "u").unwrap();
        r.insert_text("aa", Format::Hgr, TOY_HGR, "u").unwrap();
        let j = r.list_json();
        assert!(j.find("\"aa\"").unwrap() < j.find("\"zz\"").unwrap());
        assert!(j.contains("\"vertices\":3"));
    }
}
