//! The queries the server can answer, their parameter parsing, their
//! canonical cache-key form, and their execution against a hypergraph.
//!
//! Execution is deliberately independent of HTTP: `Query::run` takes a
//! `&Hypergraph` and returns the JSON body. The equivalence proptest
//! (cache-on vs cache-off) and the CLI reuse it directly.

use std::sync::Arc;

use hgobs::json::JsonWriter;
use hgobs::{Deadline, DeadlineExceeded, TraceCtx};
use hypergraph::{Hypergraph, Relabeling, VertexId};

/// A parsed, validated analytics query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Structural summary: sizes, max degrees, component count.
    Stats,
    /// Vertex- and hyperedge-degree histograms.
    Degrees,
    /// Connected components with per-component sizes.
    Components,
    /// `k`-core; `None` means the maximum core.
    KCore { k: Option<u32> },
    /// Shortest hypergraph distance between two vertices (1-based ids).
    Distance { from: u32, to: u32 },
    /// Full BFS sweep: diameter + average path length.
    Diameter,
    /// Least-squares power-law fit of the vertex degree histogram.
    PowerLaw,
    /// Greedy unit-weight vertex cover.
    Cover,
}

/// A query that could not be built from the request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryError {
    /// HTTP status the server should answer with (400 or 404).
    pub status: u16,
    pub message: String,
}

impl QueryError {
    fn bad(message: impl Into<String>) -> Self {
        QueryError {
            status: 400,
            message: message.into(),
        }
    }
}

impl From<DeadlineExceeded> for QueryError {
    /// A query that outran its deadline answers `504 Gateway Timeout`
    /// with the partial-work report in the message.
    fn from(e: DeadlineExceeded) -> Self {
        QueryError {
            status: 504,
            message: e.to_string(),
        }
    }
}

/// Execution options threaded from the server into the algorithms.
#[derive(Clone, Debug, Default)]
pub struct ExecOpts {
    /// Cooperative deadline checked inside every heavy loop; the
    /// default (unlimited) never fires.
    pub deadline: Deadline,
    /// Route the heavy endpoints (diameter, kcore) through the
    /// `parcore` parallel kernels. The server enables this for large
    /// datasets so a deadline-bounded sweep still makes maximal
    /// progress before the budget runs out.
    pub parallel: bool,
    /// Request-scoped trace context. [`Query::run_opts`] attaches it to
    /// the deadline it hands the kernels, so every instrumented phase
    /// (MS-BFS batches, k-core peel levels, overlap shards) lands in
    /// this request's event list without per-kernel plumbing. The
    /// default is disabled: a branch per phase, no allocation.
    pub trace: TraceCtx,
    /// Set when the dataset was stored under a BFS-order vertex
    /// relabeling (`hg serve --relabel`): incoming 1-based ids are
    /// mapped into the internal order and id-bearing responses
    /// (`kcore`, `cover`) are mapped back, so clients always speak the
    /// original numbering.
    pub relabel: Option<Arc<Relabeling>>,
}

/// Endpoint names servable under `/v1/{dataset}/…`, in docs order.
pub const ENDPOINTS: &[&str] = &[
    "stats",
    "degrees",
    "components",
    "kcore",
    "distance",
    "diameter",
    "powerlaw",
    "cover",
];

impl Query {
    /// The endpoint path segment this query answers.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Query::Stats => "stats",
            Query::Degrees => "degrees",
            Query::Components => "components",
            Query::KCore { .. } => "kcore",
            Query::Distance { .. } => "distance",
            Query::Diameter => "diameter",
            Query::PowerLaw => "powerlaw",
            Query::Cover => "cover",
        }
    }

    /// Build a query from an endpoint segment and a parameter lookup.
    pub fn parse(
        endpoint: &str,
        param: impl Fn(&str) -> Option<String>,
    ) -> Result<Query, QueryError> {
        let parse_u32 = |name: &str| -> Result<Option<u32>, QueryError> {
            match param(name) {
                None => Ok(None),
                Some(s) => s
                    .parse::<u32>()
                    .map(Some)
                    .map_err(|e| QueryError::bad(format!("bad `{name}` parameter `{s}`: {e}"))),
            }
        };
        match endpoint {
            "stats" => Ok(Query::Stats),
            "degrees" => Ok(Query::Degrees),
            "components" => Ok(Query::Components),
            "kcore" => Ok(Query::KCore { k: parse_u32("k")? }),
            "distance" => {
                let from = parse_u32("from")?
                    .ok_or_else(|| QueryError::bad("distance requires `from`"))?;
                let to =
                    parse_u32("to")?.ok_or_else(|| QueryError::bad("distance requires `to`"))?;
                Ok(Query::Distance { from, to })
            }
            "diameter" => Ok(Query::Diameter),
            "powerlaw" => Ok(Query::PowerLaw),
            "cover" => Ok(Query::Cover),
            other => Err(QueryError {
                status: 404,
                message: format!(
                    "unknown endpoint `{other}` (have: {})",
                    ENDPOINTS.join(", ")
                ),
            }),
        }
    }

    /// Canonical cache-key suffix: endpoint plus normalized parameters.
    /// Two requests with the same meaning produce the same string.
    pub fn canonical(&self) -> String {
        match self {
            Query::KCore { k: Some(k) } => format!("kcore?k={k}"),
            Query::Distance { from, to } => format!("distance?from={from}&to={to}"),
            _ => self.endpoint().to_string(),
        }
    }

    /// Execute against `h`, producing the JSON response body. Always a
    /// `{"query":…,…}` object terminated by a newline. Equivalent to
    /// [`Query::run_opts`] with an unlimited deadline, sequential.
    pub fn run(&self, h: &Hypergraph) -> Result<String, QueryError> {
        self.run_opts(h, &ExecOpts::default())
    }

    /// Execute under [`ExecOpts`]: heavy endpoints honor the deadline
    /// (returning a 504 [`QueryError`] on expiry) and optionally run on
    /// the `parcore` parallel kernels.
    pub fn run_opts(&self, h: &Hypergraph, opts: &ExecOpts) -> Result<String, QueryError> {
        // The trace rides on the deadline: kernels already thread the
        // deadline everywhere, so attaching it here is the only
        // plumbing the whole request path needs.
        let opts = ExecOpts {
            deadline: opts.deadline.clone().with_trace(opts.trace.clone()),
            parallel: opts.parallel,
            trace: opts.trace.clone(),
            relabel: opts.relabel.clone(),
        };
        let opts = &opts;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("query").string(&self.canonical());
        match self {
            Query::Stats => run_stats(h, &mut w),
            Query::Degrees => run_degrees(h, &mut w),
            Query::Components => run_components(h, &mut w),
            Query::KCore { k } => run_kcore(h, *k, opts, &mut w)?,
            Query::Distance { from, to } => run_distance(h, *from, *to, opts, &mut w)?,
            Query::Diameter => run_diameter(h, opts, &mut w)?,
            Query::PowerLaw => run_powerlaw(h, &mut w),
            Query::Cover => run_cover(h, opts, &mut w)?,
        }
        w.end_object();
        let mut body = w.finish();
        body.push('\n');
        Ok(body)
    }
}

/// Resolve a 1-based external vertex id against `h`, translating into
/// the internal numbering when the dataset is stored relabeled.
fn vertex(h: &Hypergraph, id: u32, name: &str, opts: &ExecOpts) -> Result<VertexId, QueryError> {
    if id == 0 || id as usize > h.num_vertices() {
        return Err(QueryError::bad(format!(
            "`{name}`={id} out of range 1..={}",
            h.num_vertices()
        )));
    }
    let v = VertexId(id - 1);
    Ok(opts.relabel.as_ref().map_or(v, |r| r.new_vertex(v)))
}

/// The 1-based external id of internal vertex `v`.
fn external_id(v: VertexId, opts: &ExecOpts) -> u64 {
    let v = opts.relabel.as_ref().map_or(v, |r| r.original_vertex(v));
    v.0 as u64 + 1
}

fn run_stats(h: &Hypergraph, w: &mut JsonWriter) {
    let cc = hypergraph::hypergraph_components(h);
    w.key("vertices").uint(h.num_vertices() as u64);
    w.key("hyperedges").uint(h.num_edges() as u64);
    w.key("pins").uint(h.num_pins() as u64);
    w.key("max_vertex_degree")
        .uint(h.max_vertex_degree() as u64);
    w.key("max_hyperedge_degree")
        .uint(h.max_edge_degree() as u64);
    w.key("components").uint(cc.count() as u64);
    match cc.largest() {
        Some(big) => {
            w.key("largest_component").begin_object();
            w.key("vertices").uint(cc.summary[big].num_vertices as u64);
            w.key("hyperedges").uint(cc.summary[big].num_edges as u64);
            w.end_object();
        }
        None => {
            w.key("largest_component").raw("null");
        }
    }
    w.key("storage_bytes").uint(h.storage_bytes() as u64);
}

fn run_degrees(h: &Hypergraph, w: &mut JsonWriter) {
    w.key("vertex_degree_histogram").begin_array();
    for c in hypergraph::vertex_degree_histogram(h) {
        w.uint(c as u64);
    }
    w.end_array();
    w.key("hyperedge_degree_histogram").begin_array();
    for c in hypergraph::edge_degree_histogram(h) {
        w.uint(c as u64);
    }
    w.end_array();
}

fn run_components(h: &Hypergraph, w: &mut JsonWriter) {
    let cc = hypergraph::hypergraph_components(h);
    w.key("count").uint(cc.count() as u64);
    // Largest-first; the hyperedge-count tiebreak keeps the order
    // label-invariant (components equal in both counts are
    // indistinguishable here), so relabeled datasets serve the same
    // body as unrelabeled ones.
    let mut order: Vec<usize> = (0..cc.summary.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(cc.summary[i].num_vertices),
            std::cmp::Reverse(cc.summary[i].num_edges),
        )
    });
    w.key("components").begin_array();
    for i in order {
        w.begin_object();
        w.key("vertices").uint(cc.summary[i].num_vertices as u64);
        w.key("hyperedges").uint(cc.summary[i].num_edges as u64);
        w.end_object();
    }
    w.end_array();
}

fn run_kcore(
    h: &Hypergraph,
    k: Option<u32>,
    opts: &ExecOpts,
    w: &mut JsonWriter,
) -> Result<(), QueryError> {
    let core = match (k, opts.parallel) {
        // Single-k: the CSR peeler sequentially, the level-synchronous
        // engine when parallel routing is on.
        (Some(k), false) => Some(hypergraph::csr_kcore_with(h, k, &opts.deadline)?),
        (Some(k), true) => Some(parcore::par_hypergraph_kcore_with(h, k, &opts.deadline)?),
        // Maximum core: one incremental decomposition sweep; parallel
        // routing moves the dominant overlap build onto rayon.
        (None, false) => hypergraph::max_core_with(h, &opts.deadline)?,
        (None, true) => parcore::par_decompose_with(h, &opts.deadline)?.max_core,
    };
    match core {
        Some(c) if !c.is_empty() => {
            w.key("k").uint(c.k as u64);
            w.key("vertices").uint(c.vertices.len() as u64);
            w.key("hyperedges").uint(c.edges.len() as u64);
            w.key("pins").uint(c.sub.num_pins() as u64);
            // External ids, ascending: unmapping a relabeled dataset
            // scrambles the internal order, so sort after translation
            // (a no-op for unrelabeled datasets, already ascending).
            let mut ids: Vec<u64> = c.vertices.iter().map(|&v| external_id(v, opts)).collect();
            ids.sort_unstable();
            w.key("vertex_ids").begin_array();
            for id in ids {
                w.uint(id);
            }
            w.end_array();
        }
        _ => {
            w.key("k").raw("null");
            w.key("vertices").uint(0);
            w.key("hyperedges").uint(0);
            w.key("pins").uint(0);
            w.key("vertex_ids").begin_array().end_array();
        }
    }
    Ok(())
}

fn run_distance(
    h: &Hypergraph,
    from: u32,
    to: u32,
    opts: &ExecOpts,
    w: &mut JsonWriter,
) -> Result<(), QueryError> {
    let s = vertex(h, from, "from", opts)?;
    let t = vertex(h, to, "to", opts)?;
    let dist = hypergraph::hyper_distances_with(h, s, &opts.deadline)?;
    w.key("from").uint(from as u64);
    w.key("to").uint(to as u64);
    match dist[t.index()] {
        hypergraph::path::UNREACHABLE => {
            w.key("distance").raw("null");
        }
        d => {
            w.key("distance").uint(d as u64);
        }
    }
    Ok(())
}

fn run_diameter(h: &Hypergraph, opts: &ExecOpts, w: &mut JsonWriter) -> Result<(), QueryError> {
    // Both arms run the batched MS-BFS engine; the parallel arm shards
    // batches over workers for datasets above the routing threshold.
    let s = if opts.parallel {
        parcore::par_msbfs_distance_stats_with(h, &opts.deadline)?
    } else {
        hypergraph::hyper_distance_stats_with(h, &opts.deadline)?
    };
    w.key("diameter").uint(s.diameter as u64);
    w.key("average_path_length").float(s.average_path_length);
    w.key("reachable_pairs").uint(s.reachable_pairs);
    Ok(())
}

fn run_powerlaw(h: &Hypergraph, w: &mut JsonWriter) {
    let hist = hypergraph::vertex_degree_histogram(h);
    match hypergraph::fit_power_law(&hist) {
        Some(fit) => {
            w.key("fit").begin_object();
            w.key("log10_c").float(fit.log10_c);
            w.key("gamma").float(fit.gamma);
            w.key("r_squared").float(fit.r_squared);
            w.key("points").uint(fit.points as u64);
            w.end_object();
        }
        None => {
            w.key("fit").raw("null");
        }
    }
}

fn run_cover(h: &Hypergraph, opts: &ExecOpts, w: &mut JsonWriter) -> Result<(), QueryError> {
    // Greedy tie-breaks on internal vertex id, so a relabeled dataset
    // may pick a different (equally sized, equally valid) cover than
    // the same data unrelabeled; ids are emitted in selection order,
    // translated back to the client's numbering.
    let cover = hypergraph::greedy_vertex_cover(h, |_| 1.0)
        .map_err(|e| QueryError::bad(format!("cover failed: {e}")))?;
    w.key("size").uint(cover.vertices.len() as u64);
    w.key("total_weight").float(cover.total_weight);
    w.key("average_degree").float(cover.average_degree(h));
    w.key("vertex_ids").begin_array();
    for &v in &cover.vertices {
        w.uint(external_id(v, opts));
    }
    w.end_array();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::HypergraphBuilder;

    fn chain() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([0, 1]);
        b.add_edge([1, 2]);
        b.add_edge([2, 3]);
        b.build()
    }

    fn param_none(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn parse_and_canonical() {
        assert_eq!(Query::parse("stats", param_none).unwrap(), Query::Stats);
        let q = Query::parse("kcore", |k| (k == "k").then(|| "3".to_string())).unwrap();
        assert_eq!(q, Query::KCore { k: Some(3) });
        assert_eq!(q.canonical(), "kcore?k=3");
        assert_eq!(
            Query::parse("kcore", param_none).unwrap().canonical(),
            "kcore"
        );

        let q = Query::parse("distance", |k| match k {
            "from" => Some("1".into()),
            "to" => Some("4".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(q.canonical(), "distance?from=1&to=4");

        assert_eq!(Query::parse("nope", param_none).unwrap_err().status, 404);
        assert_eq!(
            Query::parse("kcore", |_| Some("x".into()))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            Query::parse("distance", param_none).unwrap_err().status,
            400
        );
    }

    #[test]
    fn stats_body() {
        let body = Query::Stats.run(&chain()).unwrap();
        assert!(body.contains("\"vertices\":4"));
        assert!(body.contains("\"hyperedges\":3"));
        assert!(body.contains("\"components\":1"));
        assert!(body.ends_with("}\n"));
    }

    #[test]
    fn distance_body_and_errors() {
        let body = Query::Distance { from: 1, to: 4 }.run(&chain()).unwrap();
        assert!(body.contains("\"distance\":3"), "{body}");

        let err = Query::Distance { from: 0, to: 4 }
            .run(&chain())
            .unwrap_err();
        assert_eq!(err.status, 400);
        let err = Query::Distance { from: 1, to: 9 }
            .run(&chain())
            .unwrap_err();
        assert!(err.message.contains("out of range"), "{}", err.message);

        // Unreachable pair → null.
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([0, 1]);
        let h = b.build();
        let body = Query::Distance { from: 1, to: 3 }.run(&h).unwrap();
        assert!(body.contains("\"distance\":null"), "{body}");
    }

    #[test]
    fn diameter_matches_library() {
        let body = Query::Diameter.run(&chain()).unwrap();
        assert!(body.contains("\"diameter\":3"), "{body}");
        assert!(body.contains("\"reachable_pairs\":12"), "{body}");
    }

    #[test]
    fn kcore_and_cover_bodies() {
        let body = Query::KCore { k: Some(1) }.run(&chain()).unwrap();
        assert!(body.contains("\"k\":1"), "{body}");
        assert!(body.contains("\"vertex_ids\":[1,2,3,4]"), "{body}");

        let body = Query::KCore { k: Some(99) }.run(&chain()).unwrap();
        assert!(body.contains("\"k\":null"), "{body}");

        let body = Query::Cover.run(&chain()).unwrap();
        assert!(body.contains("\"size\":2"), "{body}");
    }

    #[test]
    fn degrees_and_powerlaw_and_components() {
        let body = Query::Degrees.run(&chain()).unwrap();
        assert!(
            body.contains("\"vertex_degree_histogram\":[0,2,2]"),
            "{body}"
        );

        let body = Query::PowerLaw.run(&chain()).unwrap();
        assert!(body.contains("\"fit\""), "{body}");

        let body = Query::Components.run(&chain()).unwrap();
        assert!(body.contains("\"count\":1"), "{body}");
    }

    #[test]
    fn pre_expired_deadline_maps_to_504() {
        let h = chain();
        let opts = ExecOpts {
            deadline: hgobs::Deadline::after(std::time::Duration::ZERO),
            ..ExecOpts::default()
        };
        for q in [
            Query::Diameter,
            Query::KCore { k: Some(1) },
            Query::KCore { k: None },
            Query::Distance { from: 1, to: 4 },
        ] {
            let err = q.run_opts(&h, &opts).unwrap_err();
            assert_eq!(err.status, 504, "{q:?}: {}", err.message);
            assert!(err.message.contains("deadline exceeded"), "{}", err.message);
        }
    }

    #[test]
    fn expired_diameter_504_names_the_msbfs_engine() {
        // Both routing arms now run MS-BFS; the 504 body carries the
        // engine phase and the batches-completed work count so clients
        // can see how far the sweep got.
        let h = chain();
        for (parallel, phase) in [(false, "msbfs"), (true, "msbfs.par")] {
            let opts = ExecOpts {
                deadline: hgobs::Deadline::after(std::time::Duration::ZERO),
                parallel,
                ..ExecOpts::default()
            };
            let err = Query::Diameter.run_opts(&h, &opts).unwrap_err();
            assert_eq!(err.status, 504, "{}", err.message);
            assert!(err.message.contains(phase), "{}", err.message);
            assert!(err.message.contains("0 work units done"), "{}", err.message);
        }
    }

    #[test]
    fn parallel_opts_match_sequential_bodies() {
        let h = chain();
        let par = ExecOpts {
            deadline: hgobs::Deadline::none(),
            parallel: true,
            ..ExecOpts::default()
        };
        for q in [Query::Diameter, Query::KCore { k: Some(1) }] {
            assert_eq!(q.run(&h).unwrap(), q.run_opts(&h, &par).unwrap(), "{q:?}");
        }
    }

    #[test]
    fn relabeled_dataset_answers_match_the_plain_dataset() {
        // A registry with relabeling on stores a permuted hypergraph;
        // the ExecOpts mapping must make that invisible to clients:
        // every endpoint except cover (greedy tie-breaks on internal
        // ids) returns byte-identical bodies.
        use crate::registry::{Format, Registry};
        // Four components plus an isolated vertex. The 4-5-6 component
        // ties the 1-2-3 chain on vertex count but holds the highest-
        // degree vertex, so BFS relabeling seeds it first and flips the
        // component discovery order — the shape that exposes any
        // label-dependent ordering in the response. The 7-8 / 9-10
        // pairs are fully tied and thus indistinguishable.
        const HGR: &str = "8 11\n1 2\n2 3\n4 5\n4 6\n5 6\n4 5\n7 8\n9 10\n";
        let plain = Registry::new()
            .insert_text("t", Format::Hgr, HGR, "upload")
            .unwrap();
        let relabeled = Registry::with_relabeling(true)
            .insert_text("t", Format::Hgr, HGR, "upload")
            .unwrap();
        let r = relabeled.relabeling.clone().expect("mapping stored");
        assert!(plain.relabeling.is_none());
        // The permutation is real: some vertex moved.
        assert!(
            (0..5).any(|i| r.new_vertex(VertexId(i)) != VertexId(i)),
            "relabeling collapsed to identity"
        );

        let opts = ExecOpts {
            relabel: Some(r),
            ..ExecOpts::default()
        };
        for q in [
            Query::Stats,
            Query::Degrees,
            Query::Components,
            Query::KCore { k: Some(1) },
            Query::KCore { k: None },
            Query::Distance { from: 1, to: 3 },
            Query::Diameter,
            Query::PowerLaw,
        ] {
            assert_eq!(
                q.run(&plain.hypergraph).unwrap(),
                q.run_opts(&relabeled.hypergraph, &opts).unwrap(),
                "{q:?}"
            );
        }
        // Cover stays a valid cover of the same size even if the tie
        // broken set differs.
        let body = Query::Cover.run_opts(&relabeled.hypergraph, &opts).unwrap();
        assert!(body.contains("\"size\":"), "{body}");
    }

    #[test]
    fn identical_queries_produce_identical_bodies() {
        let h = chain();
        for e in ENDPOINTS {
            if *e == "distance" {
                continue;
            }
            let q = Query::parse(e, param_none).unwrap();
            assert_eq!(q.run(&h).unwrap(), q.run(&h).unwrap(), "{e}");
        }
    }
}
