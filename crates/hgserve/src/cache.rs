//! Sharded LRU result cache keyed by `(dataset, epoch, query)` strings.
//!
//! Each shard is an independent `Mutex<Shard>`; a key's shard is chosen
//! by its FNV-1a hash, so concurrent requests for different keys mostly
//! take different locks. Within a shard, entries form an intrusive
//! doubly-linked LRU list over a slab (`Vec<Node>` + free list) with a
//! `HashMap` index, giving O(1) get / insert / evict.
//!
//! Capacity is accounted in **bytes** (key + value + fixed per-node
//! overhead), not entry counts, because cached bodies range from a
//! 100-byte health payload to multi-megabyte degree histograms. The
//! budget is split evenly across shards; a value larger than one
//! shard's budget is never cached (serving it uncached is cheaper than
//! thrashing the whole shard).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed per-entry overhead charged on top of key/value bytes: the
/// node, the map entry, and the two `Arc` headers, rounded up.
const NODE_OVERHEAD: usize = 96;

const NIL: usize = usize::MAX;

/// Point-in-time cache statistics, summed over shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the capacity.
    pub bytes: u64,
    /// Total capacity in bytes (all shards).
    pub capacity_bytes: u64,
}

struct Node {
    key: Arc<str>,
    value: Arc<String>,
    size: usize,
    prev: usize,
    next: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Arc<str>, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used, or NIL when empty.
    head: usize,
    /// Least recently used, or NIL when empty.
    tail: usize,
    bytes: usize,
    insertions: u64,
    evictions: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    fn evict_lru(&mut self) {
        let t = self.tail;
        debug_assert_ne!(t, NIL);
        self.unlink(t);
        let node = &mut self.nodes[t];
        self.map.remove(&node.key);
        self.bytes -= node.size;
        node.value = Arc::new(String::new());
        self.free.push(t);
        self.evictions += 1;
    }

    /// Keys from most to least recently used (test/debug aid).
    fn keys_mru_to_lru(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.nodes[i].key.to_string());
            i = self.nodes[i].next;
        }
        out
    }
}

/// The sharded LRU described in the module docs.
pub struct ShardedLru {
    shards: Box<[Mutex<Shard>]>,
    /// Byte budget per shard.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ShardedLru {
    /// A cache with `capacity_bytes` total budget split over
    /// `num_shards` shards (rounded up to a power of two, minimum 1).
    pub fn new(capacity_bytes: usize, num_shards: usize) -> Self {
        let shards = num_shards.max(1).next_power_of_two();
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity: capacity_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        // Power-of-two shard count: mask the hash.
        &self.shards[(fnv1a(key) as usize) & (self.shards.len() - 1)]
    }

    /// Look `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let mut shard = self.shard_of(key).lock().unwrap();
        match shard.map.get(key).copied() {
            Some(i) => {
                shard.unlink(i);
                shard.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&shard.nodes[i].value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert or replace `key`, evicting least-recently-used entries
    /// until the shard fits its budget. Oversized values are skipped.
    pub fn insert(&self, key: &str, value: Arc<String>) {
        let size = key.len() + value.len() + NODE_OVERHEAD;
        if size > self.shard_capacity {
            return;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        if let Some(&i) = shard.map.get(key) {
            shard.bytes = shard.bytes - shard.nodes[i].size + size;
            shard.nodes[i].value = value;
            shard.nodes[i].size = size;
            shard.unlink(i);
            shard.push_front(i);
        } else {
            let key: Arc<str> = Arc::from(key);
            let node = Node {
                key: Arc::clone(&key),
                value,
                size,
                prev: NIL,
                next: NIL,
            };
            let i = match shard.free.pop() {
                Some(i) => {
                    shard.nodes[i] = node;
                    i
                }
                None => {
                    shard.nodes.push(node);
                    shard.nodes.len() - 1
                }
            };
            shard.map.insert(key, i);
            shard.bytes += size;
            shard.push_front(i);
            shard.insertions += 1;
        }
        while shard.bytes > self.shard_capacity {
            shard.evict_lru();
        }
    }

    /// Drop every entry (statistics other than `entries`/`bytes` persist).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut s = s.lock().unwrap();
            let evicted = s.map.len() as u64;
            *s = Shard {
                insertions: s.insertions,
                evictions: s.evictions + evicted,
                ..Shard::new()
            };
        }
    }

    pub fn stats(&self) -> CacheStats {
        let mut st = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            capacity_bytes: (self.shard_capacity * self.shards.len()) as u64,
            ..CacheStats::default()
        };
        for s in self.shards.iter() {
            let s = s.lock().unwrap();
            st.insertions += s.insertions;
            st.evictions += s.evictions;
            st.entries += s.map.len() as u64;
            st.bytes += s.bytes as u64;
        }
        st
    }

    /// MRU→LRU key order of the shard holding `key` (for tests).
    pub fn shard_order_of(&self, key: &str) -> Vec<String> {
        self.shard_of(key).lock().unwrap().keys_mru_to_lru()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    /// Single shard so eviction order is observable deterministically.
    fn single(capacity: usize) -> ShardedLru {
        ShardedLru::new(capacity, 1)
    }

    #[test]
    fn get_promotes_and_eviction_is_lru_order() {
        // Room for exactly three one-byte-key entries.
        let entry = 1 + 1 + NODE_OVERHEAD;
        let c = single(3 * entry);
        c.insert("a", val("1"));
        c.insert("b", val("2"));
        c.insert("c", val("3"));
        assert_eq!(c.shard_order_of("a"), vec!["c", "b", "a"]);

        // Touch `a`: it becomes MRU, so `b` is now the LRU victim.
        assert_eq!(c.get("a").unwrap().as_str(), "1");
        assert_eq!(c.shard_order_of("a"), vec!["a", "c", "b"]);
        c.insert("d", val("4"));
        assert!(c.get("b").is_none(), "LRU entry b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_accounting_tracks_bytes_exactly() {
        let c = single(10_000);
        c.insert("key1", val("0123456789"));
        let expect = ("key1".len() + 10 + NODE_OVERHEAD) as u64;
        assert_eq!(c.stats().bytes, expect);
        // Replacing with a larger value adjusts, not duplicates.
        c.insert("key1", val("0123456789abcdef"));
        let expect = ("key1".len() + 16 + NODE_OVERHEAD) as u64;
        assert_eq!(c.stats().bytes, expect);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().insertions, 1, "replacement is not an insertion");
        c.clear();
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let c = single(200);
        c.insert("big", Arc::new("x".repeat(500)));
        assert!(c.get("big").is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn eviction_cascade_frees_enough_space() {
        let entry = 1 + 8 + NODE_OVERHEAD;
        let c = single(4 * entry);
        for k in ["a", "b", "c", "d"] {
            c.insert(k, Arc::new("12345678".to_string()));
        }
        // One entry three times the size of the small ones evicts several.
        c.insert("E", Arc::new("x".repeat(3 * entry - NODE_OVERHEAD - 1)));
        let st = c.stats();
        assert!(st.bytes <= 4 * entry as u64, "over budget: {st:?}");
        assert!(c.get("E").is_some());
        assert!(st.evictions >= 2, "{st:?}");
    }

    #[test]
    fn hit_and_miss_counters() {
        let c = single(10_000);
        assert!(c.get("nope").is_none());
        c.insert("k", val("v"));
        assert!(c.get("k").is_some());
        assert!(c.get("k").is_some());
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (2, 1));
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let entry = 1 + 1 + NODE_OVERHEAD;
        let c = single(2 * entry);
        for i in 0..100 {
            c.insert(if i % 2 == 0 { "a" } else { "b" }, val("x"));
            c.insert("c", val("y"));
        }
        let shard = c.shards[0].lock().unwrap();
        assert!(
            shard.nodes.len() <= 4,
            "slab grew unbounded: {}",
            shard.nodes.len()
        );
    }

    #[test]
    fn sharding_distributes_keys() {
        let c = ShardedLru::new(1 << 20, 8);
        assert_eq!(c.num_shards(), 8);
        for i in 0..64 {
            c.insert(&format!("key-{i}"), val("v"));
        }
        let occupied = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(occupied >= 4, "FNV spread keys over only {occupied} shards");
        assert_eq!(c.stats().entries, 64);
    }
}
