//! Slow-query log: bounded in-memory retention of request traces,
//! served at `GET /debug/slowlog`.
//!
//! Two fixed-size views are kept: the most *recent* requests (a ring)
//! and the *slowest* requests seen so far (a min-evicting set). Both
//! hold complete [`SlowLogEntry`] records including the rendered trace
//! JSON, so a latency spike can be diagnosed after the fact without
//! having re-run the request with `?trace=1`.
//!
//! The hot path is cheap by construction: admission to the slowest set
//! is pre-screened by one relaxed atomic load (the current minimum of
//! the full set), so a fast request under a loaded server skips that
//! lock entirely; the recent ring's critical section is a deque
//! push/pop of an already-built entry.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Retained most-recent requests.
pub const RECENT_CAP: usize = 16;
/// Retained slowest requests.
pub const SLOW_CAP: usize = 16;

/// One retained request record.
#[derive(Clone, Debug)]
pub struct SlowLogEntry {
    /// Trace id in zero-padded hex — the response's `X-Trace-Id`.
    pub id: String,
    /// Endpoint label, as used in `serve.latency_us.{endpoint}`.
    pub endpoint: &'static str,
    pub status: u16,
    /// Wall-clock latency in microseconds: the exact value this request
    /// recorded to its latency histogram.
    pub total_us: u64,
    /// Unix time in milliseconds when the request finished.
    pub unix_ms: u64,
    /// Rendered `{"id":…,"events":[…],"dropped":…}` trace object.
    pub trace_json: String,
}

impl SlowLogEntry {
    fn write_json(&self, w: &mut hgobs::json::JsonWriter) {
        w.begin_object();
        w.key("id").string(&self.id);
        w.key("endpoint").string(self.endpoint);
        w.key("status").uint(self.status as u64);
        w.key("total_us").uint(self.total_us);
        w.key("unix_ms").uint(self.unix_ms);
        w.key("trace").raw(&self.trace_json);
        w.end_object();
    }
}

/// Current unix time in milliseconds (0 if the clock is before 1970).
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The retention buffer shared by every worker.
pub struct SlowLog {
    recent: Mutex<VecDeque<SlowLogEntry>>,
    slow: Mutex<Vec<SlowLogEntry>>,
    /// Admission threshold for `slow`: the smallest `total_us` in the
    /// set once it is full, 0 before that. Screened without the lock.
    min_slow_us: AtomicU64,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new()
    }
}

impl SlowLog {
    pub fn new() -> SlowLog {
        SlowLog {
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAP)),
            slow: Mutex::new(Vec::with_capacity(SLOW_CAP)),
            min_slow_us: AtomicU64::new(0),
        }
    }

    /// Retain one finished request.
    pub fn record(&self, entry: SlowLogEntry) {
        // Slowest set first, so the common fast request pays only the
        // screening load plus the recent-ring push.
        if entry.total_us >= self.min_slow_us.load(Ordering::Relaxed) {
            let mut slow = self.slow.lock().unwrap();
            // Re-check under the lock: the threshold may have moved.
            let threshold = self.min_slow_us.load(Ordering::Relaxed);
            if slow.len() < SLOW_CAP || entry.total_us >= threshold {
                slow.push(entry.clone());
                if slow.len() > SLOW_CAP {
                    let (mi, _) = slow
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.total_us)
                        .expect("non-empty");
                    slow.swap_remove(mi);
                }
                if slow.len() == SLOW_CAP {
                    let min = slow.iter().map(|e| e.total_us).min().expect("non-empty");
                    self.min_slow_us.store(min, Ordering::Relaxed);
                }
            }
        }
        let mut recent = self.recent.lock().unwrap();
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(entry);
    }

    /// The `GET /debug/slowlog` body: `{"schema":"hg-slowlog/1",
    /// "slowest":[…],"recent":[…]}` — slowest ordered by descending
    /// latency, recent newest-first, newline-terminated.
    pub fn render_json(&self) -> String {
        let mut slowest = self.slow.lock().unwrap().clone();
        slowest.sort_by_key(|e| std::cmp::Reverse(e.total_us));
        let recent = self.recent.lock().unwrap().clone();
        let mut w = hgobs::json::JsonWriter::new();
        w.begin_object();
        w.key("schema").string("hg-slowlog/1");
        w.key("slowest").begin_array();
        for e in &slowest {
            e.write_json(&mut w);
        }
        w.end_array();
        w.key("recent").begin_array();
        for e in recent.iter().rev() {
            e.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, total_us: u64) -> SlowLogEntry {
        SlowLogEntry {
            id: format!("{id:016x}"),
            endpoint: "diameter",
            status: 200,
            total_us,
            unix_ms: 1_700_000_000_000,
            trace_json: format!("{{\"id\":\"{id:016x}\",\"events\":[],\"dropped\":0}}"),
        }
    }

    #[test]
    fn recent_is_a_ring_newest_first() {
        let log = SlowLog::new();
        for i in 0..(RECENT_CAP as u64 + 4) {
            log.record(entry(i, 10));
        }
        let body = log.render_json();
        let recent = body.split("\"recent\"").nth(1).unwrap();
        // The oldest 4 ids fell off the ring.
        for i in 0..4u64 {
            assert!(
                !recent.contains(&format!("\"id\":\"{i:016x}\"")),
                "{recent}"
            );
        }
        // Newest-first: the last-recorded id appears before the one
        // recorded just prior.
        let last = format!("{:016x}", RECENT_CAP as u64 + 3);
        let prior = format!("{:016x}", RECENT_CAP as u64 + 2);
        assert!(recent.find(&last).unwrap() < recent.find(&prior).unwrap());
    }

    #[test]
    fn slowest_set_keeps_the_top_by_latency() {
        let log = SlowLog::new();
        // 64 requests, latencies 1..=64: the slowest SLOW_CAP survive.
        for i in 1..=64u64 {
            log.record(entry(i, i));
        }
        let body = log.render_json();
        let slowest = body
            .split("\"slowest\"")
            .nth(1)
            .unwrap()
            .split("\"recent\"")
            .next()
            .unwrap();
        for us in (64 - SLOW_CAP as u64 + 1)..=64 {
            assert!(slowest.contains(&format!("\"total_us\":{us}")), "{slowest}");
        }
        assert!(!slowest.contains("\"total_us\":1,"), "{slowest}");
        // Descending order: 64 before 63.
        assert!(
            slowest.find("\"total_us\":64").unwrap() < slowest.find("\"total_us\":63").unwrap()
        );
    }

    #[test]
    fn fast_requests_skip_the_slow_set_once_full() {
        let log = SlowLog::new();
        for i in 0..SLOW_CAP as u64 {
            log.record(entry(i, 1_000 + i));
        }
        assert_eq!(log.min_slow_us.load(Ordering::Relaxed), 1_000);
        log.record(entry(99, 5)); // screened out by the atomic check
        let body = log.render_json();
        let slowest = body
            .split("\"slowest\"")
            .nth(1)
            .unwrap()
            .split("\"recent\"")
            .next()
            .unwrap();
        assert!(!slowest.contains("\"total_us\":5"), "{slowest}");
    }

    #[test]
    fn body_is_parseable_shape() {
        let log = SlowLog::new();
        log.record(entry(7, 42));
        let body = log.render_json();
        assert!(body.starts_with("{\"schema\":\"hg-slowlog/1\""), "{body}");
        assert!(body.ends_with("}\n"), "{body}");
        assert!(body.contains("\"trace\":{\"id\":\"0000000000000007\""));
    }
}
