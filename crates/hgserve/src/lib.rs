//! `hgserve` — an embedded analytics server for hypergraph queries.
//!
//! The rest of the workspace computes each answer from scratch per CLI
//! invocation; this crate turns those computations into a long-lived
//! HTTP/1.1 daemon with an in-memory dataset registry and a sharded
//! LRU **result cache**, so the paper's read-mostly query set (k-cores,
//! components, distances/diameter, degree distributions and power-law
//! fits, vertex covers) is computed once per dataset epoch and served
//! from memory thereafter.
//!
//! Built entirely on `std::net` — no async runtime, no HTTP library:
//! a single nonblocking **readiness event loop** ([`server`], on raw
//! `epoll` via [`poller`], with a portable `poll(2)` fallback) owns
//! accept, read, and write for every connection as a small state
//! machine (idle → reading → dispatched → writing), so thousands of
//! parked keep-alive connections cost zero threads. Complete requests
//! are handed to a fixed worker pool over a **bounded** mpsc channel;
//! workers push serialized responses back through a completion queue
//! and an eventfd wakeup. Requests are parsed by a minimal hand-rolled
//! incremental HTTP/1.1 parser ([`http`]), query execution lives in
//! [`query`], datasets in [`registry`], and the cache in [`cache`]. A
//! deterministic load generator ([`loadgen`]) doubles as benchmark
//! driver and end-to-end test client.
//!
//! # Robustness
//!
//! The server degrades predictably instead of queueing without bound:
//!
//! * **Admission control** — when all workers are busy and the job
//!   queue (`--queue`) is full, the event loop answers `503` +
//!   `Retry-After: 1` directly — no worker is touched — counted in
//!   `hgserve_shed_total`.
//! * **Deadlines** — each request runs under a cooperative
//!   [`hgobs::Deadline`] (server default `--deadline-ms`, per-request
//!   `X-Deadline-Ms` header capped by the server). Expiry unwinds the
//!   algorithm mid-loop and answers `504` (`hgserve_deadline_exceeded_total`).
//! * **Slow-loris protection** — a request head that trickles in
//!   longer than the header timeout gets `408` and the connection is
//!   closed, enforced by the event loop's timer wheel rather than a
//!   blocked worker.
//! * **Parallel offload** — on datasets at or above `par_threshold`
//!   vertices, diameter and k-core queries run on the `parcore`
//!   kernels, sharing one deadline token across all worker threads.
//!
//! # Endpoints
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /healthz` | liveness + dataset count |
//! | `GET /datasets` | registered datasets with shapes |
//! | `POST /datasets?name=N&format=hgr\|pajek\|mtx` | load a dataset from the body |
//! | `GET /v1/{ds}/stats` | structural summary |
//! | `GET /v1/{ds}/degrees` | degree histograms |
//! | `GET /v1/{ds}/components` | connected components |
//! | `GET /v1/{ds}/kcore?k=K` | k-core (max core when `k` omitted) |
//! | `GET /v1/{ds}/distance?from=A&to=B` | shortest hypergraph distance |
//! | `GET /v1/{ds}/diameter` | diameter + average path length |
//! | `GET /v1/{ds}/powerlaw` | degree power-law fit |
//! | `GET /v1/{ds}/cover` | greedy vertex cover |
//! | `GET /metrics` | hgobs counters/histograms + cache stats (Prometheus text) |
//! | `GET /debug/slowlog` | retained traces of the slowest + most recent requests |
//! | `POST /admin/shutdown` | graceful drain |
//!
//! # Tracing
//!
//! Every response carries an `X-Trace-Id` header (deterministic from
//! method, path, and a per-process sequence number). Adding `?trace=1`
//! to a query — or sending `X-Trace: 1` — embeds a `"trace"` block in
//! the JSON body: per-kernel-phase events (MS-BFS batches, k-core peel
//! levels, overlap shards) with microsecond bounds and work counts,
//! plus `total_us`, the exact latency the request recorded to its
//! `serve.latency_us.{endpoint}` histogram. Traced requests bypass the
//! result cache so the events describe the compute that produced the
//! body. Saved trace JSON pretty-prints with `hg trace <file>`, and
//! [`slowlog`] retains the slowest/most recent traces for
//! `GET /debug/slowlog`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(hgserve::Registry::new());
//! registry
//!     .insert_text("toy", hgserve::Format::Hgr, "2 3\n1 2\n2 3\n", "doc")
//!     .unwrap();
//! let handle = hgserve::start(
//!     &hgserve::ServerConfig {
//!         addr: "127.0.0.1:0".into(),
//!         threads: 2,
//!         ..Default::default()
//!     },
//!     registry,
//! )
//! .unwrap();
//! let addr = handle.addr().to_string();
//! let (status, body) = hgserve::Client::new(&addr).get("/v1/toy/stats").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"vertices\":3"));
//! handle.shutdown();
//! ```

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod poller;
pub mod query;
pub mod registry;
pub mod server;
pub mod slowlog;

pub use cache::{CacheStats, ShardedLru};
pub use loadgen::{
    fetch_dataset_load, parse_mix, Client, LoadgenConfig, LoadgenReport, MixEntry, SlowSample,
};
pub use query::{ExecOpts, Query, QueryError};
pub use registry::{Dataset, Format, Registry};
pub use server::{install_sigint_flag, start, AppState, ServerConfig, ServerHandle};
pub use slowlog::{SlowLog, SlowLogEntry};
