//! Parallel batched multi-source BFS: batches of up to
//! [`hypergraph::BATCH`] sources distributed over rayon workers, each
//! worker holding private [`MsBfsScratch`] mask buffers, partial
//! [`BatchStats`] reduced at the end. Exactly matches the sequential
//! [`hypergraph::msbfs_distance_stats`], which itself matches the
//! scalar per-source oracle bit for bit.
//!
//! Cancellation follows the [`par_distance`](crate::par_distance)
//! scheme: one shared [`Deadline`] token; the first worker whose clock
//! check trips latches the cancel flag, siblings observe it on their
//! flag-only pre-check at the next batch boundary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use hgobs::{Deadline, DeadlineExceeded};
use hypergraph::msbfs::{msbfs_batch, stats_from_acc, BatchStats, MsBfsScratch, BATCH};
use hypergraph::{
    report_from_distances, HyperDistanceStats, Hypergraph, SmallWorldReport, VertexId,
};

/// Cross-call scratch pool: completed sweeps park their workers'
/// [`MsBfsScratch`] buffers here, and the next sweep over a hypergraph
/// of the same dimensions leases them back instead of allocating and
/// zeroing ~1 MB per worker again (the A7 telemetry showed allocation
/// is the tax batch parallelism pays). Entries whose dimensions no
/// longer fit are left for other datasets; the pool is capped so a
/// burst of differently-sized requests cannot hoard memory.
static SCRATCH_ARENA: Mutex<Vec<MsBfsScratch>> = Mutex::new(Vec::new());

/// Upper bound on parked scratches — enough for every worker of one
/// sweep on the core counts this engine targets, small enough that
/// stale dimensions age out quickly.
const SCRATCH_ARENA_CAP: usize = 16;

/// Lease a scratch sized for `h`: reuse a parked one when the
/// dimensions match (`msbfs.par.scratch_reused`), otherwise allocate
/// (`msbfs.par.scratch_allocs` / `msbfs.par.scratch_bytes`).
fn lease_scratch(h: &Hypergraph) -> MsBfsScratch {
    let mut pool = SCRATCH_ARENA.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(pos) = pool.iter().position(|sc| sc.fits(h)) {
        let sc = pool.swap_remove(pos);
        drop(pool);
        hgobs::counter!("msbfs.par.scratch_reused");
        return sc;
    }
    drop(pool);
    let sc = MsBfsScratch::new(h);
    hgobs::counter!("msbfs.par.scratch_allocs");
    hgobs::counter!("msbfs.par.scratch_bytes", sc.bytes() as u64);
    sc
}

/// Park a worker's scratch for the next sweep (dropped if the pool is
/// full). An aborted batch may leave it dirty; `MsBfsScratch` tracks
/// that itself and re-zeroes on next use.
fn release_scratch(sc: MsBfsScratch) {
    let mut pool = SCRATCH_ARENA.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < SCRATCH_ARENA_CAP {
        pool.push(sc);
    }
}

/// Parallel MS-BFS distance statistics from every vertex.
pub fn par_msbfs_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    let sources: Vec<VertexId> = h.vertices().collect();
    par_msbfs_distance_stats_from(h, &sources)
}

/// [`par_msbfs_distance_stats`] under a cooperative [`Deadline`] shared
/// by every worker. The error's phase is `"msbfs.par"` and `work_done`
/// counts batches fully completed across all threads.
pub fn par_msbfs_distance_stats_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let sources: Vec<VertexId> = h.vertices().collect();
    par_msbfs_distance_stats_from_with(h, &sources, deadline)
}

/// Parallel MS-BFS distance statistics from caller-chosen sources.
pub fn par_msbfs_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    match par_msbfs_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_msbfs_distance_stats_from`] under a cooperative [`Deadline`].
///
/// Each rayon "thread" fold carries its own lazily-allocated
/// [`MsBfsScratch`] (mask buffers sized n + m u64s) and amortized tick
/// counter, so workers never contend on traversal state; only the
/// completed-batch counter and the deadline's latch are shared.
pub fn par_msbfs_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("msbfs.par.sweep");
    let completed = AtomicU64::new(0);
    // Per-batch timing feeds the `msbfs.par.batch_us` histogram — the
    // profiling ROADMAP item 3 needs — but only pay the clock reads when
    // someone is collecting (registry on or a request trace attached).
    let observing = hgobs::enabled() || deadline.trace().is_enabled();
    let batches: Vec<&[VertexId]> = sources.chunks(BATCH).collect();
    let reduced = batches
        .par_iter()
        .fold(
            || (None, Ok(BatchStats::default())),
            |state: (Option<(MsBfsScratch, u32)>, Result<BatchStats, ()>), batch| {
                let (mut scratch, acc) = state;
                let Ok(mut stats) = acc else {
                    return (scratch, Err(()));
                };
                let mut tp = deadline.trace().phase("msbfs.par.batch");
                let t0 = observing.then(std::time::Instant::now);
                // Batch-boundary check: one clock read per 64 sources
                // keeps expiry deterministic on inputs too small for
                // the amortized in-kernel tick to ever fire, and the
                // latch it sets lets siblings bail on their flag check.
                if deadline.expired() {
                    return (scratch, Err(()));
                }
                let (sc, ticks) = scratch.get_or_insert_with(|| (lease_scratch(h), 0u32));
                match msbfs_batch(h, batch, sc, deadline, ticks, None) {
                    Some(b) => {
                        stats.merge(&b);
                        tp.add_work(batch.len() as u64);
                        if let Some(t0) = t0 {
                            hgobs::hist!("msbfs.par.batch_us", t0.elapsed().as_micros() as u64);
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        (scratch, Ok(stats))
                    }
                    None => (scratch, Err(())),
                }
            },
        )
        .map(|(scratch, acc)| {
            if let Some((mut sc, _)) = scratch {
                sc.flush_counters();
                release_scratch(sc);
            }
            acc
        })
        .reduce(
            || Ok(BatchStats::default()),
            |a, b| match (a, b) {
                (Ok(mut x), Ok(y)) => {
                    x.merge(&y);
                    Ok(x)
                }
                _ => Err(()),
            },
        );
    let done = completed.load(Ordering::Relaxed);
    hgobs::counter!("msbfs.par.batches", done);
    match reduced {
        Ok(acc) => Ok(stats_from_acc(acc)),
        Err(()) => Err(deadline.exceeded("msbfs.par", done)),
    }
}

/// Small-world report whose all-pairs sweep runs on the parallel
/// MS-BFS engine; the yardstick arithmetic is shared with the
/// sequential [`hypergraph::small_world_report`] via
/// [`report_from_distances`], so classifications agree exactly.
pub fn par_small_world_report(h: &Hypergraph) -> SmallWorldReport {
    match par_small_world_report_with(h, &Deadline::none()) {
        Ok(report) => report,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_small_world_report`] under a cooperative [`Deadline`]; the
/// distance sweep dominates and is the part that can expire.
pub fn par_small_world_report_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<SmallWorldReport, DeadlineExceeded> {
    let distances = par_msbfs_distance_stats_with(h, deadline)?;
    Ok(report_from_distances(h, distances))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{
        hyper_distance_stats, msbfs_distance_stats, scalar_hyper_distance_stats,
        small_world_report, HypergraphBuilder,
    };

    #[test]
    fn matches_sequential_msbfs_and_scalar_oracle() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(200, 150, 4, seed);
            let par = par_msbfs_distance_stats(&h);
            assert_eq!(par, msbfs_distance_stats(&h));
            assert_eq!(par, scalar_hyper_distance_stats(&h));
        }
    }

    #[test]
    fn matches_default_engine_on_multi_batch_input() {
        // 200 vertices = 4 batches: exercises the fold across chunks.
        let mut b = HypergraphBuilder::new(200);
        for i in 0..199u32 {
            b.add_edge([i, i + 1]);
        }
        let h = b.build();
        assert_eq!(par_msbfs_distance_stats(&h), hyper_distance_stats(&h));
    }

    #[test]
    fn empty_and_subset_sources() {
        let h = HypergraphBuilder::new(0).build();
        assert_eq!(par_msbfs_distance_stats(&h).reachable_pairs, 0);

        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3, 4]);
        let h = b.build();
        let some = [VertexId(0), VertexId(4)];
        assert_eq!(
            par_msbfs_distance_stats_from(&h, &some),
            hypergraph::path::hyper_distance_stats_from(&h, &some)
        );
    }

    #[test]
    fn cancelled_deadline_stops_with_zero_batches() {
        let h = hypergen::uniform_random_hypergraph(2000, 1500, 5, 3);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = par_msbfs_distance_stats_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "msbfs.par");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn tiny_budget_stops_parallel_sweep_early() {
        let h = hypergen::uniform_random_hypergraph(6000, 4800, 5, 11);
        match par_msbfs_distance_stats_with(&h, &Deadline::after_ms(1)) {
            Err(err) => {
                assert_eq!(err.phase, "msbfs.par");
                assert!(
                    (err.work_done as usize) < 6000_usize.div_ceil(BATCH),
                    "{err:?}"
                );
            }
            // A machine fast enough to finish inside 1ms just proves the
            // Ok path; the cancelled test covers expiry.
            Ok(stats) => assert_eq!(stats, par_msbfs_distance_stats(&h)),
        }
    }

    #[test]
    fn concurrent_requests_keep_traces_isolated() {
        // Two "requests" run the parallel sweep at the same time, each
        // with its own TraceCtx riding its own deadline. The rayon pool
        // is shared, so events from both interleave on the same worker
        // threads — but each event list must see exactly its own run.
        let h = hypergen::uniform_random_hypergraph(500, 400, 4, 5);
        let expected_batches = 500usize.div_ceil(BATCH);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (1..=2u64)
                .map(|id| {
                    let h = &h;
                    s.spawn(move || {
                        let trace = hgobs::TraceCtx::new(id);
                        let dl = Deadline::none().with_trace(trace.clone());
                        let stats = par_msbfs_distance_stats_with(h, &dl).unwrap();
                        (trace, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (trace, _) in &results {
            let events = trace.events();
            assert_eq!(events.len(), expected_batches, "{events:?}");
            assert!(events.iter().all(|e| e.phase == "msbfs.par.batch"));
            assert_eq!(events.iter().map(|e| e.work).sum::<u64>(), 500);
        }
        assert_eq!(results[0].1, results[1].1);
    }

    #[test]
    fn scratch_arena_leases_fitting_buffers_only() {
        let h1 = hypergen::uniform_random_hypergraph(50, 40, 3, 1);
        let h2 = hypergen::uniform_random_hypergraph(80, 10, 3, 1);
        let sc = lease_scratch(&h1);
        assert!(sc.fits(&h1) && !sc.fits(&h2));
        release_scratch(sc);
        // A parked scratch of the right dimensions comes back; asking
        // for different dimensions allocates instead of mis-leasing.
        assert!(lease_scratch(&h1).fits(&h1));
        assert!(lease_scratch(&h2).fits(&h2));
    }

    #[test]
    fn repeated_sweeps_reuse_the_pool_and_stay_correct() {
        // Sweep twice so the second run leases the first run's parked
        // (possibly dirty) buffers; results must be identical to the
        // sequential engine both times.
        let h = hypergen::uniform_random_hypergraph(300, 220, 4, 9);
        let a = par_msbfs_distance_stats(&h);
        let b = par_msbfs_distance_stats(&h);
        assert_eq!(a, b);
        assert_eq!(a, msbfs_distance_stats(&h));
    }

    #[test]
    fn small_world_report_matches_sequential() {
        let h = hypergen::uniform_random_hypergraph(120, 90, 4, 7);
        assert_eq!(par_small_world_report(&h), small_world_report(&h));
    }
}
