//! Level-synchronous parallel hypergraph k-core.
//!
//! Rounds alternate two parallel phases until a fixpoint:
//!
//! 1. **Vertex phase** — every alive vertex with degree < k is claimed
//!    (CAS on its liveness flag) and removed; the degrees of its alive
//!    hyperedges are decremented atomically.
//! 2. **Edge phase** — every hyperedge whose degree changed is re-checked
//!    for maximality against the post-phase snapshot by a direct
//!    sorted-subset test over alive pins (the sequential algorithm's
//!    overlap counters are replaced by direct tests because they
//!    parallelize poorly; the subset test reads only snapshot state, so
//!    the phase is embarrassingly parallel). Non-maximal hyperedges are
//!    deleted and their members' degrees decremented, feeding phase 1 of
//!    the next round.
//!
//! Deleting a hyperedge cannot make another hyperedge non-maximal, and
//! deleting a vertex shrinks containment *candidates* monotonically, so
//! checking only degree-decremented hyperedges each round is exhaustive —
//! the same argument the paper makes for the sequential algorithm.
//!
//! The result equals the sequential [`hypergraph::hypergraph_kcore`] in
//! surviving vertices and surviving hyperedge contents (hyperedge *ids*
//! can differ only between identical duplicate contents, where both
//! algorithms keep exactly one copy).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use rayon::prelude::*;

use hgobs::{Deadline, DeadlineExceeded};
use hypergraph::{EdgeId, Hypergraph, KCore, VertexId};

struct State<'h> {
    h: &'h Hypergraph,
    alive_v: Vec<AtomicBool>,
    alive_e: Vec<AtomicBool>,
    deg_v: Vec<AtomicU32>,
    deg_e: Vec<AtomicU32>,
}

impl<'h> State<'h> {
    fn new(h: &'h Hypergraph) -> Self {
        State {
            h,
            alive_v: (0..h.num_vertices())
                .map(|_| AtomicBool::new(true))
                .collect(),
            alive_e: (0..h.num_edges()).map(|_| AtomicBool::new(true)).collect(),
            deg_v: h
                .vertices()
                .map(|v| AtomicU32::new(h.vertex_degree(v) as u32))
                .collect(),
            deg_e: h
                .edges()
                .map(|f| AtomicU32::new(h.edge_degree(f) as u32))
                .collect(),
        }
    }

    #[inline]
    fn v_alive(&self, v: usize) -> bool {
        self.alive_v[v].load(Ordering::Acquire)
    }

    #[inline]
    fn e_alive(&self, f: usize) -> bool {
        self.alive_e[f].load(Ordering::Acquire)
    }

    /// Alive pins of `f`, sorted (pins are stored sorted).
    fn alive_pins(&self, f: usize) -> impl Iterator<Item = u32> + '_ {
        self.h
            .pins(EdgeId(f as u32))
            .iter()
            .map(|v| v.0)
            .filter(move |&v| self.v_alive(v as usize))
    }

    /// `true` iff alive edge `f` is empty or contained in an alive edge
    /// `g` (strictly larger, or identical with smaller id). Snapshot
    /// semantics: callers only invoke this between phases.
    fn is_non_maximal(&self, f: usize) -> bool {
        let df = self.deg_e[f].load(Ordering::Relaxed);
        if df == 0 {
            return true;
        }
        // Candidate supersets: alive edges sharing the first alive pin of
        // f (any superset must contain every pin, so the first suffices).
        let Some(first) = self.alive_pins(f).next() else {
            return true;
        };
        self.h
            .edges_of(VertexId(first))
            .iter()
            .map(|g| g.index())
            .filter(|&g| g != f && self.e_alive(g))
            .any(|g| {
                let dg = self.deg_e[g].load(Ordering::Relaxed);
                let wins = dg > df || (dg == df && g < f);
                wins && is_alive_subset(self, f, g)
            })
    }
}

/// `true` iff alive pins of `f` ⊆ alive pins of `g` (both sorted).
fn is_alive_subset(s: &State<'_>, f: usize, g: usize) -> bool {
    let mut git = s.alive_pins(g).peekable();
    for x in s.alive_pins(f) {
        loop {
            match git.peek() {
                None => return false,
                Some(&y) if y < x => {
                    git.next();
                }
                Some(&y) if y == x => {
                    git.next();
                    break;
                }
                Some(_) => return false,
            }
        }
    }
    true
}

/// Parallel k-core (level-synchronous). See the module docs for the
/// algorithm and its equivalence to the sequential version.
pub fn par_hypergraph_kcore(h: &Hypergraph, k: u32) -> KCore {
    match par_hypergraph_kcore_with(h, k, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_hypergraph_kcore`] under a cooperative [`Deadline`]. The clock
/// is read at every phase barrier (round top and between the edge and
/// vertex phases), latching the shared flag that the per-item filter
/// closures poll with a relaxed load — so overshoot is bounded by one
/// parallel phase. The error's `work_done` counts vertices peeled by
/// completed rounds.
pub fn par_hypergraph_kcore_with(
    h: &Hypergraph,
    k: u32,
    deadline: &Deadline,
) -> Result<KCore, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.par");
    let s = State::new(h);
    let mut rounds: u64 = 0;
    let mut peeled: u64 = 0;

    // Initial edge phase: reduce the input (all edges are "affected").
    let mut affected: Vec<u32> = (0..h.num_edges() as u32).collect();
    loop {
        rounds += 1;
        deadline.check("kcore.par.round", peeled)?;
        // ---- edge phase: delete non-maximal affected edges ----
        let dead_edges: Vec<u32> = affected
            .par_iter()
            .copied()
            .filter(|&f| {
                !deadline.cancelled() && s.e_alive(f as usize) && s.is_non_maximal(f as usize)
            })
            .collect();
        // A cancellation latched mid-filter may have skipped edges; bail
        // before applying a partial phase rather than act on it.
        deadline.check("kcore.par.edge_phase", peeled)?;
        // Claim and apply deletions (parallel; CAS makes claims unique).
        dead_edges.par_iter().for_each(|&f| {
            let f = f as usize;
            if s.alive_e[f]
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for &w in h.pins(EdgeId(f as u32)) {
                    if s.v_alive(w.index()) {
                        s.deg_v[w.index()].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        });

        // ---- vertex phase: peel everything under the threshold ----
        let frontier: Vec<u32> = (0..h.num_vertices() as u32)
            .into_par_iter()
            .filter(|&v| {
                !deadline.cancelled()
                    && s.v_alive(v as usize)
                    && s.deg_v[v as usize].load(Ordering::Relaxed) < k
            })
            .collect();
        // Same guard: a partial frontier must never feed the break
        // condition or the peel below.
        deadline.check("kcore.par.vertex_phase", peeled)?;
        hgobs::hist!("kcore.par.frontier", frontier.len());
        if frontier.is_empty() && dead_edges.is_empty() {
            break;
        }
        if frontier.is_empty() {
            // Edge deletions happened but no vertex fell below k; the
            // next edge phase has nothing new to check (edge deletion
            // cannot create containment), so we are done unless degrees
            // changed — which they did only for vertices. Re-loop with an
            // empty affected set to hit the emptiness check above.
            affected = Vec::new();
            continue;
        }
        let next_affected: Vec<u32> = {
            frontier.par_iter().for_each(|&v| {
                let v = v as usize;
                if s.alive_v[v]
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    for &f in h.edges_of(VertexId(v as u32)) {
                        if s.e_alive(f.index()) {
                            s.deg_e[f.index()].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            // Affected edges: alive edges touching any peeled vertex.
            let mut edges: Vec<u32> = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    h.edges_of(VertexId(v))
                        .iter()
                        .map(|f| f.0)
                        .filter(|&f| s.e_alive(f as usize))
                        .collect::<Vec<_>>()
                })
                .collect();
            edges.par_sort_unstable();
            edges.dedup();
            edges
        };
        peeled += frontier.len() as u64;
        affected = next_affected;
    }

    hgobs::counter!("kcore.par.rounds", rounds);
    let keep_v: Vec<bool> = s
        .alive_v
        .iter()
        .map(|a| a.load(Ordering::Acquire))
        .collect();
    let keep_e: Vec<bool> = s
        .alive_e
        .iter()
        .map(|a| a.load(Ordering::Acquire))
        .collect();
    let (sub, vertices, edges) = h.sub_hypergraph(&keep_v, &keep_e, false);
    Ok(KCore {
        k,
        vertices,
        edges,
        sub,
    })
}

/// Parallel maximum core: largest k with a non-empty k-core. Same
/// doubling + binary search over `k` as [`hypergraph::max_core`]
/// (k-cores are nested, so non-emptiness is monotone in `k`).
pub fn par_max_core(h: &Hypergraph) -> Option<KCore> {
    match par_max_core_with(h, &Deadline::none()) {
        Ok(core) => core,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_max_core`] under a cooperative [`Deadline`]; every peel in the
/// doubling and binary-search phases runs under the same token.
pub fn par_max_core_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Option<KCore>, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.par.max_core_search");
    if par_hypergraph_kcore_with(h, 1, deadline)?.is_empty() {
        return Ok(None);
    }
    let mut lo = 1u32;
    let mut hi = 2u32;
    while !par_hypergraph_kcore_with(h, hi, deadline)?.is_empty() {
        lo = hi;
        hi = hi.saturating_mul(2);
        if hi as usize > h.max_vertex_degree() + 1 {
            hi = h.max_vertex_degree() as u32 + 1;
            break;
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if par_hypergraph_kcore_with(h, mid, deadline)?.is_empty() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(par_hypergraph_kcore_with(h, lo, deadline)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{hypergraph_kcore, HypergraphBuilder};

    fn contents(h: &Hypergraph, core: &KCore) -> Vec<Vec<u32>> {
        let alive: std::collections::HashSet<u32> = core.vertices.iter().map(|v| v.0).collect();
        let mut out: Vec<Vec<u32>> = core
            .edges
            .iter()
            .map(|&f| {
                h.pins(f)
                    .iter()
                    .map(|v| v.0)
                    .filter(|v| alive.contains(v))
                    .collect()
            })
            .collect();
        out.sort();
        out
    }

    fn assert_equivalent(h: &Hypergraph, k: u32) {
        let seq = hypergraph_kcore(h, k);
        let par = par_hypergraph_kcore(h, k);
        assert_eq!(seq.vertices, par.vertices, "k = {k}");
        assert_eq!(contents(h, &seq), contents(h, &par), "k = {k}");
    }

    #[test]
    fn matches_sequential_on_small_cases() {
        let cases: Vec<Hypergraph> = vec![
            {
                let mut b = HypergraphBuilder::new(6);
                b.add_edge([0, 1, 3]);
                b.add_edge([1, 2, 4]);
                b.add_edge([0, 2, 5]);
                b.build()
            },
            {
                let mut b = HypergraphBuilder::new(5);
                b.add_edge([0, 1, 2, 3, 4]);
                b.add_edge([0, 1, 2]);
                b.add_edge([0, 1]);
                b.add_edge([3, 4]);
                b.add_edge([]);
                b.build()
            },
            {
                let mut b = HypergraphBuilder::new(4);
                b.add_edge([0, 1]);
                b.add_edge([0, 1]);
                b.add_edge([1, 2]);
                b.add_edge([2, 3]);
                b.build()
            },
        ];
        for h in &cases {
            for k in 0..5 {
                assert_equivalent(h, k);
            }
        }
    }

    #[test]
    fn matches_sequential_on_planted_core() {
        let h = hypergen::planted_core_hypergraph(30, 40, 6, 200, 17);
        for k in 1..8 {
            assert_equivalent(&h, k);
        }
        let seq = hypergraph::max_core(&h).unwrap();
        let par = par_max_core(&h).unwrap();
        assert_eq!(seq.k, par.k);
        assert_eq!(seq.vertices, par.vertices);
    }

    #[test]
    fn matches_sequential_on_uniform_random() {
        for seed in 0..4u64 {
            let h = hypergen::uniform_random_hypergraph(60, 120, 4, seed);
            for k in 1..7 {
                assert_equivalent(&h, k);
            }
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let h = HypergraphBuilder::new(0).build();
        assert!(par_max_core(&h).is_none());
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([]);
        let h = b.build();
        assert!(par_hypergraph_kcore(&h, 1).is_empty());
    }

    #[test]
    fn cancelled_deadline_aborts_before_first_phase_applies() {
        let h = hypergen::uniform_random_hypergraph(200, 300, 4, 21);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = par_hypergraph_kcore_with(&h, 2, &dl).unwrap_err();
        assert_eq!(err.phase, "kcore.par.round");
        assert_eq!(err.work_done, 0, "{err:?}");
        assert!(par_max_core_with(&h, &dl).is_err());
    }

    #[test]
    fn unlimited_deadline_matches_plain_par_kcore() {
        let h = hypergen::uniform_random_hypergraph(60, 120, 4, 2);
        for k in 1..5 {
            let a = par_hypergraph_kcore(&h, k);
            let b = par_hypergraph_kcore_with(&h, k, &Deadline::none()).unwrap();
            assert_eq!(a.vertices, b.vertices, "k = {k}");
            assert_eq!(contents(&h, &a), contents(&h, &b), "k = {k}");
        }
    }

    #[test]
    fn core_invariants_hold() {
        let h = hypergen::uniform_random_hypergraph(40, 80, 5, 9);
        for k in 1..6 {
            let core = par_hypergraph_kcore(&h, k);
            hypergraph::validate::check_structure(&core.sub).unwrap();
            assert!(hypergraph::non_maximal_edges(&core.sub).is_empty());
            assert!(core
                .sub
                .vertices()
                .all(|v| core.sub.vertex_degree(v) >= k as usize));
        }
    }
}
