//! Sharded parallel construction of the flat CSR overlap engine, and the
//! parallel front-end to the incremental k-core decomposition.
//!
//! [`hypergraph::CsrOverlap`] is assembled from distinct sorted
//! `(f, g, |f ∩ g|)` triples. Here each worker owns a contiguous vertex
//! range and produces that range's contribution — locally generated
//! `(f, g)` pairs, sorted and run-length encoded — so nothing is shared
//! during generation. A pair can receive contributions from several
//! shards (one per shared vertex), so the shard outputs are concatenated,
//! parallel-sorted, and merge-summed before the single CSR assembly.
//!
//! [`par_decompose`] plugs this builder in front of
//! [`hypergraph::decompose_from_overlap`]: the `O(Σ_v d(v)²)` build is
//! the dominant cost of a decomposition on overlap-dense inputs, and it
//! parallelizes; the confluent peel that follows stays sequential.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rayon::prelude::*;

use hgobs::{Deadline, DeadlineExceeded};
use hypergraph::{CsrOverlap, Decomposition, Hypergraph, VertexId};

/// [`par_csr_overlap_with`] with no deadline.
pub fn par_csr_overlap(h: &Hypergraph) -> CsrOverlap {
    match par_csr_overlap_with(h, &Deadline::none()) {
        Ok(ov) => ov,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// Build a [`CsrOverlap`] from per-vertex-range shards in parallel,
/// under a cooperative [`Deadline`] checked once per vertex (overshoot
/// bounded by the widest adjacency list, as in
/// [`crate::par_overlap_table_with`]). The error's `work_done` counts
/// pairs generated before expiry.
pub fn par_csr_overlap_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<CsrOverlap, DeadlineExceeded> {
    let _span = hgobs::Span::enter("overlap.csr.par.build");
    let n = h.num_vertices();
    let shards = (rayon::current_num_threads() * 4).max(1);
    let chunk = n.div_ceil(shards).max(1);
    let tripped = AtomicBool::new(false);
    let pairs_generated = AtomicU64::new(0);
    let shard_triples: Vec<Vec<(u32, u32, u32)>> = (0..n.div_ceil(chunk))
        .into_par_iter()
        .map(|s| {
            // One trace event per shard: the per-vertex-range unit the
            // parallel build distributes over workers.
            let mut tp = deadline.trace().phase("overlap.shard");
            let mut local: Vec<(u32, u32)> = Vec::new();
            for v in (s * chunk)..((s + 1) * chunk).min(n) {
                if tripped.load(Ordering::Relaxed) || deadline.expired() {
                    tripped.store(true, Ordering::Relaxed);
                    break;
                }
                let adj = h.edges_of(VertexId(v as u32));
                for (i, &f) in adj.iter().enumerate() {
                    for &g in &adj[i + 1..] {
                        local.push((f.0, g.0));
                    }
                }
            }
            pairs_generated.fetch_add(local.len() as u64, Ordering::Relaxed);
            tp.add_work(local.len() as u64);
            local.sort_unstable();
            let mut triples: Vec<(u32, u32, u32)> = Vec::new();
            for (f, g) in local {
                match triples.last_mut() {
                    Some((lf, lg, c)) if *lf == f && *lg == g => *c += 1,
                    _ => triples.push((f, g, 1)),
                }
            }
            triples
        })
        .collect();
    let generated = pairs_generated.load(Ordering::Relaxed);
    hgobs::counter!("overlap.csr.par.pairs", generated);
    if tripped.load(Ordering::Relaxed) {
        return Err(deadline.exceeded("overlap.csr.par.build", generated));
    }
    let mut triples: Vec<(u32, u32, u32)> = shard_triples.into_iter().flatten().collect();
    triples.par_sort_unstable_by_key(|&(f, g, _)| (f, g));
    // Merge contributions of the same pair from different shards.
    let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(triples.len());
    for (f, g, c) in triples {
        match merged.last_mut() {
            Some((lf, lg, lc)) if *lf == f && *lg == g => *lc += c,
            _ => merged.push((f, g, c)),
        }
    }
    Ok(CsrOverlap::from_triples(h.num_edges(), &merged))
}

/// [`par_decompose_with`] with no deadline.
pub fn par_decompose(h: &Hypergraph) -> Decomposition {
    match par_decompose_with(h, &Deadline::none()) {
        Ok(d) => d,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// Full k-core decomposition with the overlap table built in parallel
/// and the incremental sweep run sequentially on top of it. Identical
/// output to [`hypergraph::decompose()`].
pub fn par_decompose_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Decomposition, DeadlineExceeded> {
    let _span = hgobs::Span::enter("kcore.decompose.par");
    let ov = par_csr_overlap_with(h, deadline)?;
    hypergraph::decompose_from_overlap(h, ov, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{EdgeId, HypergraphBuilder};

    fn rows(ov: &CsrOverlap, m: usize) -> Vec<Vec<(EdgeId, u32)>> {
        (0..m)
            .map(|f| ov.overlapping(EdgeId(f as u32)).collect())
            .collect()
    }

    #[test]
    fn matches_sequential_build() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3, 4]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        let seq = CsrOverlap::build(&h);
        let par = par_csr_overlap(&h);
        assert_eq!(rows(&par, h.num_edges()), rows(&seq, h.num_edges()));
    }

    #[test]
    fn matches_on_random() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(80, 100, 5, seed);
            let seq = CsrOverlap::build(&h);
            let par = par_csr_overlap(&h);
            assert_eq!(rows(&par, h.num_edges()), rows(&seq, h.num_edges()));
            assert_eq!(par.max_d2_edge(), seq.max_d2_edge());
        }
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        assert_eq!(par_csr_overlap(&h).num_edges(), 0);
    }

    #[test]
    fn cancelled_deadline_stops_build() {
        let h = hypergen::uniform_random_hypergraph(300, 400, 5, 8);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = par_csr_overlap_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "overlap.csr.par.build");
        assert!(par_decompose_with(&h, &dl).is_err());
    }

    #[test]
    fn par_decompose_matches_sequential() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(120, 150, 4, seed);
            let a = hypergraph::decompose(&h);
            let b = par_decompose(&h);
            assert_eq!(a.profile, b.profile, "seed {seed}");
            assert_eq!(a.core_numbers, b.core_numbers, "seed {seed}");
            match (a.max_core, b.max_core) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.k, x.vertices, x.edges), (y.k, y.vertices, y.edges));
                }
                (None, None) => {}
                _ => panic!("max_core liveness disagreement, seed {seed}"),
            }
        }
    }
}
