//! Parallel pairwise hyperedge overlap computation.
//!
//! The sequential k-core spends its setup in
//! [`hypergraph::OverlapTable::build`], which is `O(Σ_v d(v)²)`. Here the
//! per-vertex pair lists are generated in parallel, sorted, and reduced
//! to per-pair counts — same information, different layout: a flat sorted
//! vector of `(f, g, |f ∩ g|)` with `f < g`.

use rayon::prelude::*;

#[cfg(test)]
use hypergraph::OverlapTable;
use hypergraph::{EdgeId, Hypergraph};

/// All nonzero pairwise overlaps as sorted `(f, g, count)` triples with
/// `f < g`.
pub fn par_overlap_table(h: &Hypergraph) -> Vec<(EdgeId, EdgeId, u32)> {
    let _span = hgobs::Span::enter("overlap.par.build");
    let mut pairs: Vec<(u32, u32)> = h
        .vertices()
        .collect::<Vec<_>>()
        .par_iter()
        .flat_map_iter(|&v| {
            let adj = h.edges_of(v);
            let mut local = Vec::with_capacity(adj.len() * adj.len().saturating_sub(1) / 2);
            for (i, &f) in adj.iter().enumerate() {
                for &g in &adj[i + 1..] {
                    local.push((f.0, g.0));
                }
            }
            local
        })
        .collect();
    hgobs::counter!("overlap.par.pairs", pairs.len());
    pairs.par_sort_unstable();

    let mut out: Vec<(EdgeId, EdgeId, u32)> = Vec::new();
    for (f, g) in pairs {
        match out.last_mut() {
            Some(last) if last.0 .0 == f && last.1 .0 == g => last.2 += 1,
            _ => out.push((EdgeId(f), EdgeId(g), 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::HypergraphBuilder;

    fn reference(h: &Hypergraph) -> Vec<(EdgeId, EdgeId, u32)> {
        let t = OverlapTable::build(h);
        let mut out = Vec::new();
        for f in h.edges() {
            for (g, c) in t.overlapping(f) {
                if f < g {
                    out.push((f, g, c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_sequential_table() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3, 4]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        assert_eq!(par_overlap_table(&h), reference(&h));
    }

    #[test]
    fn matches_on_random() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(50, 60, 5, seed);
            assert_eq!(par_overlap_table(&h), reference(&h));
        }
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        assert!(par_overlap_table(&h).is_empty());
    }
}
