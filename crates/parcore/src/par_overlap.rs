//! Parallel pairwise hyperedge overlap computation.
//!
//! The sequential k-core spends its setup in
//! [`hypergraph::OverlapTable::build`], which is `O(Σ_v d(v)²)`. Here the
//! per-vertex pair lists are generated in parallel, sorted, and reduced
//! to per-pair counts — same information, different layout: a flat sorted
//! vector of `(f, g, |f ∩ g|)` with `f < g`.

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

use hgobs::{Deadline, DeadlineExceeded};
#[cfg(test)]
use hypergraph::OverlapTable;
use hypergraph::{EdgeId, Hypergraph};

/// All nonzero pairwise overlaps as sorted `(f, g, count)` triples with
/// `f < g`.
pub fn par_overlap_table(h: &Hypergraph) -> Vec<(EdgeId, EdgeId, u32)> {
    match par_overlap_table_with(h, &Deadline::none()) {
        Ok(table) => table,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_overlap_table`] under a cooperative [`Deadline`], checked once
/// per vertex by the parallel pair generators (each per-vertex chunk is
/// `O(d(v)²)`, so overshoot is bounded by the widest adjacency list).
/// The error's `work_done` counts the pairs generated before expiry.
pub fn par_overlap_table_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<Vec<(EdgeId, EdgeId, u32)>, DeadlineExceeded> {
    let _span = hgobs::Span::enter("overlap.par.build");
    let tripped = AtomicBool::new(false);
    let mut pairs: Vec<(u32, u32)> = h
        .vertices()
        .collect::<Vec<_>>()
        .par_iter()
        .flat_map_iter(|&v| {
            if tripped.load(Ordering::Relaxed) || deadline.expired() {
                tripped.store(true, Ordering::Relaxed);
                return Vec::new();
            }
            let adj = h.edges_of(v);
            let mut local = Vec::with_capacity(adj.len() * adj.len().saturating_sub(1) / 2);
            for (i, &f) in adj.iter().enumerate() {
                for &g in &adj[i + 1..] {
                    local.push((f.0, g.0));
                }
            }
            local
        })
        .collect();
    hgobs::counter!("overlap.par.pairs", pairs.len());
    if tripped.load(Ordering::Relaxed) {
        return Err(deadline.exceeded("overlap.par.build", pairs.len() as u64));
    }
    pairs.par_sort_unstable();

    let mut out: Vec<(EdgeId, EdgeId, u32)> = Vec::new();
    for (f, g) in pairs {
        match out.last_mut() {
            Some(last) if last.0 .0 == f && last.1 .0 == g => last.2 += 1,
            _ => out.push((EdgeId(f), EdgeId(g), 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::HypergraphBuilder;

    fn reference(h: &Hypergraph) -> Vec<(EdgeId, EdgeId, u32)> {
        let t = OverlapTable::build(h);
        let mut out = Vec::new();
        for f in h.edges() {
            for (g, c) in t.overlapping(f) {
                if f < g {
                    out.push((f, g, c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_sequential_table() {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([1, 2, 3]);
        b.add_edge([3, 4]);
        b.add_edge([0, 1, 2]);
        let h = b.build();
        assert_eq!(par_overlap_table(&h), reference(&h));
    }

    #[test]
    fn matches_on_random() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(50, 60, 5, seed);
            assert_eq!(par_overlap_table(&h), reference(&h));
        }
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        assert!(par_overlap_table(&h).is_empty());
    }

    #[test]
    fn cancelled_deadline_stops_pair_generation() {
        let h = hypergen::uniform_random_hypergraph(300, 400, 5, 8);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = par_overlap_table_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "overlap.par.build");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn unlimited_deadline_matches_plain_table() {
        let h = hypergen::uniform_random_hypergraph(50, 60, 5, 1);
        assert_eq!(
            par_overlap_table(&h),
            par_overlap_table_with(&h, &Deadline::none()).unwrap()
        );
    }
}
