//! Level-synchronous parallel core decomposition of a plain graph
//! (the "ParK" scheme): process levels k = 0, 1, 2, …; at each level,
//! repeatedly peel the frontier of vertices whose current degree is ≤ k,
//! decrementing neighbour degrees atomically. Each vertex's core number
//! is the level at which it is peeled.

use std::sync::atomic::{AtomicU32, Ordering};

use graphcore::{CoreDecomposition, Graph, NodeId};
use rayon::prelude::*;

/// Parallel core decomposition; equivalent to
/// [`graphcore::core_decomposition`] in `core` values and `max_core`
/// (the `peel_order` is level-grouped rather than strictly sorted by
/// degree-at-removal within a level).
pub fn par_core_decomposition(g: &Graph) -> CoreDecomposition {
    let _span = hgobs::Span::enter("graph.kcore.par");
    let n = g.num_nodes();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            max_core: 0,
            peel_order: Vec::new(),
        };
    }

    let deg: Vec<AtomicU32> = g
        .nodes()
        .map(|u| AtomicU32::new(g.degree(u) as u32))
        .collect();
    // u32::MAX = not yet assigned.
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();

    let mut peel_order: Vec<NodeId> = Vec::with_capacity(n);
    let mut remaining = n;
    let mut k = 0u32;

    while remaining > 0 {
        loop {
            // Frontier: unassigned vertices with degree <= k. Claim via
            // CAS on the core slot so each vertex is peeled exactly once.
            let frontier: Vec<u32> = (0..n as u32)
                .into_par_iter()
                .filter(|&v| {
                    core[v as usize].load(Ordering::Relaxed) == u32::MAX
                        && deg[v as usize].load(Ordering::Relaxed) <= k
                        && core[v as usize]
                            .compare_exchange(u32::MAX, k, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                })
                .collect();
            if frontier.is_empty() {
                break;
            }
            hgobs::hist!("graph.kcore.par.frontier", frontier.len());
            frontier.par_iter().for_each(|&v| {
                for &w in g.neighbors(NodeId(v)) {
                    if core[w.index()].load(Ordering::Relaxed) == u32::MAX {
                        deg[w.index()].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            remaining -= frontier.len();
            peel_order.extend(frontier.into_iter().map(NodeId));
        }
        k += 1;
    }
    hgobs::counter!("graph.kcore.par.levels", k);

    let core: Vec<u32> = core.into_iter().map(|c| c.into_inner()).collect();
    let max_core = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core,
        max_core,
        peel_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{core_decomposition, GraphBuilder};

    fn assert_matches(g: &Graph) {
        let seq = core_decomposition(g);
        let par = par_core_decomposition(g);
        assert_eq!(seq.core, par.core);
        assert_eq!(seq.max_core, par.max_core);
        assert_eq!(par.peel_order.len(), g.num_nodes());
    }

    #[test]
    fn matches_sequential_small() {
        let mut b = GraphBuilder::new(6);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        b.add_edge(NodeId(0), NodeId(4));
        b.add_edge(NodeId(4), NodeId(5));
        assert_matches(&b.build());
    }

    #[test]
    fn matches_sequential_random() {
        for seed in 0..3u64 {
            let weights = vec![5.0; 300];
            let g = hypergen::chung_lu_graph(&weights, seed);
            assert_matches(&g);
        }
    }

    #[test]
    fn matches_on_planted_core() {
        let g = hypergen::planted_core_graph(800, 25, 8, 2.5, 3.0, 0.3, 5);
        assert_matches(&g);
        assert_eq!(par_core_decomposition(&g).max_core, 8);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_matches(&GraphBuilder::new(0).build());
        assert_matches(&GraphBuilder::new(7).build());
    }
}
