//! Parallel hypergraph distance statistics: one BFS per source, sources
//! distributed over threads (each with private scratch buffers), results
//! reduced at the end. Exactly matches the sequential
//! [`hypergraph::hyper_distance_stats`].

use rayon::prelude::*;

use hypergraph::path::UNREACHABLE;
use hypergraph::{HyperDistanceStats, Hypergraph, VertexId};

/// Parallel exact distance statistics (diameter, average path length)
/// over all reachable ordered vertex pairs.
pub fn par_hyper_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    let sources: Vec<VertexId> = h.vertices().collect();
    par_hyper_distance_stats_from(h, &sources)
}

/// Parallel distance statistics from the given BFS sources.
pub fn par_hyper_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    let _span = hgobs::Span::enter("bfs.par.sweep");
    let (diameter, total, pairs) = sources
        .par_iter()
        .fold(
            || (0u32, 0u128, 0u64),
            |(mut diameter, mut total, mut pairs), &s| {
                let dist = hypergraph::hyper_distances(h, s);
                for (v, &d) in dist.iter().enumerate() {
                    if d != UNREACHABLE && v != s.index() {
                        diameter = diameter.max(d);
                        total += d as u128;
                        pairs += 1;
                    }
                }
                (diameter, total, pairs)
            },
        )
        .reduce(
            || (0u32, 0u128, 0u64),
            |a, b| (a.0.max(b.0), a.1 + b.1, a.2 + b.2),
        );
    HyperDistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{hyper_distance_stats, HypergraphBuilder};

    #[test]
    fn matches_sequential_chain() {
        let mut b = HypergraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge([i, i + 1]);
        }
        let h = b.build();
        assert_eq!(hyper_distance_stats(&h), par_hyper_distance_stats(&h));
    }

    #[test]
    fn matches_sequential_random() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(80, 60, 4, seed);
            assert_eq!(hyper_distance_stats(&h), par_hyper_distance_stats(&h));
        }
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        let s = par_hyper_distance_stats(&h);
        assert_eq!(s.reachable_pairs, 0);
        assert_eq!(s.diameter, 0);
    }

    #[test]
    fn subset_of_sources() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3, 4]);
        let h = b.build();
        let some = [VertexId(0), VertexId(4)];
        let par = par_hyper_distance_stats_from(&h, &some);
        let seq = hypergraph::path::hyper_distance_stats_from(&h, &some);
        assert_eq!(par, seq);
    }
}
