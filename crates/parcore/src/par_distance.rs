//! Parallel hypergraph distance statistics: one BFS per source, sources
//! distributed over threads (each with private scratch buffers), results
//! reduced at the end. Exactly matches the sequential
//! [`hypergraph::hyper_distance_stats`].
//!
//! The `*_with` variants share one [`hgobs::Deadline`] across all worker
//! threads: the first BFS whose clock check trips latches the token's
//! cancel flag, and every sibling worker observes it on its next
//! amortized tick, so the whole sweep unwinds within one check interval
//! per thread.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use hgobs::{Deadline, DeadlineExceeded};
use hypergraph::path::UNREACHABLE;
use hypergraph::{HyperDistanceStats, Hypergraph, VertexId};

/// Parallel exact distance statistics (diameter, average path length)
/// over all reachable ordered vertex pairs.
pub fn par_hyper_distance_stats(h: &Hypergraph) -> HyperDistanceStats {
    let sources: Vec<VertexId> = h.vertices().collect();
    par_hyper_distance_stats_from(h, &sources)
}

/// [`par_hyper_distance_stats`] under a cooperative [`Deadline`] shared
/// by every worker. The error's `work_done` counts BFS sources fully
/// completed across all threads.
pub fn par_hyper_distance_stats_with(
    h: &Hypergraph,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let sources: Vec<VertexId> = h.vertices().collect();
    par_hyper_distance_stats_from_with(h, &sources, deadline)
}

/// Parallel distance statistics from the given BFS sources.
pub fn par_hyper_distance_stats_from(h: &Hypergraph, sources: &[VertexId]) -> HyperDistanceStats {
    match par_hyper_distance_stats_from_with(h, sources, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`par_hyper_distance_stats_from`] under a cooperative [`Deadline`].
pub fn par_hyper_distance_stats_from_with(
    h: &Hypergraph,
    sources: &[VertexId],
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    let _span = hgobs::Span::enter("bfs.par.sweep");
    let completed = AtomicU64::new(0);
    let reduced = sources
        .par_iter()
        .fold(
            || Ok((0u32, 0u128, 0u64)),
            |acc: Result<_, ()>, &s| {
                let (mut diameter, mut total, mut pairs) = acc?;
                // A flag-only pre-check lets workers skip whole sources
                // once a sibling has latched expiry.
                if deadline.cancelled() {
                    return Err(());
                }
                let dist = hypergraph::hyper_distances_with(h, s, deadline).map_err(|_| ())?;
                for (v, &d) in dist.iter().enumerate() {
                    if d != UNREACHABLE && v != s.index() {
                        diameter = diameter.max(d);
                        total += d as u128;
                        pairs += 1;
                    }
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok((diameter, total, pairs))
            },
        )
        .reduce(
            || Ok((0u32, 0u128, 0u64)),
            |a, b| match (a, b) {
                (Ok(x), Ok(y)) => Ok((x.0.max(y.0), x.1 + y.1, x.2 + y.2)),
                _ => Err(()),
            },
        );
    match reduced {
        Ok((diameter, total, pairs)) => Ok(HyperDistanceStats {
            diameter,
            average_path_length: if pairs == 0 {
                0.0
            } else {
                total as f64 / pairs as f64
            },
            reachable_pairs: pairs,
        }),
        Err(()) => Err(deadline.exceeded("bfs.par.sweep", completed.load(Ordering::Relaxed))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{hyper_distance_stats, HypergraphBuilder};

    #[test]
    fn matches_sequential_chain() {
        let mut b = HypergraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge([i, i + 1]);
        }
        let h = b.build();
        assert_eq!(hyper_distance_stats(&h), par_hyper_distance_stats(&h));
    }

    #[test]
    fn matches_sequential_random() {
        for seed in 0..3u64 {
            let h = hypergen::uniform_random_hypergraph(80, 60, 4, seed);
            assert_eq!(hyper_distance_stats(&h), par_hyper_distance_stats(&h));
        }
    }

    #[test]
    fn empty() {
        let h = HypergraphBuilder::new(0).build();
        let s = par_hyper_distance_stats(&h);
        assert_eq!(s.reachable_pairs, 0);
        assert_eq!(s.diameter, 0);
    }

    #[test]
    fn subset_of_sources() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3, 4]);
        let h = b.build();
        let some = [VertexId(0), VertexId(4)];
        let par = par_hyper_distance_stats_from(&h, &some);
        let seq = hypergraph::path::hyper_distance_stats_from(&h, &some);
        assert_eq!(par, seq);
    }

    #[test]
    fn unlimited_deadline_matches_plain_variant() {
        let h = hypergen::uniform_random_hypergraph(80, 60, 4, 9);
        assert_eq!(
            par_hyper_distance_stats(&h),
            par_hyper_distance_stats_with(&h, &Deadline::none()).unwrap()
        );
    }

    #[test]
    fn cancelled_deadline_propagates_across_workers() {
        let h = hypergen::uniform_random_hypergraph(2000, 1500, 5, 3);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = par_hyper_distance_stats_with(&h, &dl).unwrap_err();
        assert_eq!(err.phase, "bfs.par.sweep");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn tiny_budget_stops_parallel_sweep_early() {
        let h = hypergen::uniform_random_hypergraph(3000, 2400, 5, 11);
        match par_hyper_distance_stats_with(&h, &Deadline::after_ms(2)) {
            Err(err) => {
                assert_eq!(err.phase, "bfs.par.sweep");
                assert!(err.work_done < 3000, "{err:?}");
            }
            // A machine fast enough to finish 3000 BFS sweeps in 2ms just
            // proves the Ok path; the cancelled test covers expiry.
            Ok(stats) => assert_eq!(stats, par_hyper_distance_stats(&h)),
        }
    }
}
