//! Hand-rolled scoped-thread parallelism (crossbeam) as a counterpoint
//! to the rayon work-stealing implementations: static chunking of BFS
//! sources over OS threads with explicit result reduction.
//!
//! Exists for the A4-style comparison: rayon's dynamic scheduling wins
//! when per-source costs are skewed (power-law components); static
//! chunking wins marginally when costs are uniform and the task count is
//! small. Results are identical either way, which the tests pin down.

use std::sync::atomic::{AtomicU64, Ordering};

use hgobs::{Deadline, DeadlineExceeded};
use hypergraph::path::UNREACHABLE;
use hypergraph::{HyperDistanceStats, Hypergraph, VertexId};

/// Fan `f` out over `threads` scoped OS threads and collect one result
/// per thread, in thread-index order. The closure receives its thread
/// index so callers can do static partitioning (`sources[i::threads]`)
/// or per-thread seeding. Used by the hgserve cache concurrency tests
/// and anywhere a fixed-width scoped fan-out beats spinning up rayon.
///
/// # Panics
/// If `threads == 0` or any worker panics.
pub fn scoped_run<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let f = &f;
                scope.spawn(move |_| f(i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope")
}

/// Distance statistics via `threads` scoped OS threads, each sweeping a
/// static chunk of BFS sources. Matches
/// [`hypergraph::hyper_distance_stats`] exactly.
///
/// # Panics
/// If `threads == 0`.
pub fn scoped_hyper_distance_stats(h: &Hypergraph, threads: usize) -> HyperDistanceStats {
    match scoped_hyper_distance_stats_with(h, threads, &Deadline::none()) {
        Ok(stats) => stats,
        Err(_) => unreachable!("an unlimited deadline cannot expire"),
    }
}

/// [`scoped_hyper_distance_stats`] under a cooperative [`Deadline`]
/// shared across the scoped threads: each worker pre-checks the shared
/// flag per source, the per-BFS amortized ticks do the clock work, and
/// the first tripped check latches cancellation for every sibling. The
/// error's `work_done` counts BFS sources fully completed by all threads.
///
/// # Panics
/// If `threads == 0`.
pub fn scoped_hyper_distance_stats_with(
    h: &Hypergraph,
    threads: usize,
    deadline: &Deadline,
) -> Result<HyperDistanceStats, DeadlineExceeded> {
    assert!(threads > 0, "need at least one thread");
    let sources: Vec<VertexId> = h.vertices().collect();
    if sources.is_empty() {
        return Ok(HyperDistanceStats {
            diameter: 0,
            average_path_length: 0.0,
            reachable_pairs: 0,
        });
    }
    let chunk = sources.len().div_ceil(threads);
    let completed = AtomicU64::new(0);

    let partials: Vec<Option<(u32, u128, u64)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .map(|chunk_sources| {
                let completed = &completed;
                scope.spawn(move |_| {
                    let mut diameter = 0u32;
                    let mut total = 0u128;
                    let mut pairs = 0u64;
                    for &s in chunk_sources {
                        if deadline.cancelled() {
                            return None;
                        }
                        let Ok(dist) = hypergraph::hyper_distances_with(h, s, deadline) else {
                            return None;
                        };
                        for (v, &d) in dist.iter().enumerate() {
                            if d != UNREACHABLE && v != s.index() {
                                diameter = diameter.max(d);
                                total += d as u128;
                                pairs += 1;
                            }
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Some((diameter, total, pairs))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");

    let mut acc = (0u32, 0u128, 0u64);
    for partial in partials {
        match partial {
            Some(b) => acc = (acc.0.max(b.0), acc.1 + b.1, acc.2 + b.2),
            None => {
                return Err(deadline.exceeded("bfs.scoped.sweep", completed.load(Ordering::Relaxed)))
            }
        }
    }
    let (diameter, total, pairs) = acc;
    Ok(HyperDistanceStats {
        diameter,
        average_path_length: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        reachable_pairs: pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{hyper_distance_stats, HypergraphBuilder};

    #[test]
    fn matches_sequential_across_thread_counts() {
        let h = hypergen::uniform_random_hypergraph(60, 50, 4, 11);
        let seq = hyper_distance_stats(&h);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(seq, scoped_hyper_distance_stats(&h, threads), "{threads}");
        }
    }

    #[test]
    fn more_threads_than_sources_ok() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 1]);
        let h = b.build();
        let s = scoped_hyper_distance_stats(&h, 16);
        assert_eq!(s.reachable_pairs, 2);
        assert_eq!(s.diameter, 1);
    }

    #[test]
    fn empty_hypergraph() {
        let h = HypergraphBuilder::new(0).build();
        let s = scoped_hyper_distance_stats(&h, 4);
        assert_eq!(s.reachable_pairs, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let h = HypergraphBuilder::new(1).build();
        let _ = scoped_hyper_distance_stats(&h, 0);
    }

    #[test]
    fn scoped_run_returns_in_index_order() {
        let out = scoped_run(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn scoped_run_shares_state_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        scoped_run(4, |i| total.fetch_add(i + 1, Ordering::Relaxed));
        assert_eq!(total.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn matches_rayon_variant() {
        let h = hypergen::uniform_random_hypergraph(80, 70, 5, 3);
        let rayon = crate::par_hyper_distance_stats(&h);
        let scoped = scoped_hyper_distance_stats(&h, 4);
        assert_eq!(rayon, scoped);
    }

    #[test]
    fn cancelled_deadline_stops_every_scoped_worker() {
        let h = hypergen::uniform_random_hypergraph(1500, 1200, 5, 5);
        let dl = Deadline::cancellable();
        dl.cancel();
        let err = scoped_hyper_distance_stats_with(&h, 4, &dl).unwrap_err();
        assert_eq!(err.phase, "bfs.scoped.sweep");
        assert_eq!(err.work_done, 0, "{err:?}");
    }

    #[test]
    fn unlimited_deadline_matches_plain_scoped_variant() {
        let h = hypergen::uniform_random_hypergraph(60, 50, 4, 11);
        assert_eq!(
            scoped_hyper_distance_stats(&h, 3),
            scoped_hyper_distance_stats_with(&h, 3, &Deadline::none()).unwrap()
        );
    }
}
