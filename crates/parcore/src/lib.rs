//! `parcore` — parallel k-core and distance algorithms.
//!
//! The paper closes its Table 1 discussion with: *"if the numbers of
//! vertices and hyperedges in the core are large, then the run times can
//! be substantial; hence for large hypergraphs, a parallel algorithm will
//! need to be designed."* This crate is that design:
//!
//! * [`par_kcore`] — a level-synchronous parallel hypergraph k-core:
//!   each round peels every sub-threshold vertex at once (rayon parallel
//!   iterators + atomic degree counters), then re-checks the affected
//!   hyperedges for maximality in parallel by direct sorted-subset tests
//!   against a consistent snapshot. Equivalent to the sequential
//!   algorithm (same surviving vertices; same surviving edge contents).
//! * [`par_graph`] — the level-synchronous parallel core decomposition of
//!   a plain graph (the "ParK" scheme) used for the DIP baselines.
//! * [`par_distance`] — embarrassingly parallel per-source BFS for the
//!   hypergraph distance statistics of §2.
//! * [`par_msbfs`] — the batched multi-source bitset BFS engine
//!   (64 sources per u64-mask batch) distributed over workers with
//!   private scratch; the default heavy-path engine for hgserve.
//! * [`par_overlap`] — parallel construction of the pairwise hyperedge
//!   overlap table.
//! * [`par_csr_overlap()`] — sharded parallel assembly of the flat CSR
//!   overlap engine, feeding the sequential incremental decomposition
//!   ([`par_decompose`]).
//!
//! Memory-ordering notes: degree counters use `fetch_sub(Relaxed)` — the
//! value is only *read* after the round's barrier (rayon's fork-join
//! guarantees happens-before), so no acquire/release is needed on the
//! counters themselves. Liveness flags are claimed with
//! `compare_exchange(AcqRel)` so each vertex/edge is deleted exactly once.

pub mod par_csr_overlap;
pub mod par_distance;
pub mod par_graph;
pub mod par_kcore;
pub mod par_msbfs;
pub mod par_overlap;
pub mod scoped;

pub use par_csr_overlap::{
    par_csr_overlap, par_csr_overlap_with, par_decompose, par_decompose_with,
};
pub use par_distance::{
    par_hyper_distance_stats, par_hyper_distance_stats_from, par_hyper_distance_stats_from_with,
    par_hyper_distance_stats_with,
};
pub use par_graph::par_core_decomposition;
pub use par_kcore::{
    par_hypergraph_kcore, par_hypergraph_kcore_with, par_max_core, par_max_core_with,
};
pub use par_msbfs::{
    par_msbfs_distance_stats, par_msbfs_distance_stats_from, par_msbfs_distance_stats_from_with,
    par_msbfs_distance_stats_with, par_small_world_report, par_small_world_report_with,
};
pub use par_overlap::{par_overlap_table, par_overlap_table_with};
pub use scoped::{scoped_hyper_distance_stats, scoped_hyper_distance_stats_with, scoped_run};
