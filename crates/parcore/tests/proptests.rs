//! Property-based equivalence tests: parallel implementations must match
//! the sequential ones on arbitrary inputs.

use proptest::prelude::*;

use hypergraph::{Hypergraph, HypergraphBuilder};
use parcore::{
    par_core_decomposition, par_hyper_distance_stats, par_hypergraph_kcore,
    scoped_hyper_distance_stats,
};

fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

fn restricted_contents(h: &Hypergraph, core: &hypergraph::KCore) -> Vec<Vec<u32>> {
    let alive: std::collections::HashSet<u32> = core.vertices.iter().map(|v| v.0).collect();
    let mut out: Vec<Vec<u32>> = core
        .edges
        .iter()
        .map(|&f| {
            h.pins(f)
                .iter()
                .map(|v| v.0)
                .filter(|v| alive.contains(v))
                .collect()
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel k-core == sequential k-core (vertices and edge contents).
    #[test]
    fn par_kcore_equivalent((h, k) in arb_hypergraph(12, 12, 6).prop_flat_map(|h| (Just(h), 0u32..5))) {
        let seq = hypergraph::hypergraph_kcore(&h, k);
        let par = par_hypergraph_kcore(&h, k);
        prop_assert_eq!(&seq.vertices, &par.vertices, "k = {}", k);
        prop_assert_eq!(
            restricted_contents(&h, &seq),
            restricted_contents(&h, &par),
            "k = {}", k
        );
    }

    /// Parallel distance stats == sequential.
    #[test]
    fn par_distances_equivalent(h in arb_hypergraph(14, 10, 5)) {
        let seq = hypergraph::hyper_distance_stats(&h);
        prop_assert_eq!(seq, par_hyper_distance_stats(&h));
    }

    /// Scoped (crossbeam) distance stats == sequential, any thread count.
    #[test]
    fn scoped_distances_equivalent(
        h in arb_hypergraph(14, 10, 5),
        threads in 1usize..6,
    ) {
        let seq = hypergraph::hyper_distance_stats(&h);
        prop_assert_eq!(seq, scoped_hyper_distance_stats(&h, threads));
    }

    /// Parallel graph core decomposition == sequential.
    #[test]
    fn par_graph_cores_equivalent(
        (n, edges) in (1usize..20).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..50),
        ))
    ) {
        let mut b = graphcore::GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v {
                b.add_edge(graphcore::NodeId(u), graphcore::NodeId(v));
            }
        }
        let g = b.build();
        let seq = graphcore::core_decomposition(&g);
        let par = par_core_decomposition(&g);
        prop_assert_eq!(seq.core, par.core);
        prop_assert_eq!(seq.max_core, par.max_core);
    }

    /// Parallel overlap triples match the sequential table.
    #[test]
    fn par_overlap_equivalent(h in arb_hypergraph(12, 10, 5)) {
        let table = hypergraph::OverlapTable::build(&h);
        for (f, g, c) in parcore::par_overlap_table(&h) {
            prop_assert_eq!(table.overlap(f, g), c);
        }
    }
}
