//! MS-BFS equivalence suite: the batched bitset engines (sequential and
//! parallel) must be *bit-identical* to the scalar per-source BFS oracle
//! on arbitrary hypergraphs — same diameter, same integer pair counts,
//! and the exact same f64 average path length (all accumulators are
//! integers, so no floating-point tolerance is needed or used).

use proptest::prelude::*;

use hgobs::Deadline;
use hypergraph::{
    msbfs_distance_stats, msbfs_eccentricities, scalar_hyper_distance_stats,
    scalar_hyper_distance_stats_from, Hypergraph, HypergraphBuilder, VertexId,
};
use parcore::{par_msbfs_distance_stats, par_msbfs_distance_stats_from};

fn arb_hypergraph(
    max_v: usize,
    max_e: usize,
    max_size: usize,
) -> impl Strategy<Value = Hypergraph> {
    (1..=max_v).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(0..n as u32, 0..=max_size),
            0..=max_e,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n);
            for e in edges {
                b.add_edge(e);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential MS-BFS == scalar oracle, bit for bit. The generator
    /// produces disconnected hypergraphs, isolated vertices, duplicate
    /// and empty hyperedges as a matter of course.
    #[test]
    fn msbfs_bit_identical_to_scalar(h in arb_hypergraph(90, 40, 6)) {
        let oracle = scalar_hyper_distance_stats(&h);
        let batched = msbfs_distance_stats(&h);
        prop_assert_eq!(oracle.diameter, batched.diameter);
        prop_assert_eq!(oracle.reachable_pairs, batched.reachable_pairs);
        // Exact f64 equality is intentional: both engines divide the
        // same u128 total by the same u64 pair count.
        prop_assert_eq!(
            oracle.average_path_length.to_bits(),
            batched.average_path_length.to_bits()
        );
    }

    /// Parallel MS-BFS == scalar oracle, bit for bit.
    #[test]
    fn par_msbfs_bit_identical_to_scalar(h in arb_hypergraph(90, 40, 6)) {
        let oracle = scalar_hyper_distance_stats(&h);
        let batched = par_msbfs_distance_stats(&h);
        prop_assert_eq!(oracle, batched);
        prop_assert_eq!(
            oracle.average_path_length.to_bits(),
            batched.average_path_length.to_bits()
        );
    }

    /// Source-subset sweeps agree too (the sampled-diameter path).
    #[test]
    fn subset_sources_bit_identical(
        (h, take) in arb_hypergraph(70, 30, 5)
            .prop_flat_map(|h| {
                let n = h.num_vertices();
                (Just(h), 0..=n)
            })
    ) {
        let sources: Vec<VertexId> = (0..take as u32).map(VertexId).collect();
        let oracle = scalar_hyper_distance_stats_from(&h, &sources);
        prop_assert_eq!(
            oracle,
            hypergraph::path::hyper_distance_stats_from(&h, &sources)
        );
        prop_assert_eq!(oracle, par_msbfs_distance_stats_from(&h, &sources));
    }

    /// Batched eccentricities match one scalar BFS per source.
    #[test]
    fn msbfs_eccentricities_match_scalar_bfs(h in arb_hypergraph(70, 30, 5)) {
        let sources: Vec<VertexId> = h.vertices().collect();
        let ecc = msbfs_eccentricities(&h, &sources);
        for (&s, &e) in sources.iter().zip(&ecc) {
            let scalar = hypergraph::hyper_distances(&h, s)
                .into_iter()
                .filter(|&d| d != hypergraph::path::UNREACHABLE)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(e, scalar, "source {:?}", s);
        }
    }
}

#[test]
fn empty_and_single_vertex_edge_cases() {
    let h = HypergraphBuilder::new(0).build();
    assert_eq!(scalar_hyper_distance_stats(&h), msbfs_distance_stats(&h));
    assert_eq!(
        scalar_hyper_distance_stats(&h),
        par_msbfs_distance_stats(&h)
    );

    let mut b = HypergraphBuilder::new(1);
    b.add_edge([0]);
    let h = b.build();
    let s = msbfs_distance_stats(&h);
    assert_eq!(s, scalar_hyper_distance_stats(&h));
    assert_eq!(s, par_msbfs_distance_stats(&h));
    assert_eq!(s.reachable_pairs, 0);
}

#[test]
fn hypergen_instances_bit_identical_across_engines() {
    for seed in [1u64, 17, 99] {
        let h = hypergen::uniform_random_hypergraph(500, 350, 5, seed);
        let oracle = scalar_hyper_distance_stats(&h);
        assert_eq!(oracle, msbfs_distance_stats(&h), "seed {seed}");
        assert_eq!(oracle, par_msbfs_distance_stats(&h), "seed {seed}");
    }
}

/// A deadline that expires mid-sweep surfaces a 504-grade error carrying
/// the batches completed so far — strictly between zero and the total —
/// proving partial work is reported, not discarded or rounded to "none".
#[test]
fn mid_sweep_expiry_reports_partial_batch_count() {
    // Long pair-edge chain: per-batch fixpoint needs ~n levels, so the
    // sweep is slow enough for a microsecond budget to trip mid-way on
    // any realistic machine; escalate the size until it does.
    for n in [4_000u32, 8_000, 16_000] {
        let mut b = HypergraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge([i, i + 1]);
        }
        let h = b.build();
        let total_batches = (n as u64).div_ceil(hypergraph::BATCH as u64);
        let err = match parcore::par_msbfs_distance_stats_with(&h, &Deadline::after_ms(3)) {
            Err(e) => e,
            Ok(_) => continue,
        };
        assert_eq!(err.phase, "msbfs.par");
        assert!(err.work_done < total_batches, "{err:?}");
        return;
    }
    panic!("even the 16k-vertex chain finished inside 3ms; budget too generous");
}
