//! Log-linear histogram bucket layout: HDR-style, two sub-buckets per
//! octave, covering the full `u64` range in [`NUM_BUCKETS`] slots.
//!
//! Bucket 0 holds exactly the value 0 and bucket 1 exactly the value 1;
//! every later octave `[2^e, 2^(e+1))` is split at `1.5 * 2^e` into two
//! buckets, so the relative width of any bucket is at most 50% of its
//! lower bound. That is coarse enough to keep the registry's per-name
//! footprint at 128 `u64`s and fine enough that a quantile read off the
//! bucket boundaries brackets the exact order statistic within one
//! bucket (≤ 50% relative error), which the proptests pin down.

/// Number of bucket slots: indices `0..=127`.
pub const NUM_BUCKETS: usize = 128;

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        1 => 1,
        _ => {
            // v >= 2, so e >= 1 and bit e-1 exists: it decides which
            // half of the octave [2^e, 2^(e+1)) the value falls in.
            let e = 63 - v.leading_zeros() as usize;
            let half = ((v >> (e - 1)) & 1) as usize;
            2 * e + half
        }
    }
}

/// Largest value that lands in bucket `i` (inclusive upper bound).
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    match i {
        0 => 0,
        1 => 1,
        _ => {
            let e = i / 2;
            if i % 2 == 0 {
                // First half of the octave: [2^e, 1.5 * 2^e).
                (3u64 << (e - 1)) - 1
            } else if e == 63 {
                u64::MAX
            } else {
                (1u64 << (e + 1)) - 1
            }
        }
    }
}

/// Smallest value that lands in bucket `i` (inclusive lower bound).
pub fn bucket_lower_bound(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i == 0 {
        0
    } else {
        bucket_upper_bound(i - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(7), 5);
        assert_eq!(bucket_index(8), 6);
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        // Every bucket's bounds are consistent with bucket_index, and
        // consecutive buckets tile the range with no gaps or overlaps.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi, "bucket {i}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i > 0 {
                assert_eq!(bucket_lower_bound(i), bucket_upper_bound(i - 1) + 1);
            }
        }
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_width_is_at_most_half() {
        // For v >= 2, the bucket containing v spans at most 0.5 * lower.
        for i in 2..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i) as u128;
            let hi = bucket_upper_bound(i) as u128;
            assert!((hi - lo) * 2 <= lo, "bucket {i}: [{lo}, {hi}]");
        }
    }
}
