//! Hand-rolled JSON emission (the workspace has no serde): string
//! escaping plus a small object/array writer with caller-controlled
//! key order, which is how reports stay byte-stable across runs.

/// Append `s` JSON-escaped (without surrounding quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `"escaped"` — a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Finite-float JSON literal (non-finite values become `null`).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        // Enough digits to round-trip typical durations/means without
        // exponents, which some ad-hoc parsers dislike.
        let s = format!("{x:.9}");
        let s = s.trim_end_matches('0');
        let s = s.strip_suffix('.').unwrap_or(s);
        s.to_string()
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON value tree. Keys are emitted in call
/// order; callers iterate `BTreeMap`s for deterministic output.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emit `"key":` — must be followed by exactly one value call.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        // The upcoming value must not emit another comma.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
        self
    }

    pub fn uint(&mut self, n: u64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&n.to_string());
        self
    }

    pub fn int(&mut self, n: i64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&n.to_string());
        self
    }

    pub fn float(&mut self, x: f64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&number(x));
        self
    }

    /// Splice a pre-rendered JSON value (e.g. a nested report).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.pre_value();
        self.buf.push_str(json);
        self
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(0.000000123), "0.000000123");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn writer_builds_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string("hgobs/1");
        w.key("counts").begin_object();
        w.key("a").uint(1);
        w.key("b").uint(2);
        w.end_object();
        w.key("list").begin_array().uint(1).uint(2).end_array();
        w.key("x").float(0.5);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"schema":"hgobs/1","counts":{"a":1,"b":2},"list":[1,2],"x":0.5}"#
        );
    }
}
