//! One timing implementation for the whole workspace (moved here from
//! `hgcli`, which re-exports these for compatibility).

use std::time::Instant;

/// Measure a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Human-friendly time formatting in the spirit of the paper's Table 1
/// legend (h: hours, m: minutes, s: seconds).
pub fn format_time(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.2}h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.2}m", seconds / 60.0)
    } else if seconds >= 0.001 {
        format!("{:.3}s", seconds)
    } else {
        format!("{:.1}us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formats() {
        assert_eq!(format_time(7200.0), "2.00h");
        assert_eq!(format_time(90.0), "1.50m");
        assert_eq!(format_time(0.47), "0.470s");
        assert_eq!(format_time(0.0000005), "0.5us");
    }

    #[test]
    fn timed_returns_result() {
        let (x, t) = timed(|| 6 * 7);
        assert_eq!(x, 42);
        assert!(t >= 0.0);
    }
}
