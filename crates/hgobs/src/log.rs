//! `HG_LOG` env-filtered stderr logging (`off` < `info` < `debug`).

use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off = 0,
    Info = 1,
    Debug = 2,
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// Parse `HG_LOG` (once) and return the active level. Unknown values
/// and an unset variable both mean [`Level::Off`].
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        2 => Level::Debug,
        _ => init_from_env(),
    }
}

/// Read `HG_LOG` and fix the level for the process lifetime.
pub fn init_from_env() -> Level {
    let lvl = match std::env::var("HG_LOG").as_deref() {
        Ok("debug") => Level::Debug,
        Ok("info") => Level::Info,
        _ => Level::Off,
    };
    set_level(lvl);
    lvl
}

pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

#[inline]
pub fn debug_enabled() -> bool {
    level() >= Level::Debug
}

#[inline]
pub fn info_enabled() -> bool {
    level() >= Level::Info
}

/// Log at info level (lazy: the closure only runs when enabled).
pub fn info(msg: impl FnOnce() -> String) {
    if info_enabled() {
        eprintln!("[hg] {}", msg());
    }
}

/// Log at debug level (lazy: the closure only runs when enabled).
pub fn debug(msg: impl FnOnce() -> String) {
    if debug_enabled() {
        eprintln!("[hg] {}", msg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Off < Level::Info && Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_wins() {
        set_level(Level::Debug);
        assert!(debug_enabled() && info_enabled());
        set_level(Level::Info);
        assert!(!debug_enabled() && info_enabled());
        set_level(Level::Off);
        assert!(!info_enabled());
    }
}
