//! `HG_LOG` env-filtered stderr logging (`off` < `warn` < `info` < `debug`).
//!
//! `warn` is for operator-actionable events (connections shed, requests
//! timed out); it is on whenever logging is on at all, and its lines
//! carry a Unix timestamp so admission incidents can be correlated with
//! client-side logs after the fact.

use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// Parse `HG_LOG` (once) and return the active level. Unknown values
/// and an unset variable both mean [`Level::Off`].
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => init_from_env(),
    }
}

/// Read `HG_LOG` and fix the level for the process lifetime.
pub fn init_from_env() -> Level {
    let lvl = match std::env::var("HG_LOG").as_deref() {
        Ok("debug") => Level::Debug,
        Ok("info") => Level::Info,
        Ok("warn") => Level::Warn,
        _ => Level::Off,
    };
    set_level(lvl);
    lvl
}

pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

#[inline]
pub fn debug_enabled() -> bool {
    level() >= Level::Debug
}

#[inline]
pub fn info_enabled() -> bool {
    level() >= Level::Info
}

#[inline]
pub fn warn_enabled() -> bool {
    level() >= Level::Warn
}

/// Log at info level (lazy: the closure only runs when enabled).
pub fn info(msg: impl FnOnce() -> String) {
    if info_enabled() {
        eprintln!("[hg] {}", msg());
    }
}

/// Log at debug level (lazy: the closure only runs when enabled).
pub fn debug(msg: impl FnOnce() -> String) {
    if debug_enabled() {
        eprintln!("[hg] {}", msg());
    }
}

/// Log at warn level with a `seconds.millis` Unix timestamp (lazy: the
/// closure only runs when enabled).
pub fn warn(msg: impl FnOnce() -> String) {
    if warn_enabled() {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default();
        eprintln!(
            "[hg] WARN {}.{:03} {}",
            now.as_secs(),
            now.subsec_millis(),
            msg()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Off < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_wins() {
        set_level(Level::Debug);
        assert!(debug_enabled() && info_enabled() && warn_enabled());
        set_level(Level::Info);
        assert!(!debug_enabled() && info_enabled() && warn_enabled());
        set_level(Level::Warn);
        assert!(!info_enabled() && warn_enabled());
        set_level(Level::Off);
        assert!(!warn_enabled());
    }
}
