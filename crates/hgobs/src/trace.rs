//! Request-scoped tracing: one [`TraceCtx`] per request, carrying a
//! deterministic trace id and an append-only list of
//! `(phase, start_us, end_us, work)` events.
//!
//! The global registry ([`crate::take_report`]) answers "how did this
//! *process* spend its time"; a trace answers "how did this *request*".
//! A `TraceCtx` rides inside [`crate::Deadline`]
//! (see [`Deadline::with_trace`](crate::Deadline::with_trace)), so every
//! kernel that already takes a deadline — which after PR 3 is all of
//! them — can emit per-phase events with no new plumbing: clone the
//! deadline into a worker and the worker's events land in the same
//! shared list.
//!
//! # Cost model
//!
//! [`TraceCtx::disabled`] is a `None`: opening a phase is one branch and
//! no clock read, which is what keeps the kernel hot paths inside the
//! `obs_overhead` bench's <2% budget. An enabled context allocates one
//! `Arc` per request and takes a short mutex section per *event* (a
//! batch, a peel level, a shard — never per vertex).
//!
//! # Partial traces
//!
//! [`TracePhase`] records on drop, so a kernel that bails out mid-phase
//! with [`DeadlineExceeded`](crate::DeadlineExceeded) still leaves the
//! in-flight phase in the event list with the time it consumed — exactly
//! the requests whose traces matter most.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::JsonWriter;

/// Hard cap on events retained per trace; later events are counted in
/// [`TraceCtx::dropped`] instead of stored, bounding memory on
/// pathological inputs (e.g. a peel with millions of levels).
pub const MAX_TRACE_EVENTS: usize = 4096;

/// One timed phase execution inside a traced request. Times are
/// microseconds since the trace was created; `work` is the phase's own
/// unit (sources swept, vertices peeled, pairs generated, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub phase: &'static str,
    pub start_us: u64,
    pub end_us: u64,
    pub work: u64,
}

struct TraceInner {
    id: u64,
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

/// A cheap, cloneable handle to one request's trace, or a no-op token.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<TraceInner>>,
}

/// Deterministic trace id: FNV-1a (the workspace's unseeded hash) over
/// the labelling parts plus a caller-owned sequence number, so a given
/// server assigns reproducible ids to a reproducible request sequence.
pub fn trace_id(parts: &[&str], seq: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in parts {
        eat(p.as_bytes());
        eat(&[0]);
    }
    eat(&seq.to_le_bytes());
    h
}

impl TraceCtx {
    /// The no-op token: every operation is a branch, nothing allocates.
    pub fn disabled() -> Self {
        TraceCtx { inner: None }
    }

    /// A live trace with the given id; the clock starts now.
    pub fn new(id: u64) -> Self {
        TraceCtx {
            inner: Some(Arc::new(TraceInner {
                id,
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// The trace id as the 16-hex-digit form used in `X-Trace-Id`.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id())
    }

    /// Microseconds since the trace was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.start.elapsed().as_micros() as u64)
    }

    /// Open a phase; it records itself on drop (explicitly via
    /// [`TracePhase::finish`] or implicitly on early return). Disabled
    /// contexts return an inert guard without reading the clock.
    #[inline]
    pub fn phase(&self, phase: &'static str) -> TracePhase<'_> {
        let start_us = match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        };
        TracePhase {
            ctx: self.inner.as_deref(),
            phase,
            start_us,
            work: 0,
        }
    }

    /// Append one event with explicit bounds (prefer [`TraceCtx::phase`]).
    pub fn record(&self, phase: &'static str, start_us: u64, end_us: u64, work: u64) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock();
        if events.len() >= MAX_TRACE_EVENTS {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            phase,
            start_us,
            end_us,
            work,
        });
    }

    /// Snapshot of the events so far, sorted by start time then phase so
    /// concurrent workers' interleavings render deterministically.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = inner.events.lock().clone();
        events.sort_by(|a, b| {
            (a.start_us, a.end_us, a.phase)
                .cmp(&(b.start_us, b.end_us, b.phase))
                .then_with(|| a.work.cmp(&b.work))
        });
        events
    }

    /// Events discarded after [`MAX_TRACE_EVENTS`] was reached.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Write the trace as a JSON object:
    /// `{"id":"…","total_us":…,"events":[{"phase":…,"start_us":…,"end_us":…,"work":…}],"dropped":n}`.
    ///
    /// `total_us` is the caller-measured wall-clock total (e.g. the
    /// value the server records to its latency histogram); `None` omits
    /// the field.
    pub fn write_json(&self, w: &mut JsonWriter, total_us: Option<u64>) {
        w.begin_object();
        w.key("id").string(&self.id_hex());
        if let Some(us) = total_us {
            w.key("total_us").uint(us);
        }
        w.key("events").begin_array();
        for e in self.events() {
            w.begin_object();
            w.key("phase").string(e.phase);
            w.key("start_us").uint(e.start_us);
            w.key("end_us").uint(e.end_us);
            w.key("work").uint(e.work);
            w.end_object();
        }
        w.end_array();
        w.key("dropped").uint(self.dropped());
        w.end_object();
    }
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TraceCtx::disabled"),
            Some(inner) => f
                .debug_struct("TraceCtx")
                .field("id", &format_args!("{:016x}", inner.id))
                .field("events", &inner.events.lock().len())
                .finish(),
        }
    }
}

/// RAII guard for one phase execution; see [`TraceCtx::phase`].
pub struct TracePhase<'a> {
    ctx: Option<&'a TraceInner>,
    phase: &'static str,
    start_us: u64,
    work: u64,
}

impl TracePhase<'_> {
    /// Add to the phase's work counter.
    #[inline]
    pub fn add_work(&mut self, w: u64) {
        self.work += w;
    }

    /// Record now instead of at scope exit.
    pub fn finish(self) {}
}

impl Drop for TracePhase<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.ctx else { return };
        let end_us = inner.start.elapsed().as_micros() as u64;
        let mut events = inner.events.lock();
        if events.len() >= MAX_TRACE_EVENTS {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            phase: self.phase,
            start_us: self.start_us,
            end_us,
            work: self.work,
        });
    }
}

/// A trace event parsed back out of JSON (phases become owned strings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEvent {
    pub phase: String,
    pub start_us: u64,
    pub end_us: u64,
    pub work: u64,
}

/// A trace block parsed from saved JSON (`hg trace`, slowlog entries).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedTrace {
    pub id: String,
    /// `total_us` when the surrounding document carried one (the server
    /// embeds the request's `serve.latency_us` observation here).
    pub total_us: Option<u64>,
    pub events: Vec<ParsedEvent>,
}

/// Extract the first trace block from a JSON document: the first
/// `"events"` array of `{phase,start_us,end_us,work}` objects, plus the
/// nearest preceding `"id"` and `"total_us"` fields. This is a scanner
/// for the fixed schema this module writes, not a general JSON parser
/// (the workspace has no serde); anything shaped differently is an error.
pub fn parse_trace(json: &str) -> Result<ParsedTrace, String> {
    fn find_str_field(s: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":\"");
        let at = s.find(&pat)? + pat.len();
        let end = s[at..].find('"')? + at;
        Some(s[at..end].to_string())
    }
    fn find_uint_field(s: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = s.find(&pat)? + pat.len();
        let digits: String = s[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }

    let ev_at = json
        .find("\"events\":[")
        .ok_or_else(|| "no \"events\" array found".to_string())?;
    let head = &json[..ev_at];
    let mut body = &json[ev_at + "\"events\":[".len()..];

    let mut events = Vec::new();
    loop {
        body = body.trim_start_matches([',', ' ', '\n', '\t']);
        if body.starts_with(']') || body.is_empty() {
            break;
        }
        let Some(open) = body.find('{') else { break };
        let close = body[open..]
            .find('}')
            .ok_or_else(|| "unterminated event object".to_string())?
            + open;
        let obj = &body[open..=close];
        let phase =
            find_str_field(obj, "phase").ok_or_else(|| format!("event missing phase: {obj}"))?;
        let start_us = find_uint_field(obj, "start_us")
            .ok_or_else(|| format!("event missing start_us: {obj}"))?;
        let end_us =
            find_uint_field(obj, "end_us").ok_or_else(|| format!("event missing end_us: {obj}"))?;
        let work = find_uint_field(obj, "work").unwrap_or(0);
        if end_us < start_us {
            return Err(format!("event ends before it starts: {obj}"));
        }
        events.push(ParsedEvent {
            phase,
            start_us,
            end_us,
            work,
        });
        body = &body[close + 1..];
    }

    Ok(ParsedTrace {
        id: find_str_field(head, "id").unwrap_or_default(),
        total_us: find_uint_field(head, "total_us").or_else(|| find_uint_field(json, "total_us")),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = TraceCtx::disabled();
        assert!(!t.is_enabled());
        {
            let mut p = t.phase("x");
            p.add_work(5);
        }
        t.record("y", 0, 1, 2);
        assert!(t.events().is_empty());
        assert_eq!(t.id(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn phases_record_on_drop_with_work() {
        let t = TraceCtx::new(7);
        {
            let mut p = t.phase("alpha");
            p.add_work(3);
            p.add_work(4);
        }
        {
            let p = t.phase("beta");
            p.finish();
        }
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].phase, "alpha");
        assert_eq!(ev[0].work, 7);
        assert!(ev[0].start_us <= ev[0].end_us);
        assert_eq!(ev[1].phase, "beta");
        assert_eq!(ev[1].work, 0);
    }

    #[test]
    fn clones_share_one_event_list() {
        let t = TraceCtx::new(1);
        let c = t.clone();
        c.phase("from-clone").finish();
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn event_cap_counts_drops() {
        let t = TraceCtx::new(1);
        for _ in 0..MAX_TRACE_EVENTS + 5 {
            t.record("p", 0, 1, 0);
        }
        assert_eq!(t.events().len(), MAX_TRACE_EVENTS);
        assert_eq!(t.dropped(), 5);
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = trace_id(&["/v1/kcore", "cellzome"], 1);
        let b = trace_id(&["/v1/kcore", "cellzome"], 1);
        let c = trace_id(&["/v1/kcore", "cellzome"], 2);
        let d = trace_id(&["/v1/kcorecellzome"], 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d, "part boundaries must be separated");
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let t = TraceCtx::new(0xabcd);
        t.record("msbfs.batch", 10, 250, 64);
        t.record("kcore.peel", 260, 300, 12);
        let mut w = JsonWriter::new();
        t.write_json(&mut w, Some(321));
        let js = w.finish();
        assert!(js.starts_with("{\"id\":\"000000000000abcd\""), "{js}");
        let parsed = parse_trace(&js).unwrap();
        assert_eq!(parsed.id, "000000000000abcd");
        assert_eq!(parsed.total_us, Some(321));
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.events[0].phase, "msbfs.batch");
        assert_eq!(parsed.events[0].end_us, 250);
        assert_eq!(parsed.events[1].work, 12);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_trace("{}").is_err());
        assert!(parse_trace("{\"events\":[{\"phase\":\"x\"}]}").is_err());
    }

    #[test]
    fn concurrent_contexts_stay_isolated() {
        let a = TraceCtx::new(1);
        let b = TraceCtx::new(2);
        std::thread::scope(|s| {
            let ac = a.clone();
            let bc = b.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    ac.phase("a.only").finish();
                }
            });
            s.spawn(move || {
                for _ in 0..100 {
                    bc.phase("b.only").finish();
                }
            });
        });
        assert_eq!(a.events().len(), 100);
        assert!(a.events().iter().all(|e| e.phase == "a.only"));
        assert_eq!(b.events().len(), 100);
        assert!(b.events().iter().all(|e| e.phase == "b.only"));
    }
}
