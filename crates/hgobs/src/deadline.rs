//! Cooperative deadlines and cancellation for long-running algorithms.
//!
//! A [`Deadline`] is a cheap, cloneable token: an atomic cancel flag, a
//! start instant, and an optional wall-clock budget. Hot loops consult
//! it cooperatively — every iteration via the amortized [`Deadline::tick`]
//! (which only reads the clock every [`CHECK_INTERVAL`] calls), or at
//! coarser natural boundaries via [`Deadline::expired`] — and bail out
//! with a [`DeadlineExceeded`] carrying partial-work counters.
//!
//! # Cross-thread propagation
//!
//! Clones share one flag. The first observer whose clock check trips the
//! budget *latches* the cancel flag, so sibling workers in a rayon pool
//! or crossbeam scope notice via a single relaxed atomic load on their
//! next check without ever reading the clock themselves. [`Deadline::cancel`]
//! latches the same flag manually (e.g. from a shutdown path).
//!
//! # Example
//!
//! ```
//! use hgobs::Deadline;
//! use std::time::Duration;
//!
//! let dl = Deadline::after(Duration::from_millis(50));
//! let mut ticks = 0u32;
//! let mut done = 0u64;
//! for _ in 0..10 {
//!     if dl.tick(&mut ticks) {
//!         return; // would return Err(dl.exceeded("phase", done)) in real code
//!     }
//!     done += 1;
//! }
//! assert_eq!(done, 10);
//! assert!(Deadline::none().elapsed() >= Duration::ZERO);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::trace::TraceCtx;

/// How many [`Deadline::tick`] calls elapse between wall-clock reads.
///
/// Power of two so the amortization test below stays a cheap mask; at
/// roughly a microsecond of work per loop iteration this bounds deadline
/// overshoot to about a millisecond.
pub const CHECK_INTERVAL: u32 = 1024;

struct Inner {
    cancelled: AtomicBool,
    start: Instant,
    budget: Option<Duration>,
}

/// A cooperative cancellation/deadline token shared by reference or clone.
///
/// [`Deadline::none`] is the zero-cost default: no allocation, and every
/// check is a single `is_none` branch. Budgeted and cancellable tokens
/// allocate one `Arc` at construction and are cheap to clone into worker
/// threads.
#[derive(Clone)]
pub struct Deadline {
    inner: Option<Arc<Inner>>,
    /// The request trace riding along, if any. Living inside the deadline
    /// means every kernel that already threads a `&Deadline` — and every
    /// worker that clones one — can emit trace events with no signature
    /// changes; see [`Deadline::trace`].
    trace: TraceCtx,
}

impl Deadline {
    /// A token that never expires and cannot be cancelled.
    pub fn none() -> Self {
        Deadline {
            inner: None,
            trace: TraceCtx::disabled(),
        }
    }

    /// A token with no wall-clock budget that still honors [`cancel`].
    ///
    /// [`cancel`]: Deadline::cancel
    pub fn cancellable() -> Self {
        Deadline {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                start: Instant::now(),
                budget: None,
            })),
            trace: TraceCtx::disabled(),
        }
    }

    /// A token that expires `budget` after this call.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                start: Instant::now(),
                budget: Some(budget),
            })),
            trace: TraceCtx::disabled(),
        }
    }

    /// Attach a request trace; clones (and the workers they're handed
    /// to) share its event list. The kernels' cost model is unchanged:
    /// a disabled trace makes [`Deadline::trace`] a field read and every
    /// phase open a branch.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// The trace riding on this token ([`TraceCtx::disabled`] when none).
    #[inline]
    pub fn trace(&self) -> &TraceCtx {
        &self.trace
    }

    /// Convenience for [`Deadline::after`] with a millisecond budget.
    pub fn after_ms(ms: u64) -> Self {
        Deadline::after(Duration::from_millis(ms))
    }

    /// True when this token can never expire ([`Deadline::none`]).
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Latch the cancel flag; every clone observes it on its next check.
    /// No-op on [`Deadline::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Flag-only check: one relaxed load, no clock read. True once the
    /// token was cancelled or another observer latched budget expiry.
    /// Use inside parallel inner loops where siblings do the clock work.
    #[inline]
    pub fn cancelled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.cancelled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Time since the token was created (zero for [`Deadline::none`]).
    pub fn elapsed(&self) -> Duration {
        match &self.inner {
            Some(inner) => inner.start.elapsed(),
            None => Duration::ZERO,
        }
    }

    /// The wall-clock budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.inner.as_ref().and_then(|inner| inner.budget)
    }

    /// Full check: cancel flag first, then the clock against the budget.
    /// A tripped budget latches the shared flag so sibling observers see
    /// cancellation without reading the clock.
    #[inline]
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match inner.budget {
            Some(budget) if inner.start.elapsed() >= budget => {
                inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// Amortized per-iteration check for hot loops. The caller owns the
    /// counter; the clock is consulted only every [`CHECK_INTERVAL`]
    /// calls (a wrapping increment and mask otherwise). Returns true
    /// when the work should stop.
    #[inline]
    pub fn tick(&self, counter: &mut u32) -> bool {
        if self.inner.is_none() {
            return false;
        }
        *counter = counter.wrapping_add(1);
        if *counter & (CHECK_INTERVAL - 1) != 0 {
            return false;
        }
        self.expired()
    }

    /// [`Deadline::expired`] as a `Result`, for `?`-style propagation at
    /// phase boundaries.
    pub fn check(&self, phase: &'static str, work_done: u64) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(self.exceeded(phase, work_done))
        } else {
            Ok(())
        }
    }

    /// Build the error describing this token's expiry, recording the
    /// phase that noticed and how much work completed before it.
    pub fn exceeded(&self, phase: &'static str, work_done: u64) -> DeadlineExceeded {
        DeadlineExceeded {
            elapsed: self.elapsed(),
            budget: self.budget(),
            phase,
            work_done,
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl fmt::Debug for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Deadline::none"),
            Some(inner) => f
                .debug_struct("Deadline")
                .field("cancelled", &inner.cancelled.load(Ordering::Relaxed))
                .field("elapsed", &inner.start.elapsed())
                .field("budget", &inner.budget)
                .finish(),
        }
    }
}

/// Returned by `*_with` algorithm variants when their [`Deadline`] fired.
///
/// Carries enough context to render an actionable 504 body: how long the
/// work ran, the budget it was given, which phase noticed, and a
/// phase-specific partial-work counter (BFS sources completed, vertices
/// peeled, overlap pairs counted, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// Wall-clock time from token creation to the failed check.
    pub elapsed: Duration,
    /// The budget the token was created with (`None` if cancelled manually).
    pub budget: Option<Duration>,
    /// The algorithm phase whose check fired, e.g. `"kcore.peel"`.
    pub phase: &'static str,
    /// Units of work completed before expiry; what a unit means is
    /// documented by each `*_with` function.
    pub work_done: u64,
}

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadline exceeded after {:.1?} in {} ({} work units done",
            self.elapsed, self.phase, self.work_done
        )?;
        match self.budget {
            Some(budget) => write!(f, ", budget {:.1?})", budget),
            None => write!(f, ", cancelled)"),
        }
    }
}

impl std::error::Error for DeadlineExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let dl = Deadline::none();
        assert!(dl.is_unlimited());
        assert!(!dl.expired());
        assert!(!dl.cancelled());
        dl.cancel(); // no-op
        assert!(!dl.expired());
        let mut ticks = 0u32;
        for _ in 0..(3 * CHECK_INTERVAL) {
            assert!(!dl.tick(&mut ticks));
        }
        assert_eq!(ticks, 0, "none() must not even count ticks");
        assert!(dl.check("phase", 7).is_ok());
        assert_eq!(dl.budget(), None);
    }

    #[test]
    fn zero_budget_expires_immediately_and_latches() {
        let dl = Deadline::after(Duration::ZERO);
        assert!(!dl.cancelled(), "flag is only latched by a clock check");
        assert!(dl.expired());
        assert!(dl.cancelled(), "expiry must latch the shared flag");
        let err = dl.check("bfs.sweep", 42).unwrap_err();
        assert_eq!(err.phase, "bfs.sweep");
        assert_eq!(err.work_done, 42);
        assert_eq!(err.budget, Some(Duration::ZERO));
        let msg = err.to_string();
        assert!(msg.contains("bfs.sweep") && msg.contains("42"), "{msg}");
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let dl = Deadline::cancellable();
        let clone = dl.clone();
        assert!(!clone.expired());
        dl.cancel();
        assert!(clone.cancelled());
        assert!(clone.expired());
        let err = clone.exceeded("peel", 3);
        assert_eq!(err.budget, None);
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn tick_amortizes_clock_reads() {
        let dl = Deadline::after(Duration::ZERO);
        let mut ticks = 0u32;
        // The first CHECK_INTERVAL - 1 ticks never consult the clock.
        for _ in 0..CHECK_INTERVAL - 1 {
            assert!(!dl.tick(&mut ticks));
        }
        assert!(dl.tick(&mut ticks), "interval boundary must check");
    }

    #[test]
    fn trace_rides_through_clones() {
        let dl = Deadline::none();
        assert!(!dl.trace().is_enabled(), "traces are opt-in");
        let dl = Deadline::cancellable().with_trace(TraceCtx::new(9));
        let clone = dl.clone();
        clone.trace().phase("worker.phase").finish();
        let events = dl.trace().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, "worker.phase");
        assert_eq!(dl.trace().id(), 9);
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let dl = Deadline::after(Duration::from_secs(3600));
        assert!(!dl.expired());
        assert!(dl.check("phase", 0).is_ok());
        assert_eq!(dl.budget(), Some(Duration::from_secs(3600)));
        assert!(dl.elapsed() < Duration::from_secs(3600));
    }
}
