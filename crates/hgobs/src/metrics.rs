//! Global per-run metric registry: counters, histograms, span stats.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the global sink is recording. A single relaxed load — this
/// is the entire cost of every `counter!`/`hist!`/`Span::enter` call
/// while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start recording into the global registry.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording (already-recorded data stays until drained).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

#[derive(Clone, Debug)]
pub(crate) struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Dense log-linear bucket counts ([`crate::buckets`]); allocated on
    /// the first observation so untouched names stay four words.
    pub buckets: Vec<u64>,
}

impl Hist {
    const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.buckets.is_empty() {
            self.buckets = vec![0; crate::buckets::NUM_BUCKETS];
        }
        self.buckets[crate::buckets::bucket_index(v)] += 1;
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
}

#[derive(Clone)]
pub(crate) struct Registry {
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, Hist>,
    pub spans: BTreeMap<String, SpanStat>,
    /// Point-in-time levels (open connections, queue depth): signed so
    /// decrements can transiently cross zero without wrapping.
    pub gauges: BTreeMap<String, i64>,
}

impl Registry {
    const fn new() -> Self {
        Self {
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            spans: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

/// Add `n` to a counter (prefer the `counter!` macro).
#[inline]
pub fn add_counter(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock();
    // Allocate the key only on first use of each counter name.
    if let Some(c) = reg.counters.get_mut(name) {
        *c += n;
    } else {
        reg.counters.insert(name.to_string(), n);
    }
}

/// Record one histogram observation (prefer the `hist!` macro).
#[inline]
pub fn record_hist(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock();
    if let Some(h) = reg.hists.get_mut(name) {
        h.record(value);
    } else {
        let mut h = Hist::new();
        h.record(value);
        reg.hists.insert(name.to_string(), h);
    }
}

/// Set a gauge to an absolute level (prefer the `gauge!` macro).
#[inline]
pub fn set_gauge(name: &str, value: i64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock();
    if let Some(g) = reg.gauges.get_mut(name) {
        *g = value;
    } else {
        reg.gauges.insert(name.to_string(), value);
    }
}

/// Adjust a gauge by a signed delta (an absent gauge starts at 0).
#[inline]
pub fn add_gauge(name: &str, delta: i64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock();
    if let Some(g) = reg.gauges.get_mut(name) {
        *g += delta;
    } else {
        reg.gauges.insert(name.to_string(), delta);
    }
}

pub(crate) fn record_span(path: String, ns: u64) {
    let mut reg = REGISTRY.lock();
    let stat = reg.spans.entry(path).or_default();
    stat.count += 1;
    stat.total_ns = stat.total_ns.saturating_add(ns);
}

/// Discard everything recorded so far.
pub fn reset() {
    let mut reg = REGISTRY.lock();
    reg.counters.clear();
    reg.hists.clear();
    reg.spans.clear();
    reg.gauges.clear();
}

pub(crate) fn drain() -> Registry {
    std::mem::replace(&mut *REGISTRY.lock(), Registry::new())
}

/// Clone the registry without draining it. Long-lived processes (the
/// analytics server) render cumulative metrics from this while the
/// registry keeps accumulating.
pub(crate) fn snapshot() -> Registry {
    REGISTRY.lock().clone()
}

/// Merge a previously drained [`crate::Report`] back into the registry,
/// bypassing the enabled check. Used by callers (like `hg profile`) that
/// section a run into per-phase drains but still want the run totals
/// present for a final whole-process report.
pub(crate) fn absorb_report(report: &crate::Report) {
    let mut reg = REGISTRY.lock();
    for (k, &v) in &report.counters {
        *reg.counters.entry(k.clone()).or_insert(0) += v;
    }
    for (k, h) in &report.histograms {
        let e = reg.hists.entry(k.clone()).or_insert_with(Hist::new);
        e.count += h.count;
        e.sum = e.sum.saturating_add(h.sum);
        if h.count > 0 {
            e.min = e.min.min(h.min);
            e.max = e.max.max(h.max);
        }
        if !h.buckets.is_empty() && e.buckets.is_empty() {
            e.buckets = vec![0; crate::buckets::NUM_BUCKETS];
        }
        for &(idx, n) in &h.buckets {
            e.buckets[idx as usize] += n;
        }
    }
    for (k, s) in &report.spans {
        let e = reg.spans.entry(k.clone()).or_default();
        e.count += s.count;
        e.total_ns = e.total_ns.saturating_add(s.total_ns);
    }
    for (k, &v) in &report.gauges {
        // Levels add: re-absorbing a drained section restores whatever
        // contribution it carried.
        *reg.gauges.entry(k.clone()).or_insert(0) += v;
    }
}
