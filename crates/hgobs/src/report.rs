//! Snapshot of one run's metrics, with JSON and plain-text renderings.

use std::collections::BTreeMap;

use crate::json::JsonWriter;

/// Version tag written into every JSON report; bump when the layout of
/// the report object changes incompatibly.
pub const SCHEMA_VERSION: &str = "hgobs/1";

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse log-linear bucket counts, sorted by bucket index
    /// ([`crate::buckets`]): `(bucket_index, observations)` for every
    /// non-empty bucket. Quantiles are read off these boundaries.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSummary {
    /// An empty summary (`min` reported as 0, like the registry does).
    pub fn empty() -> Self {
        HistSummary::default()
    }

    /// Summarize a slice of observations; the bucketed result is
    /// identical to recording each value through the registry.
    pub fn from_values(values: &[u64]) -> Self {
        let mut s = HistSummary {
            count: values.len() as u64,
            sum: 0,
            min: values.iter().copied().min().unwrap_or(0),
            max: values.iter().copied().max().unwrap_or(0),
            buckets: Vec::new(),
        };
        let mut dense = vec![0u64; crate::buckets::NUM_BUCKETS];
        for &v in values {
            s.sum = s.sum.saturating_add(v);
            dense[crate::buckets::bucket_index(v)] += 1;
        }
        s.buckets = dense_to_sparse(&dense);
        s
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `(lower, upper)` bounds of the bucket holding the `q`-quantile
    /// (rank `ceil(q * count)`, the same order statistic a sorted vector
    /// would index): the exact quantile is guaranteed to lie inside.
    /// `(0, 0)` when the histogram is empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return (
                    crate::buckets::bucket_lower_bound(idx as usize),
                    crate::buckets::bucket_upper_bound(idx as usize),
                );
            }
        }
        // Only reachable when buckets were not populated (e.g. a summary
        // merged from a pre-bucket report): fall back to the range.
        (self.min, self.max)
    }

    /// Point estimate for the `q`-quantile: the upper bound of its
    /// bucket, clamped to the observed `max` so estimates never exceed
    /// any real observation.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1.min(self.max)
    }
}

fn dense_to_sparse(dense: &[u64]) -> Vec<(u32, u64)> {
    dense
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| (i as u32, n))
        .collect()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    pub count: u64,
    pub total_ns: u64,
}

impl SpanSummary {
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Drained registry contents. Maps are ordered, so renders are stable.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistSummary>,
    pub spans: BTreeMap<String, SpanSummary>,
    /// Point-in-time levels recorded via `set_gauge`/`add_gauge`.
    pub gauges: BTreeMap<String, i64>,
}

/// Drain the global registry into a [`Report`]; subsequent recording
/// starts from empty.
pub fn take_report() -> Report {
    registry_to_report(crate::metrics::drain())
}

/// Copy the global registry into a [`Report`] without draining it.
/// Long-lived processes (e.g. `hg serve`) use this to render cumulative
/// `/metrics` while recording continues.
pub fn snapshot_report() -> Report {
    registry_to_report(crate::metrics::snapshot())
}

fn registry_to_report(reg: crate::metrics::Registry) -> Report {
    Report {
        counters: reg.counters,
        histograms: reg
            .hists
            .into_iter()
            .map(|(k, h)| {
                (
                    k,
                    HistSummary {
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0 } else { h.min },
                        max: h.max,
                        buckets: dense_to_sparse(&h.buckets),
                    },
                )
            })
            .collect(),
        spans: reg
            .spans
            .into_iter()
            .map(|(k, s)| {
                (
                    k,
                    SpanSummary {
                        count: s.count,
                        total_ns: s.total_ns,
                    },
                )
            })
            .collect(),
        gauges: reg.gauges,
    }
}

/// Merge `report` back into the global registry (counters add, span and
/// histogram statistics combine), regardless of the enabled flag. Lets a
/// caller drain per-phase sections while keeping whole-run totals
/// available for a final report.
pub fn absorb(report: &Report) {
    crate::metrics::absorb_report(report);
}

impl Report {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.gauges.is_empty()
    }

    /// Fold `other` into `self`: counters and span/histogram statistics
    /// combine exactly as the registry would have aggregated them.
    pub fn merge(&mut self, other: &Report) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let e = self.histograms.entry(k.clone()).or_insert(HistSummary {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
                buckets: Vec::new(),
            });
            e.count += h.count;
            e.sum = e.sum.saturating_add(h.sum);
            if h.count > 0 {
                e.min = e.min.min(h.min);
                e.max = e.max.max(h.max);
            }
            if e.count == 0 {
                e.min = 0;
            }
            // Merge the two sorted sparse bucket lists.
            let mut merged = Vec::with_capacity(e.buckets.len() + h.buckets.len());
            let (mut i, mut j) = (0, 0);
            while i < e.buckets.len() || j < h.buckets.len() {
                match (e.buckets.get(i), h.buckets.get(j)) {
                    (Some(&(ai, an)), Some(&(bi, bn))) if ai == bi => {
                        merged.push((ai, an + bn));
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a.0 < b.0 => {
                        merged.push(a);
                        i += 1;
                    }
                    (Some(_), Some(&b)) => {
                        merged.push(b);
                        j += 1;
                    }
                    (Some(&a), None) => {
                        merged.push(a);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        merged.push(b);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            e.buckets = merged;
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_insert(SpanSummary {
                count: 0,
                total_ns: 0,
            });
            e.count += s.count;
            e.total_ns = e.total_ns.saturating_add(s.total_ns);
        }
        // Gauges are levels; merging fleet reports sums the levels
        // (total open connections across shards).
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Write this report as a JSON object into `w` (no surrounding
    /// schema field; see [`Report::to_json`] for the standalone form).
    pub fn write_body(&self, w: &mut JsonWriter) {
        w.key("counters").begin_object();
        for (k, v) in &self.counters {
            w.key(k).uint(*v);
        }
        w.end_object();

        w.key("gauges").begin_object();
        for (k, v) in &self.gauges {
            w.key(k).int(*v);
        }
        w.end_object();

        w.key("histograms").begin_object();
        for (k, h) in &self.histograms {
            w.key(k).begin_object();
            w.key("count").uint(h.count);
            w.key("sum").uint(h.sum);
            w.key("min").uint(h.min);
            w.key("max").uint(h.max);
            w.key("mean").float(h.mean());
            w.key("p50").uint(h.quantile(0.5));
            w.key("p95").uint(h.quantile(0.95));
            w.key("p99").uint(h.quantile(0.99));
            // `[upper_bound, observations]` per non-empty bucket.
            w.key("buckets").begin_array();
            for &(idx, n) in &h.buckets {
                w.begin_array();
                w.uint(crate::buckets::bucket_upper_bound(idx as usize));
                w.uint(n);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();

        w.key("spans").begin_object();
        for (k, s) in &self.spans {
            w.key(k).begin_object();
            w.key("count").uint(s.count);
            w.key("total_ns").uint(s.total_ns);
            w.key("seconds").float(s.seconds());
            w.end_object();
        }
        w.end_object();
    }

    /// Standalone schema-versioned JSON document. Counters come first
    /// so deterministic sections precede timing-dependent ones.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA_VERSION);
        self.write_body(&mut w);
        w.end_object();
        w.finish()
    }

    /// Render this report in the Prometheus text exposition format, the
    /// payload `hg serve` answers on `GET /metrics`. Metric names are the
    /// registry names sanitized ([`sanitize_metric_name`]) with an `hg_`
    /// prefix: counters become `hg_<name>_total`, histograms are proper
    /// Prometheus histograms (cumulative `_bucket{le="…"}` series plus
    /// `_sum`/`_count`, and `_min`/`_max` gauges), spans expose `_count`
    /// and `_seconds_total`. Maps are ordered, so the output is stable.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE hg_{n}_total counter\n"));
            out.push_str(&format!("hg_{n}_total {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE hg_{n} gauge\n"));
            out.push_str(&format!("hg_{n} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE hg_{n} histogram\n"));
            let mut cumulative = 0u64;
            for &(idx, count) in &h.buckets {
                cumulative += count;
                let le = crate::buckets::bucket_upper_bound(idx as usize);
                out.push_str(&format!("hg_{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("hg_{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("hg_{n}_sum {}\n", h.sum));
            out.push_str(&format!("hg_{n}_count {}\n", h.count));
            out.push_str(&format!("hg_{n}_min {}\n", h.min));
            out.push_str(&format!("hg_{n}_max {}\n", h.max));
        }
        for (k, s) in &self.spans {
            let n = sanitize_metric_name(k);
            out.push_str(&format!("# TYPE hg_span_{n}_seconds_total counter\n"));
            out.push_str(&format!("hg_span_{n}_count {}\n", s.count));
            out.push_str(&format!(
                "hg_span_{n}_seconds_total {}\n",
                crate::json::number(s.seconds())
            ));
        }
        out
    }

    /// Human-readable phase breakdown for CLI output: spans sorted by
    /// path (parents before children), then counters, then histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("phase breakdown:\n");
            let width = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (path, s) in &self.spans {
                let indent = path.matches('/').count() * 2;
                out.push_str(&format!(
                    "  {:indent$}{:<width$}  {:>10}  x{}\n",
                    "",
                    path,
                    crate::format_time(s.seconds()),
                    s.count,
                    indent = indent,
                    width = width.saturating_sub(indent),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k}: n={} mean={:.2} min={} max={} p50={} p99={}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                    h.quantile(0.5),
                    h.quantile(0.99),
                ));
            }
        }
        out
    }
}

/// Map an arbitrary registry name to a valid Prometheus metric-name
/// fragment: every run of non-alphanumeric characters (`.`, `/`, `-`,
/// spaces, …) collapses to a single `_`, and an empty or all-invalid
/// name becomes `"other"`. The caller prepends `hg_`, so a leading digit
/// is already legal. Bounding cardinality is the *recorder's* job (see
/// `hgserve`'s endpoint label mapping); this keeps whatever does get
/// recorded lexically valid.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut gap = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c);
        } else {
            gap = true;
        }
    }
    if out.is_empty() {
        "other".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("kcore.rounds".into(), 3);
        r.gauges.insert("serve.conn.open".into(), 12);
        r.histograms.insert(
            "bfs.frontier".into(),
            HistSummary::from_values(&[1, 2, 3, 4]),
        );
        r.spans.insert(
            "total".into(),
            SpanSummary {
                count: 1,
                total_ns: 2_000_000,
            },
        );
        r.spans.insert(
            "total/kcore".into(),
            SpanSummary {
                count: 2,
                total_ns: 1_000_000,
            },
        );
        r
    }

    #[test]
    fn json_shape() {
        let js = sample().to_json();
        assert_eq!(
            js,
            "{\"schema\":\"hgobs/1\",\
             \"counters\":{\"kcore.rounds\":3},\
             \"gauges\":{\"serve.conn.open\":12},\
             \"histograms\":{\"bfs.frontier\":{\"count\":4,\"sum\":10,\"min\":1,\"max\":4,\"mean\":2.5,\
             \"p50\":2,\"p95\":4,\"p99\":4,\"buckets\":[[1,1],[2,1],[3,1],[5,1]]}},\
             \"spans\":{\"total\":{\"count\":1,\"total_ns\":2000000,\"seconds\":0.002},\
             \"total/kcore\":{\"count\":2,\"total_ns\":1000000,\"seconds\":0.001}}}"
        );
    }

    #[test]
    fn text_breakdown_lists_phases_and_counters() {
        let text = sample().render_text();
        assert!(text.contains("phase breakdown:"));
        assert!(text.contains("total"));
        assert!(text.contains("total/kcore"));
        assert!(text.contains("kcore.rounds = 3"));
        assert!(text.contains("serve.conn.open = 12"));
        assert!(text.contains("bfs.frontier: n=4 mean=2.50 min=1 max=4 p50=2 p99=4"));
    }

    #[test]
    fn merged_gauges_sum_levels() {
        let mut a = Report::default();
        a.gauges.insert("conn".into(), 5);
        let mut b = Report::default();
        b.gauges.insert("conn".into(), 7);
        b.gauges.insert("queue".into(), -1);
        a.merge(&b);
        assert_eq!(a.gauges["conn"], 12);
        assert_eq!(a.gauges["queue"], -1);
        assert!(!a.is_empty());
    }

    #[test]
    fn prometheus_rendering_is_stable_and_sanitized() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE hg_bfs_frontier histogram\n"));
        assert!(text.contains("hg_kcore_rounds_total 3\n"));
        assert!(text.contains("# TYPE hg_serve_conn_open gauge\n"));
        assert!(text.contains("hg_serve_conn_open 12\n"));
        assert!(text.contains("hg_bfs_frontier_count 4\n"));
        assert!(text.contains("hg_bfs_frontier_sum 10\n"));
        // Cumulative bucket series ending in the +Inf catch-all.
        assert!(text.contains("hg_bfs_frontier_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("hg_bfs_frontier_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("hg_bfs_frontier_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("hg_bfs_frontier_bucket{le=\"5\"} 4\n"));
        assert!(text.contains("hg_bfs_frontier_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("hg_span_total_kcore_count 2\n"));
        assert!(text.contains("hg_span_total_kcore_seconds_total 0.001\n"));
        // Deterministic: same report renders byte-identically.
        assert_eq!(text, sample().render_prometheus());
    }

    #[test]
    fn metric_names_sanitize_to_valid_fragments() {
        assert_eq!(sanitize_metric_name("kcore.rounds"), "kcore_rounds");
        assert_eq!(
            sanitize_metric_name("serve.latency_us.v1/kcore"),
            "serve_latency_us_v1_kcore"
        );
        assert_eq!(sanitize_metric_name("a..//--b"), "a_b");
        assert_eq!(sanitize_metric_name("...",), "other");
        assert_eq!(sanitize_metric_name(""), "other");
    }

    #[test]
    fn quantile_bounds_bracket_the_exact_order_statistic() {
        let values: Vec<u64> = (0..500).map(|i| i * i % 7919).collect();
        let h = HistSummary::from_values(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: {exact} not in [{lo},{hi}]"
            );
            assert!(h.quantile(q) <= h.max);
        }
    }

    #[test]
    fn merged_histograms_preserve_buckets_and_quantiles() {
        let mut a = Report::default();
        a.histograms
            .insert("h".into(), HistSummary::from_values(&[1, 100]));
        let mut b = Report::default();
        b.histograms
            .insert("h".into(), HistSummary::from_values(&[100, 5000]));
        a.merge(&b);
        let h = &a.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4);
        assert_eq!(h, &HistSummary::from_values(&[1, 100, 100, 5000]));
    }

    #[test]
    fn empty_report_renders_empty() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(r.render_text(), "");
        assert_eq!(
            r.to_json(),
            "{\"schema\":\"hgobs/1\",\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{}}"
        );
    }
}
