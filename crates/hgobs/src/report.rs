//! Snapshot of one run's metrics, with JSON and plain-text renderings.

use std::collections::BTreeMap;

use crate::json::JsonWriter;

/// Version tag written into every JSON report; bump when the layout of
/// the report object changes incompatibly.
pub const SCHEMA_VERSION: &str = "hgobs/1";

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    pub count: u64,
    pub total_ns: u64,
}

impl SpanSummary {
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Drained registry contents. Maps are ordered, so renders are stable.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistSummary>,
    pub spans: BTreeMap<String, SpanSummary>,
}

/// Drain the global registry into a [`Report`]; subsequent recording
/// starts from empty.
pub fn take_report() -> Report {
    registry_to_report(crate::metrics::drain())
}

/// Copy the global registry into a [`Report`] without draining it.
/// Long-lived processes (e.g. `hg serve`) use this to render cumulative
/// `/metrics` while recording continues.
pub fn snapshot_report() -> Report {
    registry_to_report(crate::metrics::snapshot())
}

fn registry_to_report(reg: crate::metrics::Registry) -> Report {
    Report {
        counters: reg.counters,
        histograms: reg
            .hists
            .into_iter()
            .map(|(k, h)| {
                (
                    k,
                    HistSummary {
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0 } else { h.min },
                        max: h.max,
                    },
                )
            })
            .collect(),
        spans: reg
            .spans
            .into_iter()
            .map(|(k, s)| {
                (
                    k,
                    SpanSummary {
                        count: s.count,
                        total_ns: s.total_ns,
                    },
                )
            })
            .collect(),
    }
}

/// Merge `report` back into the global registry (counters add, span and
/// histogram statistics combine), regardless of the enabled flag. Lets a
/// caller drain per-phase sections while keeping whole-run totals
/// available for a final report.
pub fn absorb(report: &Report) {
    crate::metrics::absorb_report(report);
}

impl Report {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Fold `other` into `self`: counters and span/histogram statistics
    /// combine exactly as the registry would have aggregated them.
    pub fn merge(&mut self, other: &Report) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let e = self.histograms.entry(k.clone()).or_insert(HistSummary {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            });
            e.count += h.count;
            e.sum = e.sum.saturating_add(h.sum);
            if h.count > 0 {
                e.min = e.min.min(h.min);
                e.max = e.max.max(h.max);
            }
            if e.count == 0 {
                e.min = 0;
            }
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_insert(SpanSummary {
                count: 0,
                total_ns: 0,
            });
            e.count += s.count;
            e.total_ns = e.total_ns.saturating_add(s.total_ns);
        }
    }

    /// Write this report as a JSON object into `w` (no surrounding
    /// schema field; see [`Report::to_json`] for the standalone form).
    pub fn write_body(&self, w: &mut JsonWriter) {
        w.key("counters").begin_object();
        for (k, v) in &self.counters {
            w.key(k).uint(*v);
        }
        w.end_object();

        w.key("histograms").begin_object();
        for (k, h) in &self.histograms {
            w.key(k).begin_object();
            w.key("count").uint(h.count);
            w.key("sum").uint(h.sum);
            w.key("min").uint(h.min);
            w.key("max").uint(h.max);
            w.key("mean").float(h.mean());
            w.end_object();
        }
        w.end_object();

        w.key("spans").begin_object();
        for (k, s) in &self.spans {
            w.key(k).begin_object();
            w.key("count").uint(s.count);
            w.key("total_ns").uint(s.total_ns);
            w.key("seconds").float(s.seconds());
            w.end_object();
        }
        w.end_object();
    }

    /// Standalone schema-versioned JSON document. Counters come first
    /// so deterministic sections precede timing-dependent ones.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA_VERSION);
        self.write_body(&mut w);
        w.end_object();
        w.finish()
    }

    /// Render this report in the Prometheus text exposition format, the
    /// payload `hg serve` answers on `GET /metrics`. Metric names are the
    /// registry names with `.`/`/` mapped to `_` and an `hg_` prefix:
    /// counters become `hg_<name>_total`, histograms expose
    /// `_count`/`_sum`/`_min`/`_max`, spans expose `_count` and
    /// `_seconds_total`. Maps are ordered, so the output is stable.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE hg_{n}_total counter\n"));
            out.push_str(&format!("hg_{n}_total {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE hg_{n} summary\n"));
            out.push_str(&format!("hg_{n}_count {}\n", h.count));
            out.push_str(&format!("hg_{n}_sum {}\n", h.sum));
            out.push_str(&format!("hg_{n}_min {}\n", h.min));
            out.push_str(&format!("hg_{n}_max {}\n", h.max));
        }
        for (k, s) in &self.spans {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE hg_span_{n}_seconds_total counter\n"));
            out.push_str(&format!("hg_span_{n}_count {}\n", s.count));
            out.push_str(&format!(
                "hg_span_{n}_seconds_total {}\n",
                crate::json::number(s.seconds())
            ));
        }
        out
    }

    /// Human-readable phase breakdown for CLI output: spans sorted by
    /// path (parents before children), then counters, then histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("phase breakdown:\n");
            let width = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (path, s) in &self.spans {
                let indent = path.matches('/').count() * 2;
                out.push_str(&format!(
                    "  {:indent$}{:<width$}  {:>10}  x{}\n",
                    "",
                    path,
                    crate::format_time(s.seconds()),
                    s.count,
                    indent = indent,
                    width = width.saturating_sub(indent),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k}: n={} mean={:.2} min={} max={}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("kcore.rounds".into(), 3);
        r.histograms.insert(
            "bfs.frontier".into(),
            HistSummary {
                count: 4,
                sum: 10,
                min: 1,
                max: 4,
            },
        );
        r.spans.insert(
            "total".into(),
            SpanSummary {
                count: 1,
                total_ns: 2_000_000,
            },
        );
        r.spans.insert(
            "total/kcore".into(),
            SpanSummary {
                count: 2,
                total_ns: 1_000_000,
            },
        );
        r
    }

    #[test]
    fn json_shape() {
        let js = sample().to_json();
        assert_eq!(
            js,
            "{\"schema\":\"hgobs/1\",\
             \"counters\":{\"kcore.rounds\":3},\
             \"histograms\":{\"bfs.frontier\":{\"count\":4,\"sum\":10,\"min\":1,\"max\":4,\"mean\":2.5}},\
             \"spans\":{\"total\":{\"count\":1,\"total_ns\":2000000,\"seconds\":0.002},\
             \"total/kcore\":{\"count\":2,\"total_ns\":1000000,\"seconds\":0.001}}}"
        );
    }

    #[test]
    fn text_breakdown_lists_phases_and_counters() {
        let text = sample().render_text();
        assert!(text.contains("phase breakdown:"));
        assert!(text.contains("total"));
        assert!(text.contains("total/kcore"));
        assert!(text.contains("kcore.rounds = 3"));
        assert!(text.contains("bfs.frontier: n=4 mean=2.50 min=1 max=4"));
    }

    #[test]
    fn prometheus_rendering_is_stable_and_sanitized() {
        let text = sample().render_prometheus();
        assert!(text.contains("hg_kcore_rounds_total 3\n"));
        assert!(text.contains("hg_bfs_frontier_count 4\n"));
        assert!(text.contains("hg_bfs_frontier_sum 10\n"));
        assert!(text.contains("hg_span_total_kcore_count 2\n"));
        assert!(text.contains("hg_span_total_kcore_seconds_total 0.001\n"));
        // Deterministic: same report renders byte-identically.
        assert_eq!(text, sample().render_prometheus());
    }

    #[test]
    fn empty_report_renders_empty() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(r.render_text(), "");
        assert_eq!(
            r.to_json(),
            "{\"schema\":\"hgobs/1\",\"counters\":{},\"histograms\":{},\"spans\":{}}"
        );
    }
}
