//! `hgobs` — the workspace's observability layer.
//!
//! One consistent substrate for answering "*why* was this run fast or
//! slow": RAII timing spans, typed counters, and value histograms,
//! aggregated in a global per-run registry and exportable as a
//! schema-versioned JSON report or a human-readable phase breakdown.
//!
//! The paper's Table 1 reports single elapsed-seconds numbers; the cost
//! of hypergraph algorithms is actually driven by structural quantities
//! (peeling rounds, edge overlap, degree-2 neighborhoods, BFS frontier
//! widths) that this crate surfaces as first-class metrics.
//!
//! # Design
//!
//! - **Disabled by default, near-zero cost when off.** Every recording
//!   call first checks one relaxed atomic load ([`enabled`]); when the
//!   sink is off, [`Span::enter`] allocates nothing and `counter!` /
//!   `hist!` are a branch over a load. The `obs_overhead` bench in
//!   `crates/bench` pins the disabled-path overhead under 2%.
//! - **Thread-safe.** The registry lives behind a `parking_lot` mutex;
//!   span nesting uses a thread-local name stack, so spans opened on
//!   worker threads aggregate under that thread's own root.
//! - **Deterministic output.** All maps are `BTreeMap`s and the JSON
//!   emitter writes fixed key order, so two runs over the same input
//!   produce byte-identical counter sections.
//!
//! # Example
//!
//! ```
//! hgobs::enable();
//! {
//!     let _span = hgobs::Span::enter("kcore");
//!     hgobs::counter!("kcore.rounds");
//!     hgobs::hist!("kcore.frontier", 17);
//! }
//! let report = hgobs::take_report();
//! assert_eq!(report.counters["kcore.rounds"], 1);
//! assert!(report.to_json().starts_with("{\"schema\":\"hgobs/1\""));
//! hgobs::disable();
//! ```

pub mod buckets;
mod deadline;
pub mod json;
pub mod log;
mod metrics;
mod report;
mod span;
mod time;
pub mod trace;

pub use deadline::{Deadline, DeadlineExceeded, CHECK_INTERVAL};
pub use metrics::{
    add_counter, add_gauge, disable, enable, enabled, record_hist, reset, set_gauge,
};
pub use report::{
    absorb, sanitize_metric_name, snapshot_report, take_report, HistSummary, Report, SpanSummary,
    SCHEMA_VERSION,
};
pub use span::Span;
pub use time::{format_time, timed};
pub use trace::{TraceCtx, TraceEvent, TracePhase};

/// Increment a named counter: `counter!("kcore.rounds")` adds 1,
/// `counter!("kcore.edges_deleted", n)` adds `n`. No-op while the sink
/// is disabled. In hot loops prefer a local accumulator flushed once.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::add_counter($name, 1)
    };
    ($name:literal, $n:expr) => {
        $crate::add_counter($name, ($n) as u64)
    };
}

/// Record one observation into a named histogram:
/// `hist!("bfs.frontier", len)`. No-op while the sink is disabled.
#[macro_export]
macro_rules! hist {
    ($name:literal, $value:expr) => {
        $crate::record_hist($name, ($value) as u64)
    };
}

/// Set a named gauge to an absolute level:
/// `gauge!("serve.conn.open", open)`. Gauges are point-in-time levels
/// (signed), not monotone counters; `add_gauge` adjusts by a delta.
/// No-op while the sink is disabled.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {
        $crate::set_gauge($name, ($value) as i64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is global, so tests that drain it share one lock to
    // avoid cross-talk under the default multi-threaded test runner.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        GATE.lock()
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = serial();
        disable();
        reset();
        counter!("t.disabled");
        hist!("t.disabled.h", 5);
        let _s = Span::enter("t.disabled.span");
        drop(_s);
        let r = take_report();
        assert!(r.counters.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.spans.is_empty());
    }

    #[test]
    fn counters_hists_and_spans_aggregate() {
        let _g = serial();
        reset();
        enable();
        {
            let _outer = Span::enter("outer");
            {
                let _inner = Span::enter("inner");
                counter!("t.rounds");
                counter!("t.rounds", 2);
            }
            {
                let _inner = Span::enter("inner");
                hist!("t.sizes", 3);
                hist!("t.sizes", 9);
            }
        }
        disable();
        let r = take_report();
        assert_eq!(r.counters["t.rounds"], 3);
        let h = &r.histograms["t.sizes"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 12, 3, 9));
        assert_eq!(r.spans["outer"].count, 1);
        assert_eq!(r.spans["outer/inner"].count, 2);
        assert!(r.spans["outer"].total_ns >= r.spans["outer/inner"].total_ns);
    }

    #[test]
    fn gauges_set_add_and_render() {
        let _g = serial();
        reset();
        enable();
        gauge!("t.level", 4);
        add_gauge("t.level", 3);
        add_gauge("t.level", -9);
        gauge!("t.other", 1);
        disable();
        // Disabled: further gauge calls record nothing.
        gauge!("t.level", 99);
        let r = take_report();
        assert_eq!(r.gauges["t.level"], -2);
        assert_eq!(r.gauges["t.other"], 1);
        let prom = r.render_prometheus();
        assert!(prom.contains("hg_t_level -2\n"), "{prom}");
        assert!(prom.contains("# TYPE hg_t_other gauge\n"), "{prom}");
    }

    #[test]
    fn snapshot_report_does_not_drain() {
        let _g = serial();
        reset();
        enable();
        counter!("t.snap", 2);
        let snap = snapshot_report();
        disable();
        assert_eq!(snap.counters["t.snap"], 2);
        let drained = take_report();
        assert_eq!(drained.counters["t.snap"], 2);
    }

    #[test]
    fn take_report_drains() {
        let _g = serial();
        reset();
        enable();
        counter!("t.once");
        let first = take_report();
        disable();
        assert_eq!(first.counters["t.once"], 1);
        let second = take_report();
        assert!(second.counters.is_empty());
    }

    #[test]
    fn absorb_restores_drained_metrics() {
        let _g = serial();
        reset();
        enable();
        counter!("t.absorb", 4);
        hist!("t.absorb.h", 2);
        let section = take_report();
        assert!(take_report().is_empty());
        absorb(&section);
        counter!("t.absorb", 1);
        disable();
        let total = take_report();
        assert_eq!(total.counters["t.absorb"], 5);
        assert_eq!(total.histograms["t.absorb.h"].count, 1);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = Report::default();
        a.counters.insert("c".into(), 1);
        a.histograms
            .insert("h".into(), HistSummary::from_values(&[5]));
        let mut b = Report::default();
        b.counters.insert("c".into(), 2);
        b.histograms
            .insert("h".into(), HistSummary::from_values(&[1, 3]));
        b.spans.insert(
            "s".into(),
            SpanSummary {
                count: 1,
                total_ns: 10,
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["c"], 3);
        let h = &a.histograms["h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 9, 1, 5));
        assert_eq!(a.spans["s"].count, 1);
    }

    #[test]
    fn json_has_versioned_schema_and_stable_order() {
        let _g = serial();
        reset();
        enable();
        counter!("b.two");
        counter!("a.one");
        hist!("z.h", 4);
        {
            let _s = Span::enter("total");
        }
        disable();
        let js = take_report().to_json();
        assert!(js.starts_with("{\"schema\":\"hgobs/1\","));
        let a = js.find("\"a.one\"").unwrap();
        let b = js.find("\"b.two\"").unwrap();
        assert!(a < b, "counters must be sorted: {js}");
        assert!(js.contains("\"spans\":{\"total\":{\"count\":1,"));
        assert!(js.ends_with('}'));
    }
}
