//! RAII timing spans with thread-local nesting.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

struct Active {
    path: String,
    start: Instant,
}

/// A timing span: `let _s = Span::enter("kcore.peel");` times the
/// enclosing scope. Nested spans aggregate under slash-joined paths
/// (`"total/kcore.peel"`). When the sink is disabled this is a single
/// atomic load and no allocation.
pub struct Span {
    active: Option<Active>,
}

impl Span {
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { active: None };
        }
        Span {
            active: Some(Self::enter_live(name)),
        }
    }

    #[cold]
    fn enter_live(name: &'static str) -> Active {
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.join("/")
        });
        if crate::log::debug_enabled() {
            eprintln!("[hg] -> {path}");
        }
        Active {
            path,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            if crate::log::debug_enabled() {
                eprintln!(
                    "[hg] <- {} ({})",
                    active.path,
                    crate::format_time(ns as f64 / 1e9)
                );
            }
            crate::metrics::record_span(active.path, ns);
        }
    }
}
